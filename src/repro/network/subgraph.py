"""Induced subgraphs and component extraction.

Fragmented networks are first-class citizens in MCFS (Algorithm 5 exists
because of them), but users often want to study one component in
isolation -- e.g. restrict an instance to the giant component to compare
against algorithms that assume connectivity.  These helpers build the
induced :class:`~repro.network.graph.Network` plus the node relabelling,
and lift instances onto it.
"""

# Instance-construction module: subgraph extraction happens while building
# or restricting instances, outside any budget scope.
# reprolint: disable=REP101

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import GraphError, InvalidInstanceError
from repro.network.components import connected_components
from repro.network.graph import Network

if TYPE_CHECKING:  # imported lazily at runtime: core depends on network
    from repro.core.instance import MCFSInstance


@dataclass(frozen=True)
class SubgraphMapping:
    """Result of :func:`induced_subgraph`.

    Attributes
    ----------
    network:
        The induced network with dense ids ``0..len(nodes)-1``.
    to_sub:
        Mapping original node id -> subgraph id.
    to_original:
        Array mapping subgraph id -> original node id.
    """

    network: Network
    to_sub: dict[int, int]
    to_original: np.ndarray


def induced_subgraph(network: Network, nodes: Sequence[int]) -> SubgraphMapping:
    """The subgraph induced by ``nodes`` (edges with both ends inside).

    Coordinates are carried over when present.  Node order follows the
    given sequence; duplicates are rejected.
    """
    node_list = [int(v) for v in nodes]
    if len(set(node_list)) != len(node_list):
        raise GraphError("induced_subgraph nodes must be distinct")
    for v in node_list:
        if not (0 <= v < network.n_nodes):
            raise GraphError(f"node {v} outside 0..{network.n_nodes - 1}")
    to_sub = {v: i for i, v in enumerate(node_list)}
    edges = [
        (to_sub[u], to_sub[v], w)
        for u, v, w in network.edges()
        if u in to_sub and v in to_sub
    ]
    coords = network.coords[node_list] if network.has_coords else None
    sub = Network(
        len(node_list), edges, coords=coords, directed=network.directed
    )
    return SubgraphMapping(
        network=sub,
        to_sub=to_sub,
        to_original=np.array(node_list, dtype=np.int64),
    )


def largest_component(network: Network) -> SubgraphMapping:
    """The induced subgraph of the largest connected component."""
    components = connected_components(network)
    if not components:
        raise GraphError("network has no nodes")
    biggest = max(components, key=len)
    return induced_subgraph(network, [int(v) for v in biggest])


def restrict_instance(
    instance: MCFSInstance, mapping: SubgraphMapping
) -> MCFSInstance:
    """Lift an instance onto a subgraph.

    Customers and candidates outside the subgraph are dropped; ``k`` is
    clamped to the surviving candidate count.  Raises when no customer or
    no candidate survives.
    """
    from repro.core.instance import MCFSInstance

    customers = [
        mapping.to_sub[c] for c in instance.customers if c in mapping.to_sub
    ]
    facilities: list[int] = []
    capacities: list[int] = []
    for j, node in enumerate(instance.facility_nodes):
        if node in mapping.to_sub:
            facilities.append(mapping.to_sub[node])
            capacities.append(instance.capacities[j])
    if not customers:
        raise InvalidInstanceError("no customers inside the subgraph")
    if not facilities:
        raise InvalidInstanceError("no candidates inside the subgraph")
    return MCFSInstance(
        network=mapping.network,
        customers=tuple(customers),
        facility_nodes=tuple(facilities),
        capacities=tuple(capacities),
        k=min(instance.k, len(facilities)),
        name=f"{instance.name}|subgraph",
    )


def giant_component_instance(instance: MCFSInstance) -> MCFSInstance:
    """Convenience: restrict an instance to its network's giant component."""
    return restrict_instance(instance, largest_component(instance.network))
