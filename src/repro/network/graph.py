"""Compact weighted-graph representation used by all algorithms.

The paper's algorithms run Dijkstra instances over road networks with up to
millions of edges, so the graph is stored in CSR (compressed sparse row)
form: three flat ``numpy`` arrays giving, for each node, a contiguous slice
of neighbor ids and edge weights.  This keeps the inner Dijkstra loop free
of Python object overhead and makes the structure trivially serializable.

Graphs are undirected by default (each input edge is stored in both
directions); a directed mode is available because the problem statement in
the paper permits directed networks.
"""

# Construction-time module: Network building and its accessors run before
# any budget scope is active.
# reprolint: disable=REP101

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np
import numpy.typing as npt

from repro.errors import GraphError

Edge = tuple[int, int, float]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a network, mirroring the paper's Table III."""

    n_nodes: int
    n_edges: int
    avg_degree: float
    max_degree: int
    avg_edge_length: float
    n_components: int

    def as_row(self) -> dict[str, float]:
        """Return the statistics as a flat dict suitable for table output."""
        return {
            "nodes": self.n_nodes,
            "edges": self.n_edges,
            "avg_degree": round(self.avg_degree, 2),
            "max_degree": self.max_degree,
            "avg_edge_length": round(self.avg_edge_length, 2),
            "components": self.n_components,
        }


class Network:
    """A weighted graph over dense integer node ids ``0..n-1``.

    Parameters
    ----------
    n_nodes:
        Number of nodes.
    edges:
        Iterable of ``(u, v, weight)`` triples.  Weights must be positive
        (the paper models road-segment lengths).  Parallel edges are
        allowed; self-loops are rejected because they can never lie on a
        shortest path and would corrupt degree statistics.
    coords:
        Optional ``(n_nodes, 2)`` array of planar coordinates.  Required by
        geometry-based components (Hilbert baseline, data generators) but
        not by the core algorithms, which are purely network-based.
    directed:
        When ``False`` (default) each edge is traversable in both
        directions.
    """

    def __init__(
        self,
        n_nodes: int,
        edges: Iterable[Edge],
        coords: npt.NDArray[np.float64] | None = None,
        directed: bool = False,
    ) -> None:
        if n_nodes < 0:
            raise GraphError(f"n_nodes must be non-negative, got {n_nodes}")
        self._n = int(n_nodes)
        self._directed = bool(directed)

        edge_list = [(int(u), int(v), float(w)) for u, v, w in edges]
        for u, v, w in edge_list:
            if not (0 <= u < self._n and 0 <= v < self._n):
                raise GraphError(
                    f"edge ({u}, {v}) references a node outside 0..{self._n - 1}"
                )
            if u == v:
                raise GraphError(f"self-loop at node {u} is not allowed")
            if not (w > 0) or not np.isfinite(w):
                raise GraphError(
                    f"edge ({u}, {v}) has non-positive or non-finite weight {w}"
                )
        self._edge_array = np.array(
            [(u, v) for u, v, _ in edge_list], dtype=np.int64
        ).reshape(-1, 2)
        self._edge_weights = np.array(
            [w for _, _, w in edge_list], dtype=np.float64
        )

        self._indptr, self._indices, self._weights = self._build_csr(
            self._n, edge_list, self._directed
        )

        if coords is not None:
            coords = np.asarray(coords, dtype=np.float64)
            if coords.shape != (self._n, 2):
                raise GraphError(
                    f"coords must have shape ({self._n}, 2), got {coords.shape}"
                )
        self._coords = coords
        self._csr_lists: tuple[list[int], list[int], list[float]] | None = None
        self._fingerprint: str | None = None

    @staticmethod
    def _build_csr(
        n: int, edge_list: Sequence[Edge], directed: bool
    ) -> tuple[
        npt.NDArray[np.int64],
        npt.NDArray[np.int64],
        npt.NDArray[np.float64],
    ]:
        """Build CSR adjacency arrays from an edge list."""
        if directed:
            arcs_u = [u for u, _, _ in edge_list]
            arcs_v = [v for _, v, _ in edge_list]
            arcs_w = [w for _, _, w in edge_list]
        else:
            arcs_u = [u for u, _, _ in edge_list] + [v for _, v, _ in edge_list]
            arcs_v = [v for _, v, _ in edge_list] + [u for u, _, _ in edge_list]
            arcs_w = [w for _, _, w in edge_list] * 2

        counts = np.zeros(n + 1, dtype=np.int64)
        for u in arcs_u:
            counts[u + 1] += 1
        indptr = np.cumsum(counts)
        indices = np.empty(len(arcs_u), dtype=np.int64)
        weights = np.empty(len(arcs_u), dtype=np.float64)
        cursor = indptr[:-1].copy()
        for u, v, w in zip(arcs_u, arcs_v, arcs_w, strict=True):
            pos = cursor[u]
            indices[pos] = v
            weights[pos] = w
            cursor[u] += 1
        return indptr, indices, weights

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def n_edges(self) -> int:
        """Number of input edges (undirected edges counted once)."""
        return len(self._edge_weights)

    @property
    def directed(self) -> bool:
        """Whether the graph is directed."""
        return self._directed

    @property
    def coords(self) -> npt.NDArray[np.float64]:
        """Planar coordinates, shape ``(n_nodes, 2)``.

        Raises
        ------
        GraphError
            If the network was built without coordinates.
        """
        if self._coords is None:
            raise GraphError("this network has no coordinates attached")
        return self._coords

    @property
    def has_coords(self) -> bool:
        """Whether planar coordinates are attached."""
        return self._coords is not None

    @property
    def csr(
        self,
    ) -> tuple[
        npt.NDArray[np.int64],
        npt.NDArray[np.int64],
        npt.NDArray[np.float64],
    ]:
        """The raw CSR arrays ``(indptr, indices, weights)``.

        Exposed for the hot Dijkstra loops; treat as read-only.
        """
        return self._indptr, self._indices, self._weights

    @property
    def csr_lists(self) -> tuple[list[int], list[int], list[float]]:
        """The CSR arrays as plain Python lists, built once and cached.

        Pure-Python shortest-path loops index these arrays millions of
        times; plain lists avoid the numpy scalar boxing that dominates
        the cost of ``indices[pos]``-style element access.  The lists
        trade one extra copy of the adjacency for roughly a 2x faster
        inner loop; treat as read-only.
        """
        if self._csr_lists is None:
            # Idempotent memo write: every builder produces the same value
            # from immutable CSR arrays, and materialize_caches() fills it
            # before any pool forks.
            self._csr_lists = (  # reprolint: disable=REP103 -- idempotent memo, materialized pre-fork
                self._indptr.tolist(),
                self._indices.tolist(),
                self._weights.tolist(),
            )
        return self._csr_lists

    @property
    def fingerprint(self) -> str:
        """A stable content hash of the graph structure.

        Covers node count, directedness, and the CSR arrays; two networks
        with identical adjacency share a fingerprint.  Used as the cache
        key namespace by :mod:`repro.network.distcache`.
        """
        if self._fingerprint is None:
            digest = hashlib.sha1()
            digest.update(f"{self._n}:{int(self._directed)}".encode())
            digest.update(self._indptr.tobytes())
            digest.update(self._indices.tobytes())
            digest.update(self._weights.tobytes())
            # Idempotent memo write over immutable arrays; filled by
            # materialize_caches() before any pool forks.
            self._fingerprint = digest.hexdigest()  # reprolint: disable=REP103 -- idempotent memo, materialized pre-fork
        return self._fingerprint

    def materialize_caches(self) -> None:
        """Force-fill the lazy memo fields (CSR list mirror, fingerprint).

        Call before handing this network to concurrent readers -- worker
        pools, shared caches -- so no read path performs a first-touch
        write on a shared instance (reprolint REP103).  Oracle tiers
        bound to a network follow the same pattern
        (:meth:`repro.network.ch.ContractionHierarchy.materialize_caches`);
        :class:`~repro.network.parallel.ParallelDistanceEngine` calls
        both before forking its pool.
        """
        _ = self.csr_lists
        _ = self.fingerprint

    def __getstate__(self) -> dict[str, Any]:
        # The list mirror of the CSR arrays is a pure cache; rebuilding it
        # on the other side is cheaper than pickling it.
        state = self.__dict__.copy()
        state["_csr_lists"] = None
        return state

    def neighbors(self, node: int) -> Iterator[tuple[int, float]]:
        """Yield ``(neighbor, weight)`` pairs of ``node``."""
        self._check_node(node)
        lo, hi = self._indptr[node], self._indptr[node + 1]
        for pos in range(lo, hi):
            yield int(self._indices[pos]), float(self._weights[pos])

    def degree(self, node: int) -> int:
        """Out-degree of ``node`` (total degree for undirected graphs)."""
        self._check_node(node)
        return int(self._indptr[node + 1] - self._indptr[node])

    def edges(self) -> Iterator[Edge]:
        """Yield the input edges as ``(u, v, weight)`` triples."""
        for (u, v), w in zip(self._edge_array, self._edge_weights, strict=True):
            yield int(u), int(v), float(w)

    def edge_lengths(self) -> npt.NDArray[np.float64]:
        """Weights of the input edges as an array."""
        return self._edge_weights.copy()

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self._n):
            raise GraphError(f"node {node} outside 0..{self._n - 1}")

    # ------------------------------------------------------------------
    # Statistics and conversions
    # ------------------------------------------------------------------
    def stats(self) -> GraphStats:
        """Compute Table-III-style summary statistics."""
        from repro.network.components import connected_components

        degrees = np.diff(self._indptr)
        avg_len = (
            float(self._edge_weights.mean()) if self.n_edges else 0.0
        )
        return GraphStats(
            n_nodes=self._n,
            n_edges=self.n_edges,
            avg_degree=float(degrees.mean()) if self._n else 0.0,
            max_degree=int(degrees.max()) if self._n else 0,
            avg_edge_length=avg_len,
            n_components=len(connected_components(self)),
        )

    def euclidean(self, u: int, v: int) -> float:
        """Euclidean distance between two nodes' coordinates."""
        c = self.coords
        return float(np.hypot(*(c[u] - c[v])))

    def to_networkx(self) -> Any:
        """Convert to a :mod:`networkx` graph (for testing and interop)."""
        import networkx as nx

        g = nx.DiGraph() if self._directed else nx.Graph()
        g.add_nodes_from(range(self._n))
        if self._coords is not None:
            for node in range(self._n):
                g.nodes[node]["pos"] = tuple(self._coords[node])
        for u, v, w in self.edges():
            g.add_edge(u, v, weight=w)
        return g

    @classmethod
    def from_networkx(cls, g: Any, weight: str = "weight") -> Network:
        """Build a :class:`Network` from a :mod:`networkx` graph.

        Node labels must be dense integers ``0..n-1``; relabel first with
        ``networkx.convert_node_labels_to_integers`` if they are not.
        """
        import networkx as nx

        n = g.number_of_nodes()
        labels = set(g.nodes)
        if labels != set(range(n)):
            raise GraphError(
                "node labels must be dense integers 0..n-1; "
                "use networkx.convert_node_labels_to_integers first"
            )
        edges = [
            (u, v, float(data.get(weight, 1.0))) for u, v, data in g.edges(data=True)
        ]
        coords = None
        if all("pos" in g.nodes[v] for v in g.nodes) and n > 0:
            coords = np.array([g.nodes[v]["pos"] for v in range(n)], dtype=float)
        return cls(n, edges, coords=coords, directed=isinstance(g, nx.DiGraph))

    def __repr__(self) -> str:
        kind = "directed" if self._directed else "undirected"
        return f"Network(n_nodes={self._n}, n_edges={self.n_edges}, {kind})"
