"""Seeded farthest-point landmark selection for the ALT oracle.

ALT (A*, Landmarks, Triangle inequality) preprocessing picks a small set
of *landmark* nodes and stores the full single-source distance vector of
each; the triangle inequality then turns those vectors into cheap lower
bounds on any point-to-point distance (see :mod:`repro.network.oracle`).
Bound quality depends almost entirely on landmark placement: landmarks
"behind" the target relative to the source give tight bounds, clustered
landmarks give redundant ones.

This module implements the classic *farthest-point* heuristic: start
from a seeded random node, take the node farthest from it as the first
landmark, then repeatedly add the node maximizing the minimum distance
to the landmarks chosen so far.  Every selection step is one Dijkstra on
the shared :class:`~repro.network.kernels.DijkstraWorkspace`, and that
same run *is* the landmark's distance vector -- selection and
precomputation cost one kernel run per landmark (plus one seeding run).

Unreachable entries stay ``inf``; on multi-component networks the
argmax naturally jumps to an uncovered component (its min-distance is
infinite), so every component with at least one node gets a landmark
once ``count`` is large enough.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GraphError
from repro.network.graph import Network
from repro.network.kernels import workspace_for
from repro.runtime.budget import checkpoint as _budget_checkpoint

INF = math.inf


def select_landmarks(
    network: Network, count: int, *, seed: int = 0
) -> tuple[list[int], np.ndarray]:
    """Pick ``count`` landmarks and return their distance vectors.

    Parameters
    ----------
    network:
        The road network to preprocess.
    count:
        Number of landmarks; clamped to ``network.n_nodes``.
    seed:
        Seed for the starting node of the farthest-point sweep.  The
        whole selection is deterministic given ``(network, count, seed)``.

    Returns
    -------
    tuple[list[int], numpy.ndarray]
        ``(landmarks, vectors)`` where ``vectors[i]`` is the full
        single-source distance vector from ``landmarks[i]``
        (``inf`` for unreachable nodes), shape ``(count, n_nodes)``.
    """
    n = network.n_nodes
    if count < 1:
        raise GraphError(f"landmark count must be >= 1, got {count}")
    count = min(int(count), n)
    rng = np.random.default_rng(seed)
    start = int(rng.integers(n))

    ws = workspace_for(network)
    # Seeding run: the first landmark is the node farthest from a random
    # start, which keeps landmarks on the periphery (central landmarks
    # produce uniformly weak bounds).
    ws.run([start])
    seed_dist = ws.dist_array()
    first = _farthest_finite(seed_dist, fallback=start)

    landmarks: list[int] = []
    vectors = np.full((count, n), INF, dtype=np.float64)
    # min_dist[v]: distance from v to its nearest chosen landmark.
    min_dist = np.full(n, INF, dtype=np.float64)
    nxt = first
    for i in range(count):
        # One checkpoint per landmark Dijkstra (the build loop's unit of
        # work for cooperative budgets).
        _budget_checkpoint()
        landmarks.append(nxt)
        ws.run([nxt])
        vec = ws.dist_array()
        vectors[i, :] = vec
        np.minimum(min_dist, vec, out=min_dist)
        min_dist[nxt] = -INF  # never re-pick a chosen landmark
        if i + 1 < count:
            nxt = _farthest_finite(min_dist, fallback=None)
            if nxt is None:
                # Every node is already a landmark or coincident; stop
                # early and truncate the vector block.
                vectors = vectors[: i + 1]
                break
    return landmarks, vectors


def _farthest_finite(dist: np.ndarray, fallback: int | None) -> int | None:
    """Index of the largest entry, preferring finite over ``inf``.

    ``inf`` entries mark nodes in components no landmark has reached
    yet; picking one first extends coverage to that component.  Among
    finite entries ties resolve to the lowest node id (``argmax``
    returns the first maximum), keeping selection deterministic.
    """
    infinite = np.isinf(dist) & (dist > 0)
    if infinite.any():
        return int(np.argmax(infinite))
    finite = np.where(np.isfinite(dist), dist, -INF)
    best = int(np.argmax(finite))
    if finite[best] == -INF:
        return fallback
    return best
