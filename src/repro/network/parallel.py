"""Process-parallel shortest-path fan-out over shared-memory CSR arrays.

Single-source Dijkstra runs from distinct sources are independent, so a
distance matrix parallelizes embarrassingly across source chunks, and a
multi-source sweep parallelizes across connected components (sources in
one component can never reach another).  Pure-Python Dijkstra is
CPU-bound and GIL-bound, so the fan-out uses *processes*.

:class:`ParallelDistanceEngine` owns the pool: the network's CSR arrays
are copied once into :mod:`multiprocessing.shared_memory` blocks, each
worker attaches on start-up and builds one reusable
:class:`~repro.network.kernels.DijkstraWorkspace`, and tasks then ship
only source chunks -- never the graph.  Below a size threshold (or with
``workers <= 1``) every call falls back to the serial kernel, so small
calls never pay pool start-up.

Worker runs execute the same kernel as the serial path over the same
float64 CSR data, so parallel distances are bit-identical to serial
ones.  When a contraction-hierarchy oracle scope is active at pool
start-up (:func:`repro.network.oracle.active_ch_for`), the hierarchy is
materialized pre-fork and shipped to every worker, whose distance
chunks then run the many-to-many bucket path of
:meth:`~repro.network.ch.ContractionHierarchy.distance_block` -- still
bit-identical.  Workers record their ``dijkstra.*`` counters into a private
registry that is shipped back and merged into the caller's active
registry, keeping observability totals independent of the worker count;
the engine additionally counts ``parallel.tasks`` and
``parallel.fallbacks``.

The worker count resolves as: explicit argument, else the
``REPRO_WORKERS`` environment variable, else 1 (serial).
"""

# Worker-process and pool-admin code: the cooperative budget is scoped to
# the parent process, whose fan-out loops checkpoint between chunks.
# reprolint: disable=REP101

from __future__ import annotations

import math
import multiprocessing
import os
from collections.abc import Sequence
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from repro.errors import BudgetExceeded
from repro.network import ch as _chmod
from repro.network import oracle as _oracle
from repro.network.graph import Network
from repro.network.kernels import DijkstraWorkspace, many_source_lengths
from repro.obs import metrics
from repro.runtime.budget import checkpoint as _budget_checkpoint

INF = math.inf

#: Minimum number of independent runs before a pool is worth starting.
MIN_PARALLEL_SOURCES = 4
#: Minimum total work (``n_nodes * n_runs``) before a pool is worth it.
MIN_PARALLEL_WORK = 200_000

WORKERS_ENV_VAR = "REPRO_WORKERS"

_ShmSpec = tuple[str, tuple[int, ...], str]  # (name, shape, dtype.str)


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a ``workers=`` argument to an effective worker count.

    ``None`` falls back to the ``REPRO_WORKERS`` environment variable
    (ignored when unset or malformed); the result is clamped to >= 1.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                workers = 1
        else:
            workers = 1
    return max(1, int(workers))


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------
_worker_workspace: DijkstraWorkspace | None = None
_worker_ch: _chmod.ContractionHierarchy | None = None


def _attach_worker(
    specs: Sequence[_ShmSpec],
    n_nodes: int,
    untrack: bool,
    hierarchy: _chmod.ContractionHierarchy | None = None,
) -> None:
    """Pool initializer: attach the shared CSR blocks, build a workspace.

    The CSR data is converted to Python lists once (the kernel's fast
    representation); the shared blocks are then closed immediately, so
    each worker holds exactly one private copy of the adjacency.

    ``hierarchy`` ships the contraction hierarchy that was active in the
    parent at pool start-up (pre-materialized there, so fork-started
    workers inherit the CSR halves copy-on-write and never first-touch
    shared state); worker chunks then run the many-to-many bucket path
    instead of raw kernel Dijkstras.

    ``untrack`` handles the resource-tracker split: the parent owns the
    segments and unlinks them on engine close.  Spawn-started workers run
    a *private* tracker that would unlink (and leak-warn about) attached
    segments at worker exit, so they must unregister; fork-started
    workers *share* the parent's tracker, where unregistering would
    remove the parent's own entry.
    """
    global _worker_workspace, _worker_ch
    _worker_ch = hierarchy
    arrays = []
    blocks = []
    for name, shape, dtype in specs:
        shm = shared_memory.SharedMemory(name=name)
        blocks.append(shm)
        arrays.append(np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf))
    indptr, indices, weights = (arr.tolist() for arr in arrays)
    _worker_workspace = DijkstraWorkspace.from_csr(
        indptr, indices, weights, n_nodes
    )
    del arrays
    for shm in blocks:
        shm.close()
        if untrack:
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            except (KeyboardInterrupt, BudgetExceeded):
                raise
            except Exception:
                # Tracker API drift only; worker setup must not die on
                # an unregister refusal.
                pass


def _worker_distance_chunk(
    job: tuple[list[int], list[int], float],
) -> tuple[np.ndarray, dict[str, float]]:
    """Run one chunk: bucket sweeps under a shipped CH, else Dijkstras."""
    sources, targets, radius = job
    ws = _worker_workspace
    assert ws is not None, "worker used before initialization"
    registry = metrics.Registry()
    if _worker_ch is not None:
        with metrics.use(registry):
            rows = _worker_ch.distance_block(
                [[s] for s in sources], targets, radius=radius
            )
        return rows, registry.as_dict()
    target_set = set(targets)
    rows = np.empty((len(sources), len(targets)), dtype=np.float64)
    with metrics.use(registry):
        for i, s in enumerate(sources):
            ws.run([s], targets=target_set, radius=radius)
            rows[i, :] = ws.gather(targets)
    return rows, registry.as_dict()


def _worker_multi_source(
    job: tuple[list[int], float],
) -> tuple[list[int], list[float], list[int], list[int], dict[str, float]]:
    """Run one multi-source sweep (one connected component's sources)."""
    sources, radius = job
    ws = _worker_workspace
    assert ws is not None, "worker used before initialization"
    registry = metrics.Registry()
    with metrics.use(registry):
        ws.run(sources, radius=radius)
    touched = list(ws.touched())
    dist = [ws.dist_of(t) for t in touched]
    parent = [ws.parent_of(t) for t in touched]
    settled = list(ws.settled())
    return touched, dist, parent, settled, registry.as_dict()


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class ParallelDistanceEngine:
    """Fan independent Dijkstra runs of one network over a process pool.

    Parameters
    ----------
    network:
        The graph all runs share.
    workers:
        Worker-count request (see :func:`resolve_workers`).
    min_sources / min_work:
        Serial-fallback thresholds: a call parallelizes only when it has
        at least ``min_sources`` independent runs *and* at least
        ``min_work`` units of ``n_nodes * n_runs`` work.

    The pool and the shared-memory blocks are created lazily on the
    first call that actually parallelizes, and released by
    :meth:`close` (or the context-manager exit).
    """

    def __init__(
        self,
        network: Network,
        workers: int | None = None,
        *,
        min_sources: int = MIN_PARALLEL_SOURCES,
        min_work: int = MIN_PARALLEL_WORK,
    ) -> None:
        self.network = network
        self.workers = resolve_workers(workers)
        self.min_sources = int(min_sources)
        self.min_work = int(min_work)
        self._pool: Any = None
        self._shm_blocks: list[shared_memory.SharedMemory] = []

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> ParallelDistanceEngine:
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:  # reprolint: disable=REP106 -- __del__ runs during interpreter shutdown and must never raise, not even BudgetExceeded
            pass

    def close(self) -> None:
        """Shut the pool down and release the shared-memory blocks."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        for shm in self._shm_blocks:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:
                pass
        self._shm_blocks = []

    def _ensure_pool(self) -> None:
        if self._pool is not None:
            return
        # Fill the network's lazy memo fields before forking so workers
        # (and concurrent cache readers) never first-touch shared state.
        self.network.materialize_caches()
        # Ship the active contraction hierarchy (if any) to the workers,
        # pre-materialized for the same no-first-touch reason.  The pool
        # snapshots the oracle at start-up: a scope entered *after* the
        # first parallel call keeps workers on the kernel path, which is
        # bit-identical anyway.
        hierarchy = _oracle.active_ch_for(self.network)
        if hierarchy is not None:
            hierarchy.materialize_caches()
        specs: list[_ShmSpec] = []
        for arr in self.network.csr:
            shm = shared_memory.SharedMemory(
                create=True, size=max(1, arr.nbytes)
            )
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
            view[:] = arr
            self._shm_blocks.append(shm)
            specs.append((shm.name, arr.shape, arr.dtype.str))
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else "spawn"
        ctx = multiprocessing.get_context(start_method)
        self._pool = ctx.Pool(
            self.workers,
            initializer=_attach_worker,
            initargs=(
                tuple(specs),
                self.network.n_nodes,
                start_method != "fork",
                hierarchy,
            ),
        )

    # -- scheduling ----------------------------------------------------
    def should_parallelize(self, n_runs: int) -> bool:
        """Whether ``n_runs`` independent runs justify using the pool."""
        return (
            self.workers > 1
            and n_runs >= self.min_sources
            and n_runs * self.network.n_nodes >= self.min_work
        )

    @staticmethod
    def _merge_counters(counters: dict[str, float]) -> None:
        reg = metrics.active()
        for name, value in counters.items():
            reg.counter(name).add(int(value))

    def _chunk(self, items: list[int]) -> list[list[int]]:
        # A few chunks per worker smooths out uneven per-source cost.
        n_chunks = min(len(items), self.workers * 4)
        bounds = np.linspace(0, len(items), n_chunks + 1).astype(int)
        return [
            items[lo:hi]
            for lo, hi in zip(bounds[:-1], bounds[1:], strict=True)
            if hi > lo
        ]

    # -- operations ----------------------------------------------------
    def distance_matrix(
        self,
        sources: Sequence[int],
        targets: Sequence[int],
        *,
        radius: float = INF,
    ) -> np.ndarray:
        """Early-exit distance matrix, source chunks fanned over the pool.

        Bit-identical to the serial kernel path; falls back to it below
        the thresholds.
        """
        _budget_checkpoint()
        source_list = [int(s) for s in sources]
        target_list = [int(t) for t in targets]
        if not self.should_parallelize(len(source_list)):
            metrics.active().counter("parallel.fallbacks").add()
            return many_source_lengths(
                self.network,
                [[s] for s in source_list],
                targets=target_list,
                radius=radius,
            )
        self._ensure_pool()
        chunks = self._chunk(source_list)
        jobs = [(chunk, target_list, radius) for chunk in chunks]
        metrics.active().counter("parallel.tasks").add(len(jobs))
        results = self._pool.map(_worker_distance_chunk, jobs)
        # Workers are budget-blind; check once per fan-out on return.
        _budget_checkpoint()
        for _, counters in results:
            self._merge_counters(counters)
        return np.vstack([rows for rows, _ in results])

    def multi_source_lengths(
        self, sources: Sequence[int], *, radius: float = INF
    ) -> tuple[np.ndarray, np.ndarray, list[int]]:
        """Nearest-source sweep, fanned across connected components.

        Returns ``(dist, parent, settled)`` full-length arrays.  The
        settled order is concatenated per component (each component's
        sub-order is the serial settlement order); distances and parents
        are bit-identical to the serial kernel.
        """
        _budget_checkpoint()
        source_list = [int(s) for s in sources]
        n = self.network.n_nodes
        groups = self._component_groups(source_list)
        if len(groups) < 2 or not self.should_parallelize(len(source_list)):
            metrics.active().counter("parallel.fallbacks").add()
            return self._serial_multi_source(source_list, radius)
        self._ensure_pool()
        jobs = [(group, radius) for group in groups]
        metrics.active().counter("parallel.tasks").add(len(jobs))
        results = self._pool.map(_worker_multi_source, jobs)
        _budget_checkpoint()
        dist = np.full(n, INF)
        parent = np.full(n, -1, dtype=np.int64)
        settled: list[int] = []
        for touched, dvals, pvals, part_settled, counters in results:
            if touched:
                dist[touched] = dvals
                parent[touched] = pvals
            settled.extend(part_settled)
            self._merge_counters(counters)
        return dist, parent, settled

    def _serial_multi_source(
        self, source_list: list[int], radius: float
    ) -> tuple[np.ndarray, np.ndarray, list[int]]:
        from repro.network.kernels import workspace_for

        ws = workspace_for(self.network)
        ws.run(source_list, radius=radius)
        return ws.dist_array(), ws.parent_array(), list(ws.settled())

    def _component_groups(self, source_list: list[int]) -> list[list[int]]:
        """Split sources by connected component (weak for directed)."""
        if not source_list:
            return []
        from repro.network.components import component_labels

        labels = component_labels(self.network)
        groups: dict[int, list[int]] = {}
        for s in source_list:
            groups.setdefault(int(labels[s]), []).append(s)
        return list(groups.values())
