"""Reusable, allocation-free Dijkstra kernels over CSR adjacency.

The public entry points in :mod:`repro.network.dijkstra` historically
allocated three ``O(n)`` arrays per call and ran one source at a time.
Repeated runs over the same :class:`~repro.network.graph.Network` -- the
exact solver's distance matrix, the baselines' sweeps, the benchmark
harness -- pay that allocation and numpy-scalar boxing cost thousands of
times.

:class:`DijkstraWorkspace` removes both costs:

* the ``dist``/``parent`` scratch arrays and the settled marks are
  preallocated once per workspace and *never* cleared between runs --
  each run bumps a generation counter and entries are valid only when
  their generation stamp matches, so a reset is ``O(1)``;
* the CSR arrays are used as plain Python lists
  (:attr:`Network.csr_lists <repro.network.graph.Network.csr_lists>`),
  which the pure-Python inner loop indexes several times faster than
  numpy arrays;
* only plain Python floats/ints ever enter the binary heap, avoiding
  numpy-scalar comparison overhead on every heap operation.

:func:`many_source_lengths` batches several runs over one workspace; the
``distance_matrix``, ``multi_source_lengths``, and ``eccentricity_bound``
entry points delegate to it.  Kernel runs flush the same ``dijkstra.*``
observability counters as the legacy loop (run-for-run identical totals)
plus ``dijkstra.kernel_runs``, so metrics reports distinguish kernel
from legacy executions.
"""

from __future__ import annotations

import heapq
import math
import weakref
from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import GraphError
from repro.network.graph import Network
from repro.obs import metrics
from repro.runtime.budget import checkpoint as _budget_checkpoint

INF = math.inf


class DijkstraWorkspace:
    """Preallocated scratch space for repeated Dijkstra runs on one graph.

    A workspace is bound to one adjacency structure (a
    :class:`~repro.network.graph.Network` or raw CSR lists) and owns four
    length-``n`` scratch arrays: distances, parents, and two generation-
    stamp arrays marking which entries belong to the current run.  Runs
    produce *bit-identical* distances to the legacy per-call loop in
    :mod:`repro.network.dijkstra`: same relaxation order, same heap
    tie-breaking, same IEEE-754 arithmetic.

    Results are queried through :meth:`gather`, :meth:`dist_array`,
    :meth:`parent_array`, :meth:`settled`, and :meth:`dist_of`, and stay
    valid until the next :meth:`run` on the same workspace.
    """

    __slots__ = (
        "_n",
        "_indptr",
        "_indices",
        "_weights",
        "_dist",
        "_parent",
        "_seen",
        "_done",
        "_settled",
        "_touched",
        "_generation",
    )

    def __init__(self, network: Network) -> None:
        indptr, indices, weights = network.csr_lists
        self._init_from(indptr, indices, weights, network.n_nodes)

    @classmethod
    def from_csr(
        cls,
        indptr: Sequence[int],
        indices: Sequence[int],
        weights: Sequence[float],
        n_nodes: int,
    ) -> DijkstraWorkspace:
        """Build a workspace from raw CSR arrays (no Network required).

        Used by process-pool workers that receive the adjacency through
        shared memory rather than a pickled :class:`Network`.
        """
        ws = cls.__new__(cls)
        ws._init_from(list(indptr), list(indices), list(weights), int(n_nodes))
        return ws

    def _init_from(
        self,
        indptr: list[int],
        indices: list[int],
        weights: list[float],
        n: int,
    ) -> None:
        self._n = n
        self._indptr = indptr
        self._indices = indices
        self._weights = weights
        self._dist: list[float] = [INF] * n
        self._parent: list[int] = [-1] * n
        self._seen: list[int] = [0] * n
        self._done: list[int] = [0] * n
        self._settled: list[int] = []
        self._touched: list[int] = []
        self._generation = 0

    @property
    def n_nodes(self) -> int:
        """Number of nodes of the bound graph."""
        return self._n

    @property
    def generation(self) -> int:
        """Stamp of the most recent run (0 before any run)."""
        return self._generation

    def run(
        self,
        sources: Iterable[int],
        *,
        targets: Iterable[int] | None = None,
        radius: float = INF,
        max_settled: int | None = None,
    ) -> int:
        """Execute one Dijkstra over the preallocated scratch arrays.

        Semantics match ``dijkstra._run``: ``targets`` enables early exit
        once every (reachable, in-range) target is settled, ``radius``
        prunes past a distance bound, ``max_settled`` caps the settled
        count.  ``targets`` is *never* mutated or copied when it is
        already a set.  Returns the new generation stamp.
        """
        # One network Dijkstra is the distance layer's unit of work for
        # cooperative budgets: interrupt between runs, never mid-run.
        _budget_checkpoint()
        gen = self._generation + 1
        self._generation = gen
        n = self._n
        dist = self._dist
        parent = self._parent
        seen = self._seen
        done = self._done
        indptr = self._indptr
        indices = self._indices
        weights = self._weights
        settled = self._settled
        settled.clear()
        touched = self._touched
        touched.clear()

        heap: list[tuple[float, int]] = []
        heappush, heappop = heapq.heappush, heapq.heappop
        for s in sources:
            s = int(s)
            if not (0 <= s < n):
                raise GraphError(f"source {s} outside 0..{n - 1}")
            if seen[s] != gen:
                seen[s] = gen
                dist[s] = 0.0
                parent[s] = -1
                touched.append(s)
                heappush(heap, (0.0, s))

        if targets is not None:
            target_set = (
                targets
                if isinstance(targets, (set, frozenset))
                else {int(t) for t in targets}
            )
            remaining = len(target_set)
        else:
            target_set = None
            remaining = -1

        pops = 0
        relaxations = 0
        while heap:
            d, u = heappop(heap)
            pops += 1
            if done[u] == gen:
                continue
            done[u] = gen
            settled.append(u)
            if remaining >= 0:
                if u in target_set:
                    remaining -= 1
                if remaining <= 0:
                    break
            if max_settled is not None and len(settled) >= max_settled:
                break
            lo, hi = indptr[u], indptr[u + 1]
            for pos in range(lo, hi):
                nd = d + weights[pos]
                if nd <= radius:
                    v = indices[pos]
                    if seen[v] != gen:
                        seen[v] = gen
                        touched.append(v)
                        dist[v] = nd
                        parent[v] = u
                        relaxations += 1
                        heappush(heap, (nd, v))
                    elif nd < dist[v]:
                        dist[v] = nd
                        parent[v] = u
                        relaxations += 1
                        heappush(heap, (nd, v))

        reg = metrics.active()
        reg.counter("dijkstra.runs").add()
        reg.counter("dijkstra.kernel_runs").add()
        reg.counter("dijkstra.pops").add(pops)
        reg.counter("dijkstra.relaxations").add(relaxations)
        reg.counter("dijkstra.settled").add(len(settled))
        return gen

    # ------------------------------------------------------------------
    # Result views (valid until the next run on this workspace)
    # ------------------------------------------------------------------
    def dist_of(self, node: int) -> float:
        """Distance of ``node`` in the latest run (``inf`` if unreached)."""
        return self._dist[node] if self._seen[node] == self._generation else INF

    def parent_of(self, node: int) -> int:
        """Predecessor of ``node`` in the latest run (``-1`` if none)."""
        return (
            self._parent[node]
            if self._seen[node] == self._generation
            else -1
        )

    def settled(self) -> list[int]:
        """Nodes settled by the latest run, in settlement order.

        A live view into workspace state; copy before the next run if the
        order must outlive it.
        """
        return self._settled

    def touched(self) -> list[int]:
        """Nodes whose distance was set by the latest run (live view)."""
        return self._touched

    def gather(self, nodes: Sequence[int]) -> list[float]:
        """Distances of ``nodes`` in the latest run, as plain floats."""
        gen = self._generation
        seen = self._seen
        dist = self._dist
        return [dist[t] if seen[t] == gen else INF for t in nodes]

    def dist_array(self) -> np.ndarray:
        """Full length-``n`` distance vector of the latest run."""
        out = np.full(self._n, INF)
        touched = self._touched
        if touched:
            dist = self._dist
            out[touched] = [dist[t] for t in touched]
        return out

    def parent_array(self) -> np.ndarray:
        """Full length-``n`` predecessor vector of the latest run."""
        out = np.full(self._n, -1, dtype=np.int64)
        touched = self._touched
        if touched:
            parent = self._parent
            out[touched] = [parent[t] for t in touched]
        return out


# ----------------------------------------------------------------------
# Per-network workspace cache
# ----------------------------------------------------------------------
_WORKSPACES: weakref.WeakKeyDictionary[Network, DijkstraWorkspace] = (
    weakref.WeakKeyDictionary()
)


def workspace_for(network: Network) -> DijkstraWorkspace:
    """The shared workspace of ``network`` (created on first use).

    One workspace per live network, dropped automatically when the
    network is garbage-collected.  Callers must extract results before
    triggering another kernel run on the same network.
    """
    ws = _WORKSPACES.get(network)
    if ws is None:
        ws = DijkstraWorkspace(network)
        _WORKSPACES[network] = ws
    return ws


def many_source_lengths(
    network: Network,
    source_groups: Sequence[Sequence[int]],
    *,
    targets: Sequence[int] | None = None,
    radius: float = INF,
    workspace: DijkstraWorkspace | None = None,
) -> np.ndarray:
    """Batched shortest-path lengths: one Dijkstra per source group.

    Each group is one run (a group of several sources is a multi-source
    sweep).  With ``targets`` the result has shape
    ``(len(source_groups), len(targets))`` and each run exits early once
    all targets are settled; without, it has shape
    ``(len(source_groups), n_nodes)``.  All runs reuse one
    :class:`DijkstraWorkspace`, so per-run cost excludes allocation.
    """
    if targets is not None and workspace is None:
        # Function-local import: oracle imports this module through
        # landmarks, so an eager import here would be a cycle.  Only the
        # CH kind carries the bucket primitive; its block entries are
        # bit-identical to the kernel loop below.
        from repro.network import oracle as _oracle

        hierarchy = _oracle.active_ch_for(network)
        if hierarchy is not None:
            return hierarchy.distance_block(
                source_groups, [int(t) for t in targets], radius=radius
            )
    ws = workspace if workspace is not None else workspace_for(network)
    n_groups = len(source_groups)
    if targets is not None:
        target_list = [int(t) for t in targets]
        target_set = set(target_list)
        out = np.empty((n_groups, len(target_list)), dtype=np.float64)
        for i, group in enumerate(source_groups):
            ws.run(group, targets=target_set, radius=radius)  # reprolint: disable=REP112 -- bucket design: one workspace sweep per source group
            out[i, :] = ws.gather(target_list)
        return out
    out = np.full((n_groups, ws.n_nodes), INF, dtype=np.float64)
    for i, group in enumerate(source_groups):
        ws.run(group, radius=radius)  # reprolint: disable=REP112 -- bucket design: one workspace sweep per source group
        touched = ws._touched
        if touched:
            dist = ws._dist
            out[i, touched] = [dist[t] for t in touched]
    return out
