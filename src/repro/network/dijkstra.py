"""Dijkstra shortest-path variants over :class:`~repro.network.graph.Network`.

The paper's algorithms need several flavours of Dijkstra:

* plain single-source distances (objective evaluation, baselines);
* multi-source distances (distance to the nearest selected facility, used
  by the BRNN baseline and Algorithm 4);
* bounded searches that stop past a radius (NLR construction);
* early-exit searches that stop once a target set is settled;
* full customer-facility distance matrices (exact MILP solver).

All of them run over the CSR arrays of :class:`Network` with a binary heap
and lazy deletion, the standard textbook approach that performs well in
pure Python.

Two implementations coexist.  ``_run`` is the simple per-call reference
loop (fresh arrays every call); the batched entry points --
:func:`distance_matrix`, :func:`multi_source_lengths`,
:func:`eccentricity_bound` -- delegate to the preallocated
:class:`~repro.network.kernels.DijkstraWorkspace` kernel, which produces
bit-identical distances without the per-call allocation.
:func:`distance_matrix` additionally supports process-parallel fan-out
(``workers=``, see :mod:`repro.network.parallel`) and consults the
active :mod:`repro.network.distcache` cache when one is installed.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphError
from repro.network import distcache as _distcache
from repro.network.graph import Network
from repro.network.kernels import many_source_lengths, workspace_for
from repro.obs import metrics
from repro.runtime.budget import checkpoint as _budget_checkpoint

INF = math.inf


@dataclass
class DijkstraResult:
    """Outcome of a Dijkstra run.

    Attributes
    ----------
    dist:
        Array of length ``n_nodes``; ``inf`` for unreached nodes.
    parent:
        Predecessor of each node on its shortest path (``-1`` for sources
        and unreached nodes).
    settled:
        Node ids in the order they were settled (popped with final
        distance).
    """

    dist: np.ndarray
    parent: np.ndarray
    settled: list[int] = field(default_factory=list)

    # Post-solve O(path-length) reconstruction; budgets do not apply.
    def path_to(self, target: int) -> list[int]:  # reprolint: disable=REP101
        """Recover the node sequence from the source to ``target``.

        Raises
        ------
        GraphError
            If ``target`` was not reached.
        """
        if not np.isfinite(self.dist[target]):
            raise GraphError(f"node {target} was not reached")
        path = [target]
        while self.parent[path[-1]] >= 0:
            path.append(int(self.parent[path[-1]]))
        path.reverse()
        return path


def _run(
    network: Network,
    sources: Sequence[int],
    *,
    targets: set[int] | None = None,
    radius: float = INF,
    max_settled: int | None = None,
) -> DijkstraResult:
    """Core per-call Dijkstra loop (the legacy reference implementation).

    ``targets`` enables early exit once every target is settled; ``radius``
    prunes the search past a distance bound; ``max_settled`` caps the
    number of settled nodes.  ``targets`` is treated as read-only: the
    run counts down settled targets instead of consuming a copied set.

    The loop works on the plain-list CSR mirror and pushes only plain
    Python floats/ints into the heap -- numpy scalar boxing on heap
    comparisons used to dominate the cost of this function.
    """
    _budget_checkpoint()
    indptr, indices, weights = network.csr_lists
    n = network.n_nodes
    dist: list[float] = [INF] * n
    parent: list[int] = [-1] * n
    settled_order: list[int] = []
    done: list[bool] = [False] * n

    heap: list[tuple[float, int]] = []
    for s in sources:
        s = int(s)
        if not (0 <= s < n):
            raise GraphError(f"source {s} outside 0..{n - 1}")
        if dist[s] > 0.0:
            dist[s] = 0.0
            heapq.heappush(heap, (0.0, s))

    if targets is not None:
        target_set = (
            targets if isinstance(targets, (set, frozenset)) else set(targets)
        )
        remaining = len(target_set)
    else:
        target_set = None
        remaining = -1
    heappush, heappop = heapq.heappush, heapq.heappop
    # Batched instrumentation: locals in the loop, one flush on return.
    pops = 0
    relaxations = 0

    while heap:
        d, u = heappop(heap)
        pops += 1
        if done[u]:
            continue
        done[u] = True
        settled_order.append(u)
        if remaining >= 0:
            if u in target_set:
                remaining -= 1
            if remaining <= 0:
                break
        if max_settled is not None and len(settled_order) >= max_settled:
            break
        lo, hi = indptr[u], indptr[u + 1]
        for pos in range(lo, hi):
            v = indices[pos]
            nd = d + weights[pos]
            if nd < dist[v] and nd <= radius:
                dist[v] = nd
                parent[v] = u
                relaxations += 1
                heappush(heap, (nd, v))

    reg = metrics.active()
    reg.counter("dijkstra.runs").add()
    reg.counter("dijkstra.pops").add(pops)
    reg.counter("dijkstra.relaxations").add(relaxations)
    reg.counter("dijkstra.settled").add(len(settled_order))
    return DijkstraResult(
        dist=np.asarray(dist, dtype=np.float64),
        parent=np.asarray(parent, dtype=np.int64),
        settled=settled_order,
    )


def shortest_path_lengths(
    network: Network,
    source: int,
    *,
    targets: Iterable[int] | None = None,
    radius: float = INF,
) -> DijkstraResult:
    """Single-source shortest-path distances from ``source``.

    Parameters
    ----------
    network:
        The graph to search.
    source:
        Start node.
    targets:
        Optional target set; the search stops once all targets are settled,
        so distances to non-target nodes may be missing (``inf``).
    radius:
        Optional search radius; nodes farther than ``radius`` are not
        explored.
    """
    target_set = set(int(t) for t in targets) if targets is not None else None
    return _run(network, [source], targets=target_set, radius=radius)


def shortest_path(
    network: Network, source: int, target: int
) -> tuple[float, list[int]]:
    """Distance and node path between two nodes.

    Returns ``(distance, path)``; raises :class:`GraphError` when no path
    exists.
    """
    result = _run(network, [source], targets={int(target)})
    if not np.isfinite(result.dist[target]):
        raise GraphError(f"no path from {source} to {target}")
    return float(result.dist[target]), result.path_to(target)


def multi_source_lengths(
    network: Network,
    sources: Iterable[int],
    *,
    radius: float = INF,
    workers: int | None = None,
) -> DijkstraResult:
    """Distances from each node to its nearest source.

    Used to compute, e.g., the distance from every node to the nearest
    selected facility in one sweep.  Runs on the preallocated workspace
    kernel; with ``workers > 1`` (or ``REPRO_WORKERS`` set) and enough
    work, the sweep fans out per connected component across a process
    pool (identical distances; see :mod:`repro.network.parallel`).
    """
    source_list = [int(s) for s in sources]
    if not source_list:
        n = network.n_nodes
        return DijkstraResult(
            dist=np.full(n, INF), parent=np.full(n, -1, dtype=np.int64)
        )
    from repro.network.parallel import ParallelDistanceEngine, resolve_workers

    if resolve_workers(workers) > 1:
        with ParallelDistanceEngine(network, workers) as engine:
            dist, parent, settled = engine.multi_source_lengths(
                source_list, radius=radius
            )
        return DijkstraResult(dist=dist, parent=parent, settled=settled)
    ws = workspace_for(network)
    ws.run(source_list, radius=radius)
    return DijkstraResult(
        dist=ws.dist_array(),
        parent=ws.parent_array(),
        settled=list(ws.settled()),
    )


def distance_matrix(
    network: Network,
    sources: Sequence[int],
    targets: Sequence[int],
    *,
    workers: int | None = None,
    cache: _distcache.DistanceCache | bool | None = None,
) -> np.ndarray:
    """Shortest-path distance matrix between two node sets.

    Runs one early-exit Dijkstra per source on the preallocated
    workspace kernel.  Entry ``[i, j]`` is the distance from
    ``sources[i]`` to ``targets[j]`` (``inf`` if unreachable).  This is
    the input to the exact MILP solver and to brute-force reference
    checks in tests.

    Parameters
    ----------
    workers:
        Process count for fanning source chunks across a pool (default:
        the ``REPRO_WORKERS`` environment variable, else serial).  Small
        calls fall back to the serial kernel; results are bit-identical
        either way.
    cache:
        ``None`` consults the active :mod:`repro.network.distcache`
        scope; a :class:`~repro.network.distcache.DistanceCache` uses
        that cache explicitly; ``False`` disables caching.  The cached
        path serves rows from memoized full single-source runs (same
        distances, reusable across solver calls).
    """
    source_list = [int(s) for s in sources]
    target_arr = np.asarray([int(t) for t in targets], dtype=np.int64)

    if cache is None:
        cache_obj = _distcache.active()
    elif isinstance(cache, _distcache.DistanceCache):
        cache_obj = cache
    else:
        cache_obj = None
    if cache_obj is not None:
        matrix = np.empty((len(source_list), len(target_arr)), dtype=np.float64)
        for i, s in enumerate(source_list):
            matrix[i, :] = cache_obj.lengths(network, s)[target_arr]  # reprolint: disable=REP112 -- matrix contract: one cached Dijkstra per requested source
        return matrix

    from repro.network.parallel import ParallelDistanceEngine, resolve_workers

    if resolve_workers(workers) > 1:
        with ParallelDistanceEngine(network, workers) as engine:
            return engine.distance_matrix(source_list, target_arr)
    # Early exit is only sound when all targets can be settled; when the
    # network is disconnected the run simply exhausts the component.
    return many_source_lengths(
        network, [[s] for s in source_list], targets=target_arr
    )


def nearest_of(
    network: Network, source: int, targets: Iterable[int]
) -> tuple[int, float] | None:
    """The member of ``targets`` nearest to ``source`` (network distance).

    Dijkstra with first-target early exit.  Returns ``(node, distance)``
    or ``None`` when no target is reachable.  Used by Algorithm 4 to find
    the unselected candidate facility closest to an under-served customer.
    """
    _budget_checkpoint()
    target_set = {int(t) for t in targets}
    if not target_set:
        return None
    indptr, indices, weights = network.csr_lists
    dist: dict[int, float] = {int(source): 0.0}
    done: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, int(source))]
    heappush, heappop = heapq.heappush, heapq.heappop
    dist_get = dist.get
    pops = 0
    relaxations = 0
    found: tuple[int, float] | None = None
    while heap:
        d, u = heappop(heap)
        pops += 1
        if u in done:
            continue
        done.add(u)
        if u in target_set:
            found = (u, d)
            break
        for pos in range(indptr[u], indptr[u + 1]):
            v = indices[pos]
            nd = d + weights[pos]
            if nd < dist_get(v, INF):
                dist[v] = nd
                relaxations += 1
                heappush(heap, (nd, v))
    reg = metrics.active()
    reg.counter("dijkstra.runs").add()
    reg.counter("dijkstra.pops").add(pops)
    reg.counter("dijkstra.relaxations").add(relaxations)
    reg.counter("dijkstra.settled").add(len(done))
    return found


def eccentricity_bound(network: Network, source: int) -> float:
    """Largest finite shortest-path distance from ``source``.

    A convenience used by data generators and tests to scale radii.
    Runs on the workspace kernel; settlement order is non-decreasing in
    distance, so the eccentricity is the last settled node's distance.
    """
    ws = workspace_for(network)
    ws.run([int(source)])
    settled = ws.settled()
    return float(ws.dist_of(settled[-1])) if settled else 0.0
