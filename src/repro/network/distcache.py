"""Cross-run LRU cache of single-source shortest-path distance vectors.

A benchmark sweep runs several solvers on the *same* instance; the exact
MILP, BRNN, and k-median baselines all recompute shortest paths from the
same customer and candidate nodes.  :class:`DistanceCache` memoizes full
single-source distance vectors keyed by ``(network fingerprint, source
node)``, so those recomputations become dictionary hits that survive
across solver calls within a sweep.

The cache is scoped like an observability registry: there is an *active*
cache (usually ``None``; :func:`use` installs one for a ``with`` block),
and cache-aware entry points -- notably
:func:`repro.network.dijkstra.distance_matrix` -- consult
:func:`active` when no explicit cache is passed.  Hits, misses, and
evictions are recorded as ``distcache.*`` counters in the active
:mod:`repro.obs.metrics` registry, so profile reports and the CI
benchmark gate track cache effectiveness.

Cached vectors come from *full* (non-early-exit) Dijkstra runs; settled
distances are final, so slicing a cached vector at any target set is
bit-identical to an early-exit run from the same source.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator
from contextlib import contextmanager

import numpy as np

from repro.network.graph import Network
from repro.network.kernels import workspace_for
from repro.obs import metrics

DEFAULT_MAX_ENTRIES = 512

COUNTER_HITS = "distcache.hits"
COUNTER_MISSES = "distcache.misses"
COUNTER_EVICTIONS = "distcache.evictions"


class DistanceCache:
    """LRU cache of full single-source distance vectors.

    Parameters
    ----------
    max_entries:
        Maximum number of cached vectors (each is ``8 * n_nodes`` bytes).
        The least recently used entry is evicted past the limit.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[tuple[str, int], np.ndarray] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lengths(self, network: Network, source: int) -> np.ndarray:
        """Distances from ``source`` to every node (cached, read-only).

        A miss runs one full kernel Dijkstra and stores the vector; the
        returned array is marked non-writeable because it is shared by
        every subsequent hit.
        """
        key = (network.fingerprint, int(source))
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            metrics.active().counter(COUNTER_HITS).add()
            return entry

        self.misses += 1
        metrics.active().counter(COUNTER_MISSES).add()
        ws = workspace_for(network)
        ws.run([int(source)])
        entry = ws.dist_array()
        entry.setflags(write=False)
        self._entries[key] = entry
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            metrics.active().counter(COUNTER_EVICTIONS).add()
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[str, int]) -> bool:
        return key in self._entries

    def clear(self) -> None:
        """Drop every cached vector (statistics are kept)."""
        self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Lifetime hit/miss/eviction/size statistics."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
        }

    def __repr__(self) -> str:
        return (
            f"DistanceCache(entries={len(self._entries)}/"
            f"{self.max_entries}, hits={self.hits}, misses={self.misses})"
        )


# ----------------------------------------------------------------------
# Active-cache management (mirrors repro.obs.metrics)
# ----------------------------------------------------------------------
_active: DistanceCache | None = None


def active() -> DistanceCache | None:
    """The cache installed by the innermost :func:`use` scope, if any."""
    return _active


@contextmanager
def use(cache: DistanceCache) -> Iterator[DistanceCache]:
    """Make ``cache`` the active distance cache within the block.

    Scopes nest; the previous cache is restored on exit.  Entering a
    scope primes the ``distcache.*`` counters in the active metrics
    registry, so reports always carry the cache vocabulary even when no
    cached path runs.
    """
    global _active
    previous = _active
    _active = cache
    reg = metrics.active()
    reg.counter(COUNTER_HITS)
    reg.counter(COUNTER_MISSES)
    reg.counter(COUNTER_EVICTIONS)
    try:
        yield cache
    finally:
        _active = previous
