"""Network Voronoi partitions.

Section VII-F.1 of the paper adapts a Euclidean Voronoi customer-synthesis
technique "to road networks via network distance calculations".  The
primitive it needs is the *network Voronoi partition*: each node labelled
by its nearest source (facility) in shortest-path distance.

Implemented as one multi-source Dijkstra that propagates the source label
along with the distance.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.network.graph import Network
from repro.runtime.budget import checkpoint as _budget_checkpoint

INF = math.inf


@dataclass
class VoronoiPartition:
    """Result of :func:`voronoi_cells`.

    Attributes
    ----------
    label:
        For each node, the index (position in ``sources``) of its nearest
        source; ``-1`` for unreachable nodes.
    dist:
        Distance to that nearest source (``inf`` when unreachable).
    """

    label: np.ndarray
    dist: np.ndarray

    def cell(self, source_index: int) -> np.ndarray:
        """Node ids belonging to the given source's cell."""
        return np.flatnonzero(self.label == source_index)

    def adjacency(self, network: Network) -> dict[int, set[int]]:
        """Which cells touch which: pairs linked by at least one edge.

        This is the network analog of Voronoi-cell neighborhood
        (Delaunay adjacency) used by the check-in customer synthesis.
        """
        neighbors: dict[int, set[int]] = {}
        for u, v, _ in network.edges():
            _budget_checkpoint()
            a, b = int(self.label[u]), int(self.label[v])
            if a < 0 or b < 0 or a == b:
                continue
            neighbors.setdefault(a, set()).add(b)
            neighbors.setdefault(b, set()).add(a)
        return neighbors


def voronoi_cells(network: Network, sources: Sequence[int]) -> VoronoiPartition:
    """Partition nodes by nearest source (network distance).

    Ties are resolved in favour of the source settled first (i.e.,
    deterministically by heap order).
    """
    if not sources:
        raise GraphError("voronoi_cells requires at least one source")
    n = network.n_nodes
    indptr, indices, weights = network.csr
    dist = np.full(n, INF)
    label = np.full(n, -1, dtype=np.int64)
    done = np.zeros(n, dtype=bool)

    heap: list[tuple[float, int, int]] = []
    for idx, s in enumerate(sources):
        s = int(s)
        if not (0 <= s < n):
            raise GraphError(f"source {s} outside 0..{n - 1}")
        if dist[s] > 0.0:
            dist[s] = 0.0
            label[s] = idx
            heapq.heappush(heap, (0.0, idx, s))

    while heap:
        _budget_checkpoint()
        d, src, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        label[u] = src
        for pos in range(indptr[u], indptr[u + 1]):
            v = int(indices[pos])
            nd = d + weights[pos]
            if nd < dist[v]:
                dist[v] = nd
                label[v] = src
                heapq.heappush(heap, (nd, src, v))
    label[~np.isfinite(dist)] = -1
    return VoronoiPartition(label=label, dist=dist)
