"""A* point-to-point shortest paths with a Euclidean heuristic.

The core algorithms use Dijkstra variants (they need one-to-many
distances), but downstream users of the library routinely ask one-to-one
route queries against the same networks -- e.g. "how far would this
customer actually travel to its assigned facility?".  A* with the
straight-line lower bound answers those faster on embedded graphs.

The heuristic is admissible only when edge weights dominate Euclidean
distances (true for all generators in this library, whose weights *are*
Euclidean lengths or longer).  A ``heuristic_scale`` below 1 restores
admissibility for networks whose weights may undercut geometry.
"""

from __future__ import annotations

import heapq
import math

from repro.errors import GraphError
from repro.network.graph import Network
from repro.runtime.budget import checkpoint as _budget_checkpoint

INF = math.inf


def astar_distance(
    network: Network,
    source: int,
    target: int,
    *,
    heuristic_scale: float = 1.0,
) -> tuple[float, list[int]]:
    """Distance and node path from ``source`` to ``target`` via A*.

    Parameters
    ----------
    network:
        A network with coordinates (the heuristic needs them).
    source, target:
        Node ids.
    heuristic_scale:
        Multiplier on the Euclidean lower bound; must not exceed the
        ratio of true to Euclidean distance anywhere, or the result may
        be suboptimal.  The default 1.0 is admissible whenever edge
        weights are at least the Euclidean lengths.

    Raises
    ------
    GraphError
        When coordinates are missing, ids are invalid, or no path exists.
    """
    if not network.has_coords:
        raise GraphError("A* requires node coordinates")
    n = network.n_nodes
    for node in (source, target):
        if not (0 <= node < n):
            raise GraphError(f"node {node} outside 0..{n - 1}")
    coords = network.coords
    indptr, indices, weights = network.csr

    tx, ty = coords[target]

    def h(node: int) -> float:
        dx = coords[node, 0] - tx
        dy = coords[node, 1] - ty
        return heuristic_scale * math.hypot(dx, dy)

    dist: dict[int, float] = {source: 0.0}
    parent: dict[int, int] = {}
    done: set[int] = set()
    heap: list[tuple[float, int]] = [(h(source), source)]

    while heap:
        _budget_checkpoint()
        _, u = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        if u == target:
            path = [u]
            while path[-1] in parent:
                path.append(parent[path[-1]])
            path.reverse()
            return dist[u], path
        du = dist[u]
        for pos in range(indptr[u], indptr[u + 1]):
            v = int(indices[pos])
            nd = du + weights[pos]
            if nd < dist.get(v, INF):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd + h(v), v))
    raise GraphError(f"no path from {source} to {target}")
