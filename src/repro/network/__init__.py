"""Network substrate: graphs, shortest paths, and incremental searches.

This subpackage implements the road-network layer the paper's algorithms
run on: a compact weighted-graph representation (:class:`~repro.network.graph.Network`),
Dijkstra variants (:mod:`repro.network.dijkstra`), preallocated batched
kernels (:mod:`repro.network.kernels`), process-parallel fan-out
(:mod:`repro.network.parallel`), a cross-run distance cache
(:mod:`repro.network.distcache`), a precomputed ALT landmark distance
oracle (:mod:`repro.network.oracle` / :mod:`repro.network.landmarks`),
resumable nearest-facility streams
(:mod:`repro.network.incremental`), and connected-component bookkeeping
(:mod:`repro.network.components`).
"""

from repro.network.astar import astar_distance
from repro.network.components import (
    ComponentStructure,
    component_labels,
    connected_components,
)
from repro.network.dijkstra import (
    DijkstraResult,
    distance_matrix,
    multi_source_lengths,
    nearest_of,
    shortest_path,
    shortest_path_lengths,
)
from repro.network.distcache import DistanceCache
from repro.network.graph import GraphStats, Network
from repro.network.incremental import NearestFacilityStream, StreamCursor, StreamPool
from repro.network.kernels import DijkstraWorkspace, many_source_lengths
from repro.network.landmarks import select_landmarks
from repro.network.oracle import AltOracle, OracleFacilityStream
from repro.network.parallel import ParallelDistanceEngine, resolve_workers
from repro.network.subgraph import (
    SubgraphMapping,
    giant_component_instance,
    induced_subgraph,
    largest_component,
    restrict_instance,
)
from repro.network.voronoi import VoronoiPartition, voronoi_cells

__all__ = [
    "Network",
    "GraphStats",
    "DijkstraResult",
    "shortest_path_lengths",
    "shortest_path",
    "multi_source_lengths",
    "distance_matrix",
    "nearest_of",
    "DijkstraWorkspace",
    "many_source_lengths",
    "ParallelDistanceEngine",
    "resolve_workers",
    "DistanceCache",
    "AltOracle",
    "OracleFacilityStream",
    "select_landmarks",
    "astar_distance",
    "VoronoiPartition",
    "voronoi_cells",
    "SubgraphMapping",
    "induced_subgraph",
    "largest_component",
    "restrict_instance",
    "giant_component_instance",
    "NearestFacilityStream",
    "StreamCursor",
    "StreamPool",
    "ComponentStructure",
    "connected_components",
    "component_labels",
]
