"""Contraction-hierarchy distance oracle with many-to-many bucket sweeps.

The ALT tier (:mod:`repro.network.oracle`) accelerates *point-to-point*
queries but leaves the all-pairs-style ``distance_matrix`` /
``many_source_lengths`` sweeps -- the dominant cost of the exact and
local-search solvers -- on the raw kernel.  This module implements the
full-strength preprocessing tier the ROADMAP names: contraction
hierarchies (Geisberger et al.), where every node is assigned a rank and
*shortcut* arcs preserve shortest-path distances among higher-ranked
nodes.

Preprocessing (:meth:`ContractionHierarchy.build`):

* **edge-difference ordering** -- nodes are contracted in priority order
  ``(#shortcuts needed) - (degree) + (#contracted neighbors)``, drawn
  from a lazy-update priority queue: a popped node's priority is
  recomputed and the pop retried when it no longer beats the queue head,
  so stale entries never force contraction out of order;
* **witness searches** -- before contracting ``v``, a capped Dijkstra
  from each in-neighbor ``u`` (excluding ``v``) looks for a *witness*
  path no longer than ``u -> v -> w``; the shortcut is inserted unless a
  witness is strictly shorter by the :data:`_WITNESS_SLACK` relative
  margin.  The cap only ever *adds* shortcuts (a missed witness is
  harmless), and the margin keeps every floating-point-tied path
  representable in the hierarchy -- the cornerstone of bit-identity;
* **upward/downward CSR halves** -- the surviving arcs split by rank:
  forward searches relax only rank-increasing arcs, backward searches
  only rank-decreasing ones (stored reversed), so every search space is
  a small cone instead of the whole graph.

Queries: :meth:`ContractionHierarchy.query` runs the bidirectional
upward sweep; :meth:`ContractionHierarchy.distance_block` is the
many-to-many bucket algorithm (Knopp et al.): one backward cone per
*target* deposits ``(target, dist)`` entries into per-node buckets, then
one forward sweep per *source group* scans the buckets of the nodes it
settles -- a whole distance-matrix block without a single kernel
Dijkstra.

Bit-identity with the kernel path is by construction, not luck.  The
kernel returns the minimum over all paths of the *left-to-right* IEEE
float sum of edge weights (float addition of non-negative terms is
monotone).  Shortcut weights are differently-associated sums, so CH
g-values are only used for *search*; the returned value re-folds the
winning path's original edge weights left-to-right (shortcuts unpack via
their middle node, :meth:`ContractionHierarchy._flat_arc`).  Near-ties
are handled by re-folding every meeting candidate within the
:data:`_TIE_EPS` relative band of the best CH value and returning the
minimum -- exactly the value the kernel's own tie-breaking converges to.

Persistence mirrors the ALT blobs: fingerprint-keyed versioned ``.npz``
(:func:`cache_path` / :func:`load_or_build`), atomic writes, silent
rebuild on any load failure.  Activation plugs into the shared oracle
scope (``REPRO_ORACLE=ch``, ``oracle="ch"`` solver option); see
:func:`repro.network.oracle.resolve`.
"""

from __future__ import annotations

import heapq
import math
import os
from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

from repro.errors import BudgetExceeded, GraphError
from repro.network.graph import Network
from repro.obs import metrics
from repro.runtime.budget import checkpoint as _budget_checkpoint

INF = math.inf

#: On-disk blob format version; bump on any incompatible layout change.
CH_FORMAT_VERSION = 1

COUNTER_SHORTCUTS = "ch.shortcuts"
COUNTER_UPWARD_SETTLES = "ch.upward_settles"
COUNTER_BUCKET_SCANS = "ch.bucket_scans"
COUNTER_MATRIX_BLOCKS = "ch.matrix_blocks"

#: Relative margin for witness-search shortcut omission.  A shortcut is
#: skipped only when a witness path is shorter by more than this
#: fraction of the shortcut weight.  Witness and shortcut lengths are
#: both float path sums whose association differs from the kernel's, so
#: an exact comparison could drop a shortcut that a floating-point-tied
#: shortest path needs; the margin (orders of magnitude above the
#: ~1e-12 relative accumulation error of bounded searches) guarantees
#: tied paths always stay representable.  Extra shortcuts are always
#: safe -- they cost a few arcs, never correctness.
_WITNESS_SLACK = 1e-9

#: Relative near-tie band for meeting-node candidates.  The true kernel
#: answer is the minimum left-to-right sum over all paths; any path
#: whose differently-associated CH sum is within this band of the best
#: could hold that minimum, so every such candidate is re-folded and the
#: smallest re-folded value returned.  Distinct path lengths of the
#: instance generators differ by far more than this, so the band almost
#: always holds exactly one candidate.
_TIE_EPS = 1e-9

#: Settled-node cap per witness search.  Caps only trade shortcuts for
#: build speed: an unfinished witness search simply fails to certify an
#: omission, so the shortcut is inserted and correctness is untouched.
_WITNESS_CAP = 30

_SWEEP_COUNTERS = metrics.CounterBlock(
    COUNTER_UPWARD_SETTLES, COUNTER_BUCKET_SCANS
)


# ----------------------------------------------------------------------
# Preprocessing: edge-difference ordering + witness-searched contraction
# ----------------------------------------------------------------------
class _Contractor:
    """One-shot contraction state machine over a dynamic arc graph.

    Owns the mutable adjacency of the *remaining* (uncontracted) graph
    plus the append-only master arc map that the finished hierarchy
    keeps.  Master records ``(u, v) -> (weight, mid)`` are overwritten
    only by strictly smaller weights, and shortcuts are only ever
    created between two still-uncontracted endpoints -- so once ``mid``
    is contracted its constituent records ``(u, mid)`` / ``(mid, v)``
    are frozen, and end-state lookups reproduce every shortcut's
    creation-time decomposition exactly (what :meth:`unpacking
    <ContractionHierarchy._flat_arc>` relies on).
    """

    def __init__(
        self,
        indptr: list[int],
        indices: list[int],
        weights: list[float],
        n: int,
        *,
        symmetric: bool = False,
    ) -> None:
        # One checkpoint per construction (budget granularity: the CSR
        # scan below is a single heavy operation).
        _budget_checkpoint()
        self.n = n
        # Master arc map; mid == -1 marks an original edge.  Parallel
        # input arcs collapse to their minimum weight, matching the
        # relaxation the kernel's Dijkstra would pick.
        arcs: dict[tuple[int, int], tuple[float, int]] = {}
        for u in range(n):
            for pos in range(indptr[u], indptr[u + 1]):
                v = indices[pos]
                if v == u:
                    continue
                w = weights[pos]
                cur = arcs.get((u, v))
                if cur is None or w < cur[0]:
                    arcs[(u, v)] = (w, -1)
        self.arcs = arcs
        # Undirected networks store every edge in both directions with
        # the same weight; contraction preserves the mirror invariant
        # (shortcut pairs get the same commutative sum), so each
        # unordered pair needs only one witness decision.
        self.symmetric = symmetric
        self.out_adj: list[dict[int, float]] = [{} for _ in range(n)]
        self.in_adj: list[dict[int, float]] = [{} for _ in range(n)]
        for (u, v), (w, _mid) in arcs.items():
            self.out_adj[u][v] = w
            self.in_adj[v][u] = w
        self.rank = [-1] * n
        self.deleted = [0] * n
        # Bumped for every node whose neighborhood a contraction edits;
        # lets the ordering loop reuse a requeued node's witness results
        # when nothing around it changed in the meantime.
        self.version = [0] * n

    def _unwitnessed(
        self, source: int, excluded: int, pairs: list[tuple[int, float]]
    ) -> list[tuple[int, float]]:
        """Shortcut targets of ``source`` that no witness path rules out.

        Runs one capped Dijkstra from ``source`` skipping ``excluded``,
        terminating as soon as every candidate ``(w, u->v->w weight)``
        pair is decided: a target settled below its shortcut weight by
        the :data:`_WITNESS_SLACK` margin is witnessed (no shortcut),
        one settled at or above it is refuted.  Targets still open when
        the cap or distance bound exhausts keep their shortcuts -- caps
        only ever add safe extra arcs.
        """
        # One checkpoint per witness search; the capped per-edge loop
        # below stays call-free.
        _budget_checkpoint()
        out_adj = self.out_adj
        open_pairs = dict(pairs)
        limit = max(open_pairs.values())
        needed: list[tuple[int, float]] = []
        dist = {source: 0.0}
        dist_get = dist.get
        heap = [(0.0, source)]
        heappush, heappop = heapq.heappush, heapq.heappop
        budget = _WITNESS_CAP
        while heap and budget > 0:
            d, x = heappop(heap)
            # Stale-entry test: relaxations only push strictly improved
            # labels, so a pop matching its label is the settle.
            if d > dist[x]:
                continue
            if d > limit:
                break
            budget -= 1
            sc = open_pairs.pop(x, None)
            if sc is not None:
                if d > sc - _WITNESS_SLACK * sc:
                    needed.append((x, sc))
                if not open_pairs:
                    break
                if sc >= limit:
                    # The farthest target resolved; the search radius
                    # shrinks to the farthest still-open shortcut.
                    limit = max(open_pairs.values())
            for y, w in out_adj[x].items():
                if y == excluded:
                    continue
                nd = d + w
                if nd <= limit and nd < dist_get(y, INF):
                    dist[y] = nd
                    heappush(heap, (nd, y))
        # Targets the cap or bound left unsettled: a *tentative* label is
        # still an upper bound on the true detour, so a label already
        # below the margin certifies the witness; anything else keeps
        # its shortcut.
        for w, sc in open_pairs.items():
            if dist_get(w, INF) > sc - _WITNESS_SLACK * sc:
                needed.append((w, sc))
        needed.sort()
        return needed

    def simulate(self, v: int) -> tuple[list[tuple[int, int, float]], int]:
        """Witness-search the contraction of ``v`` without performing it.

        Returns ``(shortcuts, edge_difference)`` where each shortcut is
        ``(u, w, weight)``.  Doubles as the priority evaluation *and*
        the contraction's shortcut computation, so a successful lazy-pop
        never repeats the witness work.
        """
        _budget_checkpoint()
        ins = self.in_adj[v]
        outs = self.out_adj[v]
        shortcuts: list[tuple[int, int, float]] = []
        if ins and outs:
            out_items = sorted(outs.items())
            if self.symmetric:
                # One witness decision per unordered pair: the reverse
                # detour has the same real length (margins absorb the
                # reversed association), and the reverse shortcut the
                # same commutative weight.
                for u, w1 in out_items:
                    pairs = [(w, w1 + w2) for w, w2 in out_items if w > u]
                    if not pairs:
                        continue
                    for w, sc in self._unwitnessed(u, v, pairs):
                        shortcuts.append((u, w, sc))
                        shortcuts.append((w, u, sc))
            else:
                for u, w1 in sorted(ins.items()):
                    pairs = [(w, w1 + w2) for w, w2 in out_items if w != u]
                    if not pairs:
                        continue
                    for w, sc in self._unwitnessed(u, v, pairs):
                        shortcuts.append((u, w, sc))
        return shortcuts, len(shortcuts) - (len(ins) + len(outs))

    def contract(self, v: int, shortcuts: list[tuple[int, int, float]]) -> None:
        """Remove ``v`` from the remaining graph, inserting ``shortcuts``."""
        _budget_checkpoint()
        arcs = self.arcs
        out_adj = self.out_adj
        in_adj = self.in_adj
        for u, w, sc in shortcuts:
            rec = arcs.get((u, w))
            if rec is None or sc < rec[0]:
                arcs[(u, w)] = (sc, v)
            cur = out_adj[u].get(w)
            if cur is None or sc < cur:
                out_adj[u][w] = sc
                in_adj[w][u] = sc
        deleted = self.deleted
        version = self.version
        for u, w, _sc in shortcuts:
            version[u] += 1
            version[w] += 1
        for u in in_adj[v]:
            del out_adj[u][v]
            deleted[u] += 1
            version[u] += 1
        for w in out_adj[v]:
            del in_adj[w][v]
            deleted[w] += 1
            version[w] += 1
        in_adj[v] = {}
        out_adj[v] = {}

    def run(self) -> None:
        """Contract every node in lazy-updated edge-difference order."""
        simulate = self.simulate
        rank = self.rank
        deleted = self.deleted
        version = self.version
        # Witness results keyed by neighborhood version.  Reuse is
        # sound: an unchanged version means the node's arcs are
        # identical, omissions stay valid because contraction preserves
        # remaining-graph distances exactly, and stale insertions could
        # only add safe extra shortcuts.
        memo: dict[int, tuple[int, list[tuple[int, int, float]], int]] = {}
        pq: list[tuple[int, int]] = []
        for v in range(self.n):
            # One checkpoint per priority evaluation: the witness
            # searches inside are the contraction loop's unit of work
            # for cooperative budgets (reprolint REP101).
            _budget_checkpoint()
            shortcuts, diff = simulate(v)
            memo[v] = (version[v], shortcuts, diff)
            pq.append((diff, v))
        heapq.heapify(pq)
        heappush, heappop = heapq.heappush, heapq.heappop
        order = 0
        while pq:
            _budget_checkpoint()
            _, v = heappop(pq)
            if rank[v] >= 0:
                continue
            cached = memo.get(v)
            if cached is not None and cached[0] == version[v]:
                _, shortcuts, diff = cached
            else:
                shortcuts, diff = simulate(v)
                memo[v] = (version[v], shortcuts, diff)
            priority = diff + deleted[v]
            if pq and priority > pq[0][0]:
                # Stale priority: requeue with the fresh value and let a
                # currently-better node contract first.
                heappush(pq, (priority, v))
                continue
            del memo[v]
            self.contract(v, shortcuts)  # reprolint: disable=REP112 -- CH preprocessing contracts each node exactly once
            rank[v] = order
            order += 1


# ----------------------------------------------------------------------
# The hierarchy
# ----------------------------------------------------------------------
class ContractionHierarchy:
    """Rank order plus shortcut arcs, with query and bucket machinery.

    Instances come from :meth:`build` (or :func:`load_or_build`), never
    direct construction.  Like :class:`~repro.network.oracle.AltOracle`,
    a hierarchy is keyed to one network fingerprint; :meth:`bind`
    re-attaches a loaded instance after the fingerprint check.
    """

    def __init__(
        self,
        *,
        fingerprint: str,
        n_nodes: int,
        directed: bool,
        rank: np.ndarray,
        arc_u: np.ndarray,
        arc_v: np.ndarray,
        arc_w: np.ndarray,
        arc_mid: np.ndarray,
        network: Network | None = None,
        source_path: str | None = None,
    ) -> None:
        if not (
            len(arc_u) == len(arc_v) == len(arc_w) == len(arc_mid)
        ) or rank.shape != (n_nodes,):
            raise GraphError("inconsistent contraction-hierarchy arrays")
        self._fingerprint = fingerprint
        self._n_nodes = int(n_nodes)
        self._directed = bool(directed)
        self._rank_arr = rank
        self._arc_u = arc_u
        self._arc_v = arc_v
        self._arc_w = arc_w
        self._arc_mid = arc_mid
        self._network = network
        self.source_path = source_path
        # Lazy search-side structures (see materialize_caches).
        self._rank: list[int] | None = None
        self._arcs: dict[tuple[int, int], tuple[float, int]] | None = None
        self._up: tuple[list[int], list[int], list[float]] | None = None
        self._down: tuple[list[int], list[int], list[float]] | None = None
        self._n_up_arcs = 0
        #: Reusable generation-stamped label arrays for forward sweeps.
        self._sweep_state: _SweepState | None = None
        #: Left-to-right weight tuples of unpacked arcs, memoized.
        self._flat: dict[tuple[int, int], tuple[float, ...]] = {}
        #: Target-cone sets memoized per facility/target tuple (small
        #: FIFO: repeated blocks and stream pools reuse one facility set).
        self._cones: dict[tuple[int, ...], _TargetCones] = {}

    # ------------------------------------------------------------------
    # Construction and binding
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, network: Network) -> ContractionHierarchy:
        """Contract ``network`` bottom-up and keep the surviving arcs.

        Deterministic given the network: priorities tie-break on node
        id and the arc arrays are stored sorted, so a rebuilt hierarchy
        is byte-identical to a persisted-and-reloaded one.  Bumps
        ``oracle.builds`` and counts inserted shortcuts under
        ``ch.shortcuts``.
        """
        indptr, indices, weights = network.csr_lists
        contractor = _Contractor(
            indptr,
            indices,
            weights,
            network.n_nodes,
            symmetric=not network.directed,
        )
        contractor.run()
        items = sorted(contractor.arcs.items())
        arc_u = np.asarray([uv[0] for uv, _ in items], dtype=np.int64)
        arc_v = np.asarray([uv[1] for uv, _ in items], dtype=np.int64)
        arc_w = np.asarray([rec[0] for _, rec in items], dtype=np.float64)
        arc_mid = np.asarray([rec[1] for _, rec in items], dtype=np.int64)
        reg = metrics.active()
        reg.counter("oracle.builds").add()
        reg.counter(COUNTER_SHORTCUTS).add(int((arc_mid >= 0).sum()))
        ch = cls(
            fingerprint=network.fingerprint,
            n_nodes=network.n_nodes,
            directed=network.directed,
            rank=np.asarray(contractor.rank, dtype=np.int64),
            arc_u=arc_u,
            arc_v=arc_v,
            arc_w=arc_w,
            arc_mid=arc_mid,
            network=network,
        )
        ch.materialize_caches()
        return ch

    def bind(self, network: Network) -> ContractionHierarchy:
        """Attach a live network after a fingerprint check."""
        if not self.matches(network):
            raise GraphError(
                f"hierarchy was built for fingerprint "
                f"{self._fingerprint[:12]}..., network has "
                f"{network.fingerprint[:12]}..."
            )
        self._network = network
        return self

    def matches(self, network: Network) -> bool:
        """Whether this hierarchy was built for exactly this adjacency."""
        return (
            self._n_nodes == network.n_nodes
            and self._fingerprint == network.fingerprint
        )

    def materialize_caches(self) -> None:
        """Force-fill the lazy search-side structures.

        Splits the master arcs into the upward CSR half (forward
        searches) and the reversed downward half (backward searches).
        Called before handing the hierarchy to a worker pool so no
        pool-reachable read performs a first-touch write on a shared
        instance (the :class:`~repro.network.parallel` pre-fork
        contract, reprolint REP103).
        """
        if self._up is not None:
            return
        # One checkpoint per materialization (a per-network one-off).
        _budget_checkpoint()
        n = self._n_nodes
        rank = [int(r) for r in self._rank_arr]
        arcs: dict[tuple[int, int], tuple[float, int]] = {}
        up_lists: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        down_lists: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        for u, v, w, mid in zip(
            self._arc_u.tolist(),
            self._arc_v.tolist(),
            self._arc_w.tolist(),
            self._arc_mid.tolist(),
        ):
            arcs[(u, v)] = (w, mid)
            if rank[u] < rank[v]:
                up_lists[u].append((v, w))
            else:
                # Stored reversed: a backward search from target t
                # expands node y over original arcs (x -> y) with
                # rank[x] > rank[y].
                down_lists[v].append((u, w))
        self._rank = rank
        self._arcs = arcs
        self._up = _pack_csr(up_lists)
        self._down = _pack_csr(down_lists)
        self._n_up_arcs = sum(len(lst) for lst in up_lists)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """Fingerprint of the network the hierarchy was built for."""
        return self._fingerprint

    @property
    def n_arcs(self) -> int:
        """Total surviving arcs (original + shortcuts)."""
        return len(self._arc_u)

    @property
    def n_shortcuts(self) -> int:
        """Number of shortcut arcs (mid-node records)."""
        return int((self._arc_mid >= 0).sum())

    def info(self) -> dict[str, Any]:
        """JSON-ready summary (the ``repro oracle info --kind ch`` payload)."""
        self.materialize_caches()
        n = self._n_nodes
        return {
            "format_version": CH_FORMAT_VERSION,
            "kind": "ch",
            "fingerprint": self._fingerprint,
            "n_nodes": n,
            "directed": self._directed,
            "n_arcs": self.n_arcs,
            "n_shortcuts": self.n_shortcuts,
            "avg_upward_degree": (self._n_up_arcs / n) if n else 0.0,
            "blob_bytes": int(
                self._rank_arr.nbytes
                + self._arc_u.nbytes
                + self._arc_v.nbytes
                + self._arc_w.nbytes
                + self._arc_mid.nbytes
            ),
            "source_path": self.source_path,
        }

    def __repr__(self) -> str:
        return (
            f"ContractionHierarchy(n_nodes={self._n_nodes}, "
            f"arcs={self.n_arcs}, shortcuts={self.n_shortcuts}, "
            f"fingerprint={self._fingerprint[:12]}...)"
        )

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def _upward_sweep(
        self, seeds: Iterable[int]
    ) -> tuple[list[int], list[float], list[int]]:
        """Exhaustive forward Dijkstra on the upward half.

        Multi-seed: every seed starts at distance zero (the kernel's
        multi-source semantics).  Returns ``(settled, dist, parent)``
        where ``settled`` lists the non-stalled nodes in settle order
        and ``dist``/``parent`` are the shared generation-stamped label
        arrays -- **valid only until the next forward sweep**; callers
        that outlive their sweep (streams) must copy what they keep.
        Seeds carry parent ``-1``.
        """
        _budget_checkpoint()
        self.materialize_caches()
        indptr, indices, weights = self._up  # type: ignore[misc]
        dptr, dind, dw = self._down  # type: ignore[misc]
        n = self._n_nodes
        state = self._sweep_state
        if state is None:
            state = self._sweep_state = _SweepState(n)
        state.generation += 1
        gen = state.generation
        dist = state.dist
        parent = state.parent
        stamp = state.stamp
        done = state.done
        settled: list[int] = []
        heap: list[tuple[float, int]] = []
        for s in seeds:
            s = int(s)
            if not (0 <= s < n):
                raise GraphError(f"node {s} outside 0..{n - 1}")
            if stamp[s] != gen:
                stamp[s] = gen
                dist[s] = 0.0
                parent[s] = -1
                heap.append((0.0, s))
        heap.sort()
        stall_margin = 1.0 - _TIE_EPS
        heappush, heappop = heapq.heappush, heapq.heappop
        while heap:
            d, u = heappop(heap)
            if done[u] == gen:
                continue
            done[u] = gen
            # Stall-on-demand: a higher-ranked in-neighbor that reaches
            # u strictly shorter (beyond the tie band) proves u's upward
            # prefix is not on any candidate shortest path -- skip both
            # expansion and bucket scanning.  The strict margin keeps
            # every floating-point-tied witness meeting node alive.
            stalled = False
            for pos in range(dptr[u], dptr[u + 1]):
                y = dind[pos]
                if stamp[y] == gen and dist[y] + dw[pos] < d * stall_margin:
                    stalled = True
                    break
            if stalled:
                continue
            settled.append(u)
            lo, hi = indptr[u], indptr[u + 1]
            for pos in range(lo, hi):
                v = indices[pos]
                nd = d + weights[pos]
                if stamp[v] != gen:
                    stamp[v] = gen
                    dist[v] = nd
                    parent[v] = u
                    heappush(heap, (nd, v))
                elif nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    heappush(heap, (nd, v))
        c_settles, _ = _SWEEP_COUNTERS.get()
        c_settles.add(len(settled))
        return settled, dist, parent

    def _downward_cone(
        self, target: int
    ) -> tuple[dict[int, float], dict[int, int]]:
        """Exhaustive backward Dijkstra from ``target`` on the downward half.

        ``parent[x]`` is the next node on the ``x -> target`` walk (the
        node ``x`` was reached *from* in the reversed search), used to
        re-fold the original weight sequence of the descent.
        """
        _budget_checkpoint()
        self.materialize_caches()
        indptr, indices, weights = self._down  # type: ignore[misc]
        uptr, uind, uw = self._up  # type: ignore[misc]
        n = self._n_nodes
        t = int(target)
        if not (0 <= t < n):
            raise GraphError(f"node {t} outside 0..{n - 1}")
        dist: dict[int, float] = {t: 0.0}
        parent: dict[int, int] = {t: -1}
        settled: dict[int, float] = {}
        heap: list[tuple[float, int]] = [(0.0, t)]
        stall_margin = 1.0 - _TIE_EPS
        heappush, heappop = heapq.heappush, heapq.heappop
        while heap:
            d, y = heappop(heap)
            if y in settled or d > dist[y]:
                continue
            # Symmetric stall-on-demand: an upward arc into a node the
            # cone already reaches strictly shorter proves y's descent
            # is not on any candidate shortest path (same margin
            # argument as the forward sweep); stalled nodes deposit no
            # bucket entry.
            stalled = False
            for pos in range(uptr[y], uptr[y + 1]):
                dx = dist.get(uind[pos])
                if dx is not None and dx + uw[pos] < d * stall_margin:
                    stalled = True
                    break
            if stalled:
                continue
            settled[y] = d
            lo, hi = indptr[y], indptr[y + 1]
            for pos in range(lo, hi):
                x = indices[pos]
                nd = d + weights[pos]
                if nd < dist.get(x, INF):
                    dist[x] = nd
                    parent[x] = y
                    heappush(heap, (nd, x))
        c_settles, _ = _SWEEP_COUNTERS.get()
        c_settles.add(len(settled))
        return settled, parent

    def _cones_for(self, targets: tuple[int, ...]) -> _TargetCones:
        """Memoized backward cones + node buckets for a target tuple."""
        cones = self._cones.get(targets)
        if cones is None:
            cones = _TargetCones(self, targets)
            if len(self._cones) >= 4:
                self._cones.pop(next(iter(self._cones)))
            self._cones[targets] = cones
        return cones

    # ------------------------------------------------------------------
    # Exact left-to-right re-folding
    # ------------------------------------------------------------------
    def _flat_arc(self, u: int, v: int) -> tuple[float, ...]:
        """Original edge weights under arc ``(u, v)``, in path order.

        Shortcuts expand through their middle nodes iteratively (no
        recursion: nesting depth grows with the hierarchy height).  The
        constituent records are frozen once the middle node contracts,
        so end-state lookups reproduce the creation-time decomposition.
        """
        flat = self._flat
        cached = flat.get((u, v))
        if cached is not None:
            return cached
        # One checkpoint per cold expansion (memoized thereafter).
        _budget_checkpoint()
        arcs = self._arcs
        assert arcs is not None
        out: list[float] = []
        stack = [(u, v)]
        while stack:
            a, b = stack.pop()
            hit = flat.get((a, b))
            if hit is not None:
                out.extend(hit)
                continue
            w, mid = arcs[(a, b)]
            if mid < 0:
                out.append(w)
            else:
                stack.append((mid, b))
                stack.append((a, mid))
        result = tuple(out)
        flat[(u, v)] = result
        return result

    def _lr_forward(
        self,
        x: int,
        parent: dict[int, int] | list[int],
        memo: dict[int, float],
    ) -> float:
        """Left-to-right fold of the sweep path from its seed to ``x``.

        Memoized per forward sweep: the fold of a prefix is reused by
        every candidate deeper on the same tree branch.
        """
        _budget_checkpoint()
        chain: list[int] = []
        y = x
        while y not in memo:
            p = parent[y]
            if p < 0:
                memo[y] = 0.0
                break
            chain.append(y)
            y = p
        for y in reversed(chain):
            p = parent[y]
            acc = memo[p]
            for w in self._flat_arc(p, y):  # reprolint: disable=REP112 -- flat-arc expansion per parent hop; total work bounded by the cone size
                acc = acc + w
            memo[y] = acc
        return memo[x]

    def _lr_value(
        self,
        x: int,
        fwd_parent: dict[int, int] | list[int],
        fwd_memo: dict[int, float],
        cone: _TargetCones,
        target_index: int,
    ) -> float:
        """Exact kernel-identical distance through meeting node ``x``."""
        _budget_checkpoint()
        acc = self._lr_forward(x, fwd_parent, fwd_memo)
        for w in cone.descent_weights(target_index, x):
            acc = acc + w
        return acc

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, source: int, target: int) -> float:
        """Exact point-to-point distance via the bidirectional sweep.

        Bit-identical to a kernel Dijkstra between the same nodes: the
        winning up-down path (and every near-tie candidate) is unpacked
        to original edges and re-folded left-to-right, which is exactly
        the value the kernel's relaxation order converges to.  Returns
        ``inf`` when unreachable.
        """
        _budget_checkpoint()
        s, t = int(source), int(target)
        n = self._n_nodes
        for node in (s, t):
            if not (0 <= node < n):
                raise GraphError(f"node {node} outside 0..{n - 1}")
        metrics.active().counter("oracle.queries").add()
        if s == t:
            return 0.0
        cone = self._cones_for((t,))
        settled, dist_f, parent_f = self._upward_sweep([s])
        best = INF
        candidates: list[int] = []
        _, c_scans = _SWEEP_COUNTERS.get()
        scans = 0
        bucket = cone.bucket
        for x in settled:
            entries = bucket.get(x)
            if entries is None:
                continue
            scans += len(entries)
            db = entries[0][1]
            val = dist_f[x] + db
            if val <= best * (1.0 + _TIE_EPS):
                if val < best:
                    best = val
                candidates.append(x)
        c_scans.add(scans)
        if best == INF:
            return INF
        memo: dict[int, float] = {}
        threshold = best * (1.0 + _TIE_EPS)
        result = INF
        for x in candidates:
            if dist_f[x] + bucket[x][0][1] > threshold:
                continue
            lr = self._lr_value(x, parent_f, memo, cone, 0)  # reprolint: disable=REP112 -- bucket sweep: one memoized LR evaluation per settled label
            if lr < result:
                result = lr
        return result

    def distance_block(
        self,
        source_groups: Sequence[Sequence[int]],
        targets: Sequence[int],
        *,
        radius: float = INF,
    ) -> np.ndarray:
        """Many-to-many bucket sweep: a whole distance-matrix block.

        One backward cone per target deposits ``(target, dist)`` bucket
        entries (memoized across blocks with identical targets); one
        forward sweep per source group then scans the buckets of the
        nodes it settles.  Entry ``[i, j]`` is bit-identical to the
        kernel's ``many_source_lengths(..., targets=...)`` value; with
        ``radius``, entries beyond the bound are ``inf`` (left-to-right
        prefix sums of positive weights are monotone, so the post-hoc
        filter matches the kernel's in-search pruning).
        """
        target_list = [int(t) for t in targets]
        metrics.active().counter(COUNTER_MATRIX_BLOCKS).add()
        cone = self._cones_for(tuple(target_list))
        n_targets = len(target_list)
        out = np.full((len(source_groups), n_targets), INF, dtype=np.float64)
        _, c_scans = _SWEEP_COUNTERS.get()
        band = 1.0 + _TIE_EPS
        for i, group in enumerate(source_groups):
            settled, dist_f, parent_f = self._upward_sweep(group)  # reprolint: disable=REP112 -- many-to-many design: one upward sweep per source group
            best = [INF] * n_targets
            # thresh[j] trails best[j] * band so the hot loop compares
            # without multiplying; entries above it can't be the minimum
            # or a floating-point tie of it.
            thresh = [INF] * n_targets
            cands: list[list[tuple[float, int]]] = [[] for _ in range(n_targets)]
            scans = 0
            bucket_get = cone.bucket.get
            for x in settled:
                entries = bucket_get(x)
                if entries is None:
                    continue
                scans += len(entries)
                gf = dist_f[x]
                for j, db in entries:
                    val = gf + db
                    if val <= thresh[j]:
                        if val < best[j]:
                            best[j] = val
                            thresh[j] = val * band
                        cands[j].append((val, x))
            c_scans.add(scans)
            memo: dict[int, float] = {}
            row = out[i]
            for j in range(n_targets):
                bj = best[j]
                if bj == INF:
                    continue
                threshold = bj * (1.0 + _TIE_EPS)
                result = INF
                for val, x in cands[j]:
                    if val > threshold:
                        continue
                    lr = self._lr_value(x, parent_f, memo, cone, j)  # reprolint: disable=REP112 -- bucket sweep: one memoized LR evaluation per settled label
                    if lr < result:
                        result = lr
                if result <= radius:
                    row[j] = result
        return out

    def make_stream(
        self, source: int, facility_nodes: Iterable[int]
    ) -> CHFacilityStream:
        """A nearest-facility stream rooted at ``source`` (pool protocol)."""
        return CHFacilityStream(self, source, facility_nodes)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> str:
        """Persist as a versioned ``.npz`` blob (atomic rename write)."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        tmp = f"{path}.tmp-{os.getpid()}.npz"
        np.savez(
            tmp,
            version=np.int64(CH_FORMAT_VERSION),
            fingerprint=np.str_(self._fingerprint),
            n_nodes=np.int64(self._n_nodes),
            directed=np.int64(self._directed),
            rank=self._rank_arr,
            arc_u=self._arc_u,
            arc_v=self._arc_v,
            arc_w=self._arc_w,
            arc_mid=self._arc_mid,
        )
        os.replace(tmp, path)
        self.source_path = path
        return path

    @classmethod
    def load(
        cls, path: str, network: Network | None = None
    ) -> ContractionHierarchy | None:
        """Load a persisted hierarchy, or ``None`` when the blob is unusable.

        Mirrors :meth:`AltOracle.load <repro.network.oracle.AltOracle.load>`:
        *any* blob failure (missing, truncated, corrupt, foreign
        version, fingerprint mismatch) returns ``None`` for a uniform
        rebuild fallback, while ``BudgetExceeded``/``KeyboardInterrupt``
        always propagate -- a deadline hit while deserializing must
        reach the fallback chain, not trigger a silent rebuild.
        """
        try:
            _budget_checkpoint()
            with np.load(path, allow_pickle=False) as blob:
                if int(blob["version"]) != CH_FORMAT_VERSION:
                    return None
                ch = cls(
                    fingerprint=str(blob["fingerprint"]),
                    n_nodes=int(blob["n_nodes"]),
                    directed=bool(int(blob["directed"])),
                    rank=np.asarray(blob["rank"], dtype=np.int64),
                    arc_u=np.asarray(blob["arc_u"], dtype=np.int64),
                    arc_v=np.asarray(blob["arc_v"], dtype=np.int64),
                    arc_w=np.asarray(blob["arc_w"], dtype=np.float64),
                    arc_mid=np.asarray(blob["arc_mid"], dtype=np.int64),
                    source_path=path,
                )
        except (KeyboardInterrupt, BudgetExceeded):
            raise
        except Exception:
            return None
        if network is not None:
            if not ch.matches(network):
                return None
            ch._network = network
        return ch

    def __getstate__(self) -> dict[str, Any]:
        # Ship only the canonical arrays: the search halves, unpack
        # memos, and cone sets rebuild deterministically on the other
        # side, and the network travels separately (workers attach CSR
        # through shared memory, not a pickled Network).
        state = self.__dict__.copy()
        state["_network"] = None
        state["_rank"] = None
        state["_arcs"] = None
        state["_up"] = None
        state["_down"] = None
        state["_n_up_arcs"] = 0
        state["_sweep_state"] = None
        state["_flat"] = {}
        state["_cones"] = {}
        return state


class _SweepState:
    """Generation-stamped label arrays reused across forward sweeps.

    Avoids a dict allocation per sweep: labels are valid when their
    stamp matches the current generation, so resetting costs nothing.
    Plain lists beat numpy arrays here -- the sweep touches labels one
    scalar at a time.
    """

    __slots__ = ("dist", "parent", "stamp", "done", "generation")

    def __init__(self, n: int) -> None:
        self.dist = [INF] * n
        self.parent = [-1] * n
        self.stamp = [0] * n
        self.done = [0] * n
        self.generation = 0


class _TargetCones:
    """Backward cones of one target tuple, bucketed per meeting node.

    ``bucket[x]`` lists ``(target_index, ch_distance)`` for every target
    whose cone reaches ``x`` -- the structure the forward sweeps scan.
    ``descent_weights`` re-folds lazily: the original-edge weight
    sequence of the ``x -> target`` descent, memoized per ``(target, x)``
    since candidate meeting nodes repeat heavily across sources.
    """

    __slots__ = ("_ch", "targets", "bucket", "_parents", "_seqs")

    def __init__(self, ch: ContractionHierarchy, targets: tuple[int, ...]) -> None:
        self._ch = ch
        self.targets = targets
        self.bucket = {}
        self._parents: list[dict[int, int]] = []
        self._seqs: list[dict[int, tuple[float, ...]]] = []
        bucket: dict[int, list[tuple[int, float]]] = self.bucket
        for j, t in enumerate(targets):
            dist_b, parent_b = ch._downward_cone(t)
            self._parents.append(parent_b)
            self._seqs.append({t: ()})
            for x, db in dist_b.items():
                entry = (j, db)
                got = bucket.get(x)
                if got is None:
                    bucket[x] = [entry]
                else:
                    got.append(entry)

    def descent_weights(self, j: int, x: int) -> tuple[float, ...]:
        """Original weights along the ``x -> targets[j]`` descent, in order."""
        seqs = self._seqs[j]
        cached = seqs.get(x)
        if cached is not None:
            return cached
        # One checkpoint per cold descent (memoized thereafter).
        _budget_checkpoint()
        parent = self._parents[j]
        flat_arc = self._ch._flat_arc
        chain: list[int] = []
        y = x
        while y not in seqs:
            chain.append(y)
            y = parent[y]
        for y in reversed(chain):
            p = parent[y]
            seqs[y] = flat_arc(y, p) + seqs[p]
        return seqs[x]


# ----------------------------------------------------------------------
# CH-backed nearest-facility stream
# ----------------------------------------------------------------------
class CHFacilityStream:
    """Drop-in for :class:`~repro.network.incremental.NearestFacilityStream`.

    One forward sweep from the source scans the shared facility cones
    (memoized on the hierarchy, so a stream pool pays the backward
    sweeps once); per-facility candidates go into a refine heap keyed by
    a conservative lower bound of the exact distance.  Popping a bound
    entry re-folds the exact left-to-right value and re-pushes it;
    popping an exact entry emits it -- facilities emit in non-decreasing
    exact distance with ties on node id, matching the kernel stream's
    ``(distance, node)`` order exactly.
    """

    def __init__(
        self,
        ch: ContractionHierarchy,
        source: int,
        facility_nodes: Iterable[int],
    ) -> None:
        _budget_checkpoint()
        self._source = int(source)
        self._ch = ch
        facilities = sorted({int(f) for f in facility_nodes})
        cone = ch._cones_for(tuple(facilities))
        self._cone = cone
        settled, dist_f, parent_arr = ch._upward_sweep([self._source])
        # The sweep's label arrays are reused by the next sweep, but
        # this stream refines lazily across many later _advance calls --
        # copy out the parent chains it may still walk (they stay within
        # the settled set: only settled nodes relax).
        self._parent_f = {x: parent_arr[x] for x in settled}
        self._lr_memo: dict[int, float] = {}
        n_fac = len(facilities)
        best = [INF] * n_fac
        thresh = [INF] * n_fac
        cands: list[list[tuple[float, int]]] = [[] for _ in range(n_fac)]
        _, c_scans = _SWEEP_COUNTERS.get()
        scans = 0
        bucket_get = cone.bucket.get
        for x in settled:
            entries = bucket_get(x)
            if entries is None:
                continue
            scans += len(entries)
            gf = dist_f[x]
            for j, db in entries:
                val = gf + db
                if val <= thresh[j]:
                    if val < best[j]:
                        best[j] = val
                        thresh[j] = val * (1.0 + _TIE_EPS)
                    cands[j].append((val, x))
        c_scans.add(scans)
        self._cands = cands
        self._found: list[tuple[int, float]] = []
        self._exhausted = False
        # Entries: (key, facility, is_lower_bound); the bound key
        # best*(1 - eps) under-estimates the re-folded exact value by
        # more than any association error, so every unemitted facility's
        # exact distance stays >= its key (the stream-order invariant,
        # and what SSPA's fast path consumes via frontier_lower_bound).
        heap: list[tuple[float, int, int]] = []
        for j, f in enumerate(facilities):
            if best[j] != INF:
                heap.append((best[j] * (1.0 - _TIE_EPS), f, 1))
        heap.sort()
        self._heap = heap
        self._fac_index = {f: j for j, f in enumerate(facilities)}
        if not heap:
            self._exhausted = True
        metrics.active().counter("oracle.streams").add()

    @property
    def source(self) -> int:
        """The node this stream searches from."""
        return self._source

    @property
    def found(self) -> list[tuple[int, float]]:
        """Facilities discovered so far, in non-decreasing distance."""
        return self._found

    def facility_at(self, rank: int) -> tuple[int, float] | None:
        """Return the ``rank``-th nearest ``(facility_node, distance)``.

        Zero-based; refines lazily.  ``None`` when fewer than
        ``rank + 1`` facilities are reachable.
        """
        while len(self._found) <= rank and not self._exhausted:
            self._advance()  # reprolint: disable=REP112 -- lazy stream: each heap entry is taken at most once across all calls
        if rank < len(self._found):
            return self._found[rank]
        return None

    def distance_at(self, rank: int) -> float:
        """Distance of the ``rank``-th nearest facility (``inf`` if none)."""
        item = self.facility_at(rank)
        return item[1] if item is not None else INF

    def frontier_lower_bound(self) -> float:
        """Cheap lower bound on the next unemitted facility's distance."""
        heap = self._heap
        return heap[0][0] if heap else INF

    def _exact(self, facility: int) -> float:
        """Re-fold the exact kernel-identical distance to ``facility``."""
        _budget_checkpoint()
        j = self._fac_index[facility]
        cands = self._cands[j]
        best = min(val for val, _ in cands)
        threshold = best * (1.0 + _TIE_EPS)
        ch = self._ch
        result = INF
        for val, x in cands:
            if val > threshold:
                continue
            lr = ch._lr_value(x, self._parent_f, self._lr_memo, self._cone, j)
            if lr < result:
                result = lr
        return result

    def _advance(self) -> None:
        """Refine until one more facility is emitted or none remain."""
        _budget_checkpoint()
        heap = self._heap
        heappush, heappop = heapq.heappush, heapq.heappop
        while heap:
            key, node, is_lb = heappop(heap)
            if is_lb:
                heappush(heap, (self._exact(node), node, 0))
                continue
            self._found.append((node, key))
            return
        self._exhausted = True


# ----------------------------------------------------------------------
# Persistence helpers (mirror repro.network.oracle)
# ----------------------------------------------------------------------
def cache_path(directory: str, network: Network) -> str:
    """Canonical blob path for ``network``'s hierarchy in ``directory``."""
    name = f"ch-v{CH_FORMAT_VERSION}-{network.fingerprint[:20]}.npz"
    return os.path.join(directory, name)


def load_or_build(
    network: Network, cache_dir: str | None = None
) -> ContractionHierarchy:
    """Load the cached hierarchy for ``network``, rebuilding on any miss.

    Counter semantics match the ALT loader: a usable blob bumps
    ``oracle.cache_hits``, anything else bumps ``oracle.cache_misses``
    and rebuilds (re-persisting when a directory is configured).
    """
    if cache_dir:
        path = cache_path(cache_dir, network)
        ch = ContractionHierarchy.load(path, network)
        if ch is not None:
            metrics.active().counter("oracle.cache_hits").add()
            return ch
    metrics.active().counter("oracle.cache_misses").add()
    ch = ContractionHierarchy.build(network)
    if cache_dir:
        ch.save(cache_path(cache_dir, network))
    return ch


def _pack_csr(
    lists: list[list[tuple[int, float]]],
) -> tuple[list[int], list[int], list[float]]:
    """Flatten per-node ``(neighbor, weight)`` lists into CSR triples."""
    _budget_checkpoint()
    indptr = [0]
    indices: list[int] = []
    weights: list[float] = []
    for neighbors in lists:
        for v, w in neighbors:
            indices.append(v)
            weights.append(w)
        indptr.append(len(indices))
    return indptr, indices, weights
