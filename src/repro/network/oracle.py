"""Precomputed ALT distance oracle with fingerprint-keyed persistence.

The solvers re-run Dijkstra over one fixed road network thousands of
times; at the traffic levels the ROADMAP targets, repeated shortest-path
queries dominate the cost.  This module implements the classic ALT
preprocessing tier (A*, Landmarks, Triangle inequality): a handful of
landmark nodes are selected once per :class:`~repro.network.graph.Network`
(:mod:`repro.network.landmarks`), their full distance vectors are
precomputed on the shared :class:`~repro.network.kernels.DijkstraWorkspace`,
and the triangle inequality turns the vectors into

* :meth:`AltOracle.lower_bound` -- an ``O(landmarks)`` lower bound on
  any point-to-point distance, and
* :meth:`AltOracle.query` -- an exact goal-directed A* search using that
  bound as its heuristic (kept admissible under floating point by the
  :data:`_LB_SLACK` margin, so the returned distance is
  **bit-identical** to a Dijkstra run: the same edge-weight sums along
  an optimal path).

:class:`OracleFacilityStream` plugs the oracle in beneath the
incremental nearest-facility machinery: a lazy heap of lower-bound keys
is refined into exact distances on demand, so facilities still pop in
non-decreasing *exact* distance order -- a drop-in for
:class:`~repro.network.incremental.NearestFacilityStream` that replaces
one paused Dijkstra per customer with a few targeted A* queries.  The
same lower bounds tighten the Theorem-1 SSPA pruning threshold (see
``flow/sspa.py``): since the cheap bound never exceeds the exact bound,
the fast path stops only when the exact rule would have stopped too,
keeping objectives bit-identical.

Built oracles persist to disk as ``.npz`` blobs keyed by
``Network.fingerprint`` plus the oracle parameters, with a versioned
header; a truncated, corrupt, or mismatched file silently falls back to
a rebuild (:func:`load_or_build`).  The active-scope pattern
(:func:`use` / :func:`active`) mirrors :mod:`repro.network.distcache`;
the ``oracle=`` solver option and the ``REPRO_ORACLE`` environment
variable (:func:`resolve`) install a scope around each solve.

ALT is one of two oracle *kinds* sharing this activation machinery: the
contraction-hierarchy tier
(:class:`~repro.network.ch.ContractionHierarchy`, ``REPRO_ORACLE=ch``)
answers the same point-to-point queries bidirectionally and adds a
many-to-many bucket primitive beneath whole ``distance_matrix`` blocks.
Both kinds satisfy the duck-typed oracle protocol consumed here and in
:mod:`repro.network.incremental`: ``matches`` / ``bind`` /
``query(u, v)`` / ``make_stream(source, facilities)`` / ``info()``,
with bit-identical distances either way.  Prefer ``ch`` when the
workload is matrix-shaped (its buckets amortize across targets), ``alt``
when it is scattered point-to-point queries over a network too large to
contract comfortably.
"""

from __future__ import annotations

import heapq
import math
import os
import weakref
from collections.abc import Iterable, Iterator
from contextlib import contextmanager
from typing import Any

import numpy as np

from repro.errors import BudgetExceeded, GraphError
from repro.network import ch as _ch
from repro.network.graph import Network
from repro.network.landmarks import select_landmarks
from repro.obs import metrics
from repro.runtime.budget import checkpoint as _budget_checkpoint

INF = math.inf

#: On-disk blob format version; bump on any incompatible layout change.
ALT_FORMAT_VERSION = 1

#: Default landmark count; 8-32 is the classic sweet spot for road-like
#: graphs (diminishing bound quality above, weak bounds below).
DEFAULT_LANDMARKS = 16

#: Environment knob: ``alt``/``on``/``1``/``true`` enables the default
#: oracle for every solve; ``off``/``none``/``0``/``false``/empty
#: disables it.
ORACLE_ENV_VAR = "REPRO_ORACLE"

#: Environment knob: directory for persisted oracle blobs.  When unset,
#: default oracles are built in memory (still memoized per network).
ORACLE_DIR_ENV_VAR = "REPRO_ORACLE_DIR"

COUNTER_BUILDS = "oracle.builds"
COUNTER_CACHE_HITS = "oracle.cache_hits"
COUNTER_CACHE_MISSES = "oracle.cache_misses"
COUNTER_QUERIES = "oracle.queries"
COUNTER_QUERY_POPS = "oracle.query_pops"
COUNTER_QUERY_RELAXATIONS = "oracle.query_relaxations"
COUNTER_STREAMS = "oracle.streams"
#: SSPA fast-path stops certified by oracle bounds (bumped in flow/sspa.py).
COUNTER_PRUNES = "oracle.prunes"

_QUERY_COUNTERS = metrics.CounterBlock(
    COUNTER_QUERIES, COUNTER_QUERY_POPS, COUNTER_QUERY_RELAXATIONS
)

#: Absolute safety margin factor for :meth:`AltOracle.lower_bound`.
#: Stored landmark distances are floating-point path sums, so the raw
#: triangle-inequality difference can exceed the true distance by a few
#: ulps of the *landmark* distances (not of the difference itself).
#: Subtracting ``_LB_SLACK * (d(L,u) + d(L,v))`` per landmark restores a
#: strict lower bound for accumulated rounding of paths up to ~10^4
#: edges (error <= hops * 2^-53 ~ 1e-12 relative), which keeps the A*
#: heuristic admissible and every downstream ordering/pruning decision
#: bit-identical to the kernel path.
_LB_SLACK = 1e-12


class AltOracle:
    """Landmark distance vectors plus the query machinery built on them.

    Instances are built with :meth:`build` (or :func:`load_or_build`),
    never constructed directly.  An oracle is *bound* to the network it
    was built for; :meth:`bind` re-attaches a freshly loaded oracle to a
    live :class:`Network` after a fingerprint check.
    """

    def __init__(
        self,
        *,
        fingerprint: str,
        n_nodes: int,
        directed: bool,
        landmarks: list[int],
        vectors: np.ndarray,
        seed: int,
        network: Network | None = None,
        source_path: str | None = None,
    ) -> None:
        if vectors.shape != (len(landmarks), n_nodes):
            raise GraphError(
                f"landmark vectors have shape {vectors.shape}, expected "
                f"({len(landmarks)}, {n_nodes})"
            )
        self._fingerprint = fingerprint
        self._n_nodes = int(n_nodes)
        self._directed = bool(directed)
        self._landmarks = [int(x) for x in landmarks]
        self._vectors = vectors
        self._seed = int(seed)
        self._network = network
        self.source_path = source_path
        # Plain-list mirror of the vectors: the O(landmarks) bound loop
        # runs per A* relaxation, where numpy scalar boxing dominates.
        self._vec_lists: list[list[float]] = vectors.tolist()

    # ------------------------------------------------------------------
    # Construction and binding
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        network: Network,
        *,
        n_landmarks: int = DEFAULT_LANDMARKS,
        seed: int = 0,
    ) -> AltOracle:
        """Select landmarks on ``network`` and precompute their vectors.

        One seeding Dijkstra plus one per landmark, all on the shared
        kernel workspace (counted under ``dijkstra.kernel_runs``); the
        build itself bumps ``oracle.builds``.
        """
        landmarks, vectors = select_landmarks(network, n_landmarks, seed=seed)
        metrics.active().counter(COUNTER_BUILDS).add()
        return cls(
            fingerprint=network.fingerprint,
            n_nodes=network.n_nodes,
            directed=network.directed,
            landmarks=landmarks,
            vectors=vectors,
            seed=seed,
            network=network,
        )

    def bind(self, network: Network) -> AltOracle:
        """Attach a live network (required for :meth:`query`).

        Raises
        ------
        GraphError
            When ``network`` does not match the oracle's fingerprint.
        """
        if not self.matches(network):
            raise GraphError(
                f"oracle was built for fingerprint "
                f"{self._fingerprint[:12]}..., network has "
                f"{network.fingerprint[:12]}..."
            )
        self._network = network
        return self

    def matches(self, network: Network) -> bool:
        """Whether this oracle was built for exactly this adjacency."""
        return (
            self._n_nodes == network.n_nodes
            and self._fingerprint == network.fingerprint
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """Fingerprint of the network the oracle was built for."""
        return self._fingerprint

    @property
    def n_landmarks(self) -> int:
        """Number of landmarks (distance vectors) held."""
        return len(self._landmarks)

    @property
    def landmarks(self) -> list[int]:
        """The landmark node ids, in selection order (a copy)."""
        return list(self._landmarks)

    def info(self) -> dict[str, Any]:
        """JSON-ready summary (the ``repro oracle info`` payload)."""
        return {
            "format_version": ALT_FORMAT_VERSION,
            "kind": "alt",
            "fingerprint": self._fingerprint,
            "n_nodes": self._n_nodes,
            "directed": self._directed,
            "n_landmarks": len(self._landmarks),
            "landmarks": list(self._landmarks),
            "seed": self._seed,
            "vector_bytes": int(self._vectors.nbytes),
            "source_path": self.source_path,
        }

    def __repr__(self) -> str:
        return (
            f"AltOracle(landmarks={len(self._landmarks)}, "
            f"n_nodes={self._n_nodes}, "
            f"fingerprint={self._fingerprint[:12]}...)"
        )

    # ------------------------------------------------------------------
    # Bounds and queries
    # ------------------------------------------------------------------
    # O(landmarks) scan, bounded by the small fixed landmark count; runs
    # per A* relaxation, far too hot for a per-call checkpoint.
    def lower_bound(  # reprolint: disable=REP101
        self, u: int, v: int
    ) -> float:
        """A lower bound on the network distance from ``u`` to ``v``.

        Triangle inequality over every landmark ``L``:
        ``|d(L,u) - d(L,v)|`` on undirected networks,
        ``max(d(L,v) - d(L,u), 0)`` on directed ones, each less the
        :data:`_LB_SLACK` rounding margin.  Returns ``inf`` exactly when
        the vectors *prove* ``v`` unreachable from ``u`` (one endpoint
        reached by a landmark, the other not -- a reachability argument,
        so no margin applies), and ``0.0`` when they carry no
        information.
        """
        best = 0.0
        slack = _LB_SLACK
        if self._directed:
            for vec in self._vec_lists:
                du = vec[u]
                dv = vec[v]
                if dv == INF:
                    if du != INF:
                        # L reaches u but not v: a u->v path would give
                        # L->v via u, so none exists.
                        return INF
                    continue
                if du == INF:
                    continue
                diff = (dv - du) - slack * (dv + du)
                if diff > best:
                    best = diff
            return best
        for vec in self._vec_lists:
            du = vec[u]
            dv = vec[v]
            if du == INF or dv == INF:
                if du != dv:
                    # Exactly one endpoint shares a component with L.
                    return INF
                continue
            diff = dv - du if dv >= du else du - dv
            diff -= slack * (dv + du)
            if diff > best:
                best = diff
        return best

    def query(self, source: int, target: int) -> float:
        """Exact point-to-point distance via landmark-guided A*.

        Bit-identical to a Dijkstra run between the same nodes: the
        heuristic is admissible, re-expansion is permitted, and the
        returned value is the same left-to-right sum of edge weights
        along an optimal path.  Returns ``inf`` when unreachable.
        """
        network = self._network
        if network is None:
            raise GraphError("oracle is not bound to a network; call bind()")
        _budget_checkpoint()
        s, t = int(source), int(target)
        n = self._n_nodes
        for node in (s, t):
            if not (0 <= node < n):
                raise GraphError(f"node {node} outside 0..{n - 1}")
        c_queries, c_pops, c_relax = _QUERY_COUNTERS.get()
        c_queries.add()
        if s == t:
            return 0.0
        h_source = self.lower_bound(s, t)
        if h_source == INF:
            return INF

        lb = self.lower_bound
        h_cache: dict[int, float] = {t: 0.0, s: h_source}
        indptr, indices, weights = network.csr_lists
        dist: dict[int, float] = {s: 0.0}
        heap: list[tuple[float, float, int]] = [(h_source, 0.0, s)]
        heappush, heappop = heapq.heappush, heapq.heappop
        pops = 0
        relaxations = 0

        try:
            while heap:
                _, g, u = heappop(heap)
                pops += 1
                if g > dist[u]:
                    continue
                if u == t:
                    return g
                lo, hi = indptr[u], indptr[u + 1]
                for pos in range(lo, hi):
                    v = indices[pos]
                    nd = g + weights[pos]
                    if nd < dist.get(v, INF):
                        hv = h_cache.get(v)
                        if hv is None:
                            hv = lb(v, t)
                            h_cache[v] = hv
                        if hv == INF:
                            # v provably cannot reach the target.
                            continue
                        dist[v] = nd
                        relaxations += 1
                        heappush(heap, (nd + hv, nd, v))
            return INF
        finally:
            c_pops.add(pops)
            c_relax.add(relaxations)

    def make_stream(
        self, source: int, facility_nodes: Iterable[int]
    ) -> OracleFacilityStream:
        """A nearest-facility stream rooted at ``source`` (pool protocol).

        Both oracle kinds expose this constructor so
        :class:`~repro.network.incremental.StreamPool` can stay agnostic
        about which one is active.
        """
        return OracleFacilityStream(self, source, facility_nodes)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> str:
        """Persist the oracle as a versioned ``.npz`` blob at ``path``.

        The write goes through a temporary file and an atomic rename, so
        a crash mid-write never leaves a truncated blob under the final
        name (:meth:`load` would reject it anyway).
        """
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        tmp = f"{path}.tmp-{os.getpid()}.npz"
        np.savez(
            tmp,
            version=np.int64(ALT_FORMAT_VERSION),
            fingerprint=np.str_(self._fingerprint),
            n_nodes=np.int64(self._n_nodes),
            directed=np.int64(self._directed),
            seed=np.int64(self._seed),
            landmarks=np.asarray(self._landmarks, dtype=np.int64),
            vectors=self._vectors,
        )
        os.replace(tmp, path)
        self.source_path = path
        return path

    @classmethod
    def load(cls, path: str, network: Network | None = None) -> AltOracle | None:
        """Load a persisted oracle, or ``None`` when the blob is unusable.

        *Any* blob failure -- missing file, truncation, corruption, a
        foreign format version, a fingerprint mismatch against
        ``network`` -- returns ``None`` so callers uniformly fall back
        to a rebuild.  ``BudgetExceeded`` and ``KeyboardInterrupt`` are
        *not* blob failures and always propagate: a deadline hit during
        deserialization must reach the fallback chain, not trigger a
        silent (and even slower) rebuild.
        """
        try:
            _budget_checkpoint()
            with np.load(path, allow_pickle=False) as blob:
                if int(blob["version"]) != ALT_FORMAT_VERSION:
                    return None
                fingerprint = str(blob["fingerprint"])
                n_nodes = int(blob["n_nodes"])
                directed = bool(int(blob["directed"]))
                seed = int(blob["seed"])
                landmarks = [int(x) for x in blob["landmarks"]]
                vectors = np.asarray(blob["vectors"], dtype=np.float64)
            oracle = cls(
                fingerprint=fingerprint,
                n_nodes=n_nodes,
                directed=directed,
                landmarks=landmarks,
                vectors=vectors,
                seed=seed,
                source_path=path,
            )
        except (KeyboardInterrupt, BudgetExceeded):
            raise
        except Exception:
            return None
        if network is not None:
            if not oracle.matches(network):
                return None
            oracle._network = network
        return oracle


def cache_path(
    directory: str,
    network: Network,
    *,
    n_landmarks: int = DEFAULT_LANDMARKS,
    seed: int = 0,
) -> str:
    """Canonical blob path for ``network`` + oracle params in ``directory``."""
    name = (
        f"alt-v{ALT_FORMAT_VERSION}-{network.fingerprint[:20]}"
        f"-L{int(n_landmarks)}-s{int(seed)}.npz"
    )
    return os.path.join(directory, name)


def load_or_build(
    network: Network,
    cache_dir: str | None = None,
    *,
    n_landmarks: int = DEFAULT_LANDMARKS,
    seed: int = 0,
) -> AltOracle:
    """Load the cached oracle for ``network``, rebuilding on any miss.

    With ``cache_dir`` the blob at :func:`cache_path` is tried first
    (``oracle.cache_hits``); a missing/corrupt/mismatched blob rebuilds
    and re-persists it (``oracle.cache_misses``).  Without a directory
    the oracle is always built in memory (also a miss).
    """
    if cache_dir:
        path = cache_path(
            cache_dir, network, n_landmarks=n_landmarks, seed=seed
        )
        oracle = AltOracle.load(path, network)
        if oracle is not None:
            metrics.active().counter(COUNTER_CACHE_HITS).add()
            return oracle
    metrics.active().counter(COUNTER_CACHE_MISSES).add()
    oracle = AltOracle.build(network, n_landmarks=n_landmarks, seed=seed)
    if cache_dir:
        oracle.save(
            cache_path(cache_dir, network, n_landmarks=n_landmarks, seed=seed)
        )
    return oracle


# ----------------------------------------------------------------------
# Oracle-backed nearest-facility stream
# ----------------------------------------------------------------------
class OracleFacilityStream:
    """Drop-in for :class:`~repro.network.incremental.NearestFacilityStream`.

    Instead of pausing a Dijkstra, the stream seeds a heap with one
    ``(lower_bound, facility)`` entry per candidate and lazily refines:
    popping a lower-bound entry runs one exact :meth:`AltOracle.query`
    and re-pushes the exact key; popping an exact entry emits it.  Every
    remaining key is a lower bound of its facility's exact distance, so
    an exact minimum is globally minimal -- facilities emit in
    non-decreasing exact distance, matching the kernel stream's order
    (ties resolve by node id in both).
    """

    def __init__(
        self, oracle: AltOracle, source: int, facility_nodes: Iterable[int]
    ) -> None:
        # One checkpoint per stream construction; the seeding loop below
        # is bounded by the candidate count and each step is O(landmarks).
        _budget_checkpoint()
        self._oracle = oracle
        self._source = int(source)
        self._found: list[tuple[int, float]] = []
        self._exhausted = False
        # Entries: (key, node, is_lower_bound).  Exact entries sort
        # before lower-bound ones on key ties, skipping a refine cycle.
        heap: list[tuple[float, int, int]] = []
        lb = oracle.lower_bound
        src = self._source
        for f in sorted({int(x) for x in facility_nodes}):
            bound = lb(src, f)
            if bound != INF:
                heap.append((bound, f, 1))
        heap.sort()
        self._heap = heap
        if not heap:
            self._exhausted = True
        metrics.active().counter(COUNTER_STREAMS).add()

    @property
    def source(self) -> int:
        """The node this stream searches from."""
        return self._source

    @property
    def found(self) -> list[tuple[int, float]]:
        """Facilities discovered so far, in non-decreasing distance."""
        return self._found

    def facility_at(self, rank: int) -> tuple[int, float] | None:
        """Return the ``rank``-th nearest ``(facility_node, distance)``.

        Zero-based; refines lazily.  ``None`` when fewer than
        ``rank + 1`` facilities are reachable.
        """
        while len(self._found) <= rank and not self._exhausted:
            self._advance()  # reprolint: disable=REP112 -- lazy stream: each oracle candidate is advanced past at most once
        if rank < len(self._found):
            return self._found[rank]
        return None

    def distance_at(self, rank: int) -> float:
        """Distance of the ``rank``-th nearest facility (``inf`` if none)."""
        item = self.facility_at(rank)
        return item[1] if item is not None else INF

    def frontier_lower_bound(self) -> float:
        """Cheap lower bound on the next *unemitted* facility's distance.

        Every heap key bounds its own facility's exact distance from
        below, so the heap minimum bounds the next emission.  ``inf``
        when no facility remains.
        """
        heap = self._heap
        return heap[0][0] if heap else INF

    def _advance(self) -> None:
        """Refine until one more facility is emitted or none remain."""
        _budget_checkpoint()
        heap = self._heap
        heappush, heappop = heapq.heappush, heapq.heappop
        query = self._oracle.query
        src = self._source
        while heap:
            key, node, is_lb = heappop(heap)
            if is_lb:
                exact = query(src, node)
                if exact != INF:
                    heappush(heap, (exact, node, 0))
                continue
            self._found.append((node, key))
            return
        self._exhausted = True


# ----------------------------------------------------------------------
# Active-scope management (mirrors repro.network.distcache)
# ----------------------------------------------------------------------
#: Either oracle kind; both satisfy the duck-typed protocol
#: (``matches``/``bind``/``query``/``make_stream``/``info``).
DistanceOracle = AltOracle | _ch.ContractionHierarchy

#: Facility streams the kinds hand to :class:`StreamPool` cursors.
FacilityStream = OracleFacilityStream | _ch.CHFacilityStream

#: Recognized oracle kinds, in CLI/env spelling.
ORACLE_KINDS = ("alt", "ch")

_active: DistanceOracle | None = None

#: Default oracles memoized per live network and kind (dropped with the
#: network).
_DEFAULT_ORACLES: weakref.WeakKeyDictionary[
    Network, dict[str, DistanceOracle]
] = weakref.WeakKeyDictionary()

_ALT_VALUES = frozenset({"alt", "on", "1", "true"})
_CH_VALUES = frozenset({"ch"})
_DISABLE_VALUES = frozenset({"", "0", "off", "none", "false"})


def active() -> DistanceOracle | None:
    """The oracle installed by the innermost :func:`use` scope, if any."""
    return _active


def active_for(network: Network) -> DistanceOracle | None:
    """The active oracle (either kind), but only when it matches ``network``.

    Stream pools consult this at construction: an oracle built for a
    different adjacency must never serve bounds for this one.
    """
    oracle = _active
    if oracle is not None and oracle.matches(network):
        return oracle.bind(network)
    return None


def active_ch_for(network: Network) -> _ch.ContractionHierarchy | None:
    """The active oracle when it is a hierarchy matching ``network``.

    The kernel matrix hook consults this: only the CH kind carries the
    many-to-many bucket primitive, so an active ALT oracle (or a
    mismatched hierarchy) leaves ``many_source_lengths`` on the kernel
    path.
    """
    oracle = _active
    if isinstance(oracle, _ch.ContractionHierarchy) and oracle.matches(
        network
    ):
        return oracle.bind(network)
    return None


@contextmanager
def use(oracle: DistanceOracle) -> Iterator[DistanceOracle]:
    """Make ``oracle`` the active distance oracle within the block.

    Scopes nest; the previous oracle is restored on exit.  Entering a
    scope primes the ``oracle.*`` and ``ch.*`` counters in the active
    metrics registry so reports carry the vocabulary even for all-zero
    runs.
    """
    global _active
    previous = _active
    _active = oracle
    prime_counters(metrics.active())
    try:
        yield oracle
    finally:
        _active = previous


def prime_counters(registry: metrics.Registry) -> None:
    """Materialize every oracle-tier counter in ``registry`` at zero.

    The CI counter gate treats a baselined counter missing from a report
    as a violation, so kernel-path profiles must still export the oracle
    vocabulary (as zeros) -- including the ``ch.*`` names, which only the
    hierarchy kind ever bumps.
    """
    registry.counter(COUNTER_BUILDS)
    registry.counter(COUNTER_CACHE_HITS)
    registry.counter(COUNTER_CACHE_MISSES)
    registry.counter(COUNTER_QUERIES)
    registry.counter(COUNTER_QUERY_POPS)
    registry.counter(COUNTER_QUERY_RELAXATIONS)
    registry.counter(COUNTER_STREAMS)
    registry.counter(COUNTER_PRUNES)
    registry.counter("ch.shortcuts")
    registry.counter("ch.upward_settles")
    registry.counter("ch.bucket_scans")
    registry.counter("ch.matrix_blocks")


def default_oracle(network: Network, kind: str = "alt") -> DistanceOracle:
    """The memoized default-parameter oracle of ``network`` for ``kind``.

    Honors :data:`ORACLE_DIR_ENV_VAR` for persistence; without it the
    oracle lives only as long as the network object does.  Each kind is
    built and memoized independently.
    """
    per_kind = _DEFAULT_ORACLES.get(network)
    if per_kind is None:
        per_kind = {}
        _DEFAULT_ORACLES[network] = per_kind
    oracle = per_kind.get(kind)
    if oracle is None:
        cache_dir = os.environ.get(ORACLE_DIR_ENV_VAR) or None
        if kind == "ch":
            oracle = _ch.load_or_build(network, cache_dir)
        elif kind == "alt":
            oracle = load_or_build(network, cache_dir)
        else:
            raise GraphError(
                f"unknown oracle kind {kind!r}; expected one of "
                f"{', '.join(ORACLE_KINDS)}"
            )
        per_kind[kind] = oracle
    return oracle


def resolve(value: Any, network: Network | None) -> DistanceOracle | None:
    """Map an ``oracle=`` option value onto an oracle instance (or None).

    ``None`` consults :data:`ORACLE_ENV_VAR`; ``False``/``"off"``-style
    values disable; ``True``/``"alt"``-style values enable the default
    ALT oracle for ``network`` and ``"ch"`` the default contraction
    hierarchy; an :class:`AltOracle` or
    :class:`~repro.network.ch.ContractionHierarchy` is used as-is after
    a fingerprint check.  Unrecognized values raise :class:`GraphError`.
    """
    if value is None:
        value = os.environ.get(ORACLE_ENV_VAR, "")
    if value is False:
        return None
    if isinstance(value, (AltOracle, _ch.ContractionHierarchy)):
        if network is not None:
            return value.bind(network)
        return value
    if value is True:
        value = "alt"
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in _DISABLE_VALUES:
            return None
        if lowered in _ALT_VALUES:
            if network is None:
                return None
            return default_oracle(network, "alt")
        if lowered in _CH_VALUES:
            if network is None:
                return None
            return default_oracle(network, "ch")
    raise GraphError(
        f"unrecognized oracle setting {value!r}; expected an AltOracle, "
        f"a ContractionHierarchy, True/False, 'alt', 'ch', or 'off'"
    )
