"""Connected-component bookkeeping.

Algorithm 5 of the paper (``CoverComponents``) repairs a facility
selection so that every connected component of the network receives
enough capacity for its customers.  The :class:`ComponentStructure`
helper precomputes the node-to-component labelling and per-component
customer / candidate-facility membership that both Algorithm 5 and the
Hilbert baseline need.

For directed networks we use *weakly* connected components: reachability
for capacity accounting concerns which customers and facilities can
possibly interact at all.
"""

# Component labeling is a single O(n+m) pass at instance-build and
# validation time, *before* the solver's budget scope begins -- raising
# BudgetExceeded here would pre-empt the degraded-return salvage logic
# that only exists once a solver holds state.
# reprolint: disable=REP101

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.network.graph import Network


def component_labels(network: Network) -> np.ndarray:
    """Label each node with a component id ``0..n_components-1``.

    Uses iterative BFS over the CSR arrays (treating directed arcs as
    undirected, i.e. weak connectivity).
    """
    n = network.n_nodes
    labels = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return labels

    if network.directed:
        # Weak connectivity needs reverse arcs too; build a symmetric view.
        undirected = Network(
            n, [(u, v, w) for u, v, w in network.edges()], directed=False
        )
        indptr, indices, _ = undirected.csr
    else:
        indptr, indices, _ = network.csr

    current = 0
    for start in range(n):
        if labels[start] >= 0:
            continue
        stack = [start]
        labels[start] = current
        while stack:
            u = stack.pop()
            for pos in range(indptr[u], indptr[u + 1]):
                v = int(indices[pos])
                if labels[v] < 0:
                    labels[v] = current
                    stack.append(v)
        current += 1
    return labels


def connected_components(network: Network) -> list[np.ndarray]:
    """Return node-id arrays, one per connected component."""
    labels = component_labels(network)
    n_comp = int(labels.max()) + 1 if labels.size else 0
    return [np.flatnonzero(labels == c) for c in range(n_comp)]


@dataclass
class ComponentStructure:
    """Customers and candidate facilities grouped by component.

    Attributes
    ----------
    labels:
        Component id per network node.
    customers_in:
        For each component, the list of customer *indices* (positions in
        the instance's customer sequence) located in it.
    facilities_in:
        For each component, the list of facility *indices* located in it.
    """

    labels: np.ndarray
    customers_in: list[list[int]]
    facilities_in: list[list[int]]

    @classmethod
    def build(
        cls,
        network: Network,
        customer_nodes: Sequence[int],
        facility_nodes: Sequence[int],
    ) -> ComponentStructure:
        """Group customers and facilities by their network component."""
        labels = component_labels(network)
        n_comp = int(labels.max()) + 1 if labels.size else 0
        customers_in: list[list[int]] = [[] for _ in range(n_comp)]
        facilities_in: list[list[int]] = [[] for _ in range(n_comp)]
        for idx, node in enumerate(customer_nodes):
            customers_in[labels[node]].append(idx)
        for idx, node in enumerate(facility_nodes):
            facilities_in[labels[node]].append(idx)
        return cls(
            labels=labels, customers_in=customers_in, facilities_in=facilities_in
        )

    @property
    def n_components(self) -> int:
        """Number of connected components."""
        return len(self.customers_in)

    def populated_components(self) -> list[int]:
        """Ids of components that contain at least one customer."""
        return [c for c, members in enumerate(self.customers_in) if members]

    def minimum_budget(self, capacities: Sequence[int]) -> int:
        """Minimum number of facilities any feasible solution must open.

        For each component ``g`` with customers, ``k_g`` is the size of the
        smallest capacity-descending prefix of the component's candidate
        facilities whose total capacity covers the component's customers
        (Theorem 3).  Returns ``sum_g k_g``; an unreachable component
        (customers but no candidates, or insufficient total capacity)
        yields a budget larger than any ``k``, signalled as ``len(capacities) + 1``
        plus the deficit so callers can detect infeasibility by comparing
        against ``k``.
        """
        total = 0
        for comp_id in self.populated_components():
            needed = len(self.customers_in[comp_id])
            caps = sorted(
                (capacities[j] for j in self.facilities_in[comp_id]), reverse=True
            )
            covered = 0
            k_g = 0
            for cap in caps:
                if covered >= needed:
                    break
                covered += cap
                k_g += 1
            if covered < needed:
                return len(capacities) + 1 + (needed - covered)
            total += k_g
        return total


def customers_per_component(
    structure: ComponentStructure,
) -> dict[int, int]:
    """Convenience map component id -> number of customers therein."""
    return {
        comp_id: len(members)
        for comp_id, members in enumerate(structure.customers_in)
        if members
    }
