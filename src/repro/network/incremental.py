"""Resumable nearest-facility streams.

The Wide Matching Algorithm materializes edges of the bipartite graph
``G_b`` lazily: each customer owns a *paused* Dijkstra instance on the road
network that can be resumed to reveal the next-nearest candidate facility
on demand (Section IV-D of the paper: "the heaps for these executions per
customer persist across FindPair() calls").

Two classes implement this:

* :class:`NearestFacilityStream` -- one incremental Dijkstra per *node*.
  It records the facilities discovered so far in distance order and can be
  asked for the facility of any rank, resuming the search as needed.
* :class:`StreamCursor` -- a per-*customer* view over a stream.  Several
  customers may share a node (the paper's experiments place multiple
  customers per node); they share the underlying Dijkstra but keep
  independent positions.

Total work per stream across its lifetime is one full Dijkstra, no matter
how advances interleave -- the amortized guarantee the paper's complexity
analysis relies on.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Iterable

from repro.network import oracle as _oracle
from repro.network.graph import Network
from repro.obs import metrics
from repro.runtime.budget import checkpoint as _budget_checkpoint

INF = math.inf

_ADVANCE_COUNTERS = metrics.CounterBlock(
    "incremental.pops", "incremental.relaxations", "incremental.settled"
)


class NearestFacilityStream:
    """Incremental Dijkstra from one source node, filtered to facilities.

    Parameters
    ----------
    network:
        The road network.
    source:
        The node the stream searches from.
    facility_nodes:
        Candidate facility node ids.  A node may host both a customer and
        a facility; the stream then reports it at distance zero.
    """

    def __init__(
        self, network: Network, source: int, facility_nodes: Iterable[int]
    ) -> None:
        self._source = int(source)
        self._facility_set = frozenset(int(f) for f in facility_nodes)
        # Plain-list CSR mirror: the resumable loop in _advance indexes
        # these arrays per edge, where numpy scalar boxing dominates.
        self._indptr, self._indices, self._weights = network.csr_lists
        self._dist: dict[int, float] = {self._source: 0.0}
        self._done: set[int] = set()
        self._heap: list[tuple[float, int]] = [(0.0, self._source)]
        self._found: list[tuple[int, float]] = []
        self._exhausted = False
        metrics.active().counter("incremental.streams").add()

    @property
    def source(self) -> int:
        """The node this stream searches from."""
        return self._source

    @property
    def found(self) -> list[tuple[int, float]]:
        """Facilities discovered so far, in non-decreasing distance."""
        return self._found

    def facility_at(self, rank: int) -> tuple[int, float] | None:
        """Return the ``rank``-th nearest ``(facility_node, distance)``.

        Ranks are zero-based.  The Dijkstra resumes as needed.  Returns
        ``None`` when fewer than ``rank + 1`` facilities are reachable.
        """
        while len(self._found) <= rank and not self._exhausted:
            self._advance()  # reprolint: disable=REP112 -- lazy stream: each edge is materialized at most once across all calls
        if rank < len(self._found):
            return self._found[rank]
        return None

    def distance_at(self, rank: int) -> float:
        """Distance of the ``rank``-th nearest facility (``inf`` if none)."""
        item = self.facility_at(rank)
        return item[1] if item is not None else INF

    def frontier_lower_bound(self) -> float | None:
        """No cheap bound on the next facility: resuming *is* the cost.

        Oracle-backed streams override this with their heap minimum; the
        ``None`` here keeps the SSPA lower-bound fast path disabled on
        the kernel path, so kernel-path behavior stays byte-identical.
        """
        return None

    def _advance(self) -> None:
        """Resume Dijkstra until one more facility node is settled."""
        # One checkpoint per heavy operation (the budget granularity
        # convention); the per-edge loop below stays call-free.
        _budget_checkpoint()
        heap = self._heap
        dist = self._dist
        done = self._done
        indptr, indices, weights = self._indptr, self._indices, self._weights
        heappush, heappop = heapq.heappush, heapq.heappop
        pops = 0
        relaxations = 0
        settled = 0

        try:
            while heap:
                d, u = heappop(heap)
                pops += 1
                if u in done:
                    continue
                done.add(u)
                settled += 1
                lo, hi = indptr[u], indptr[u + 1]
                for pos in range(lo, hi):
                    v = indices[pos]
                    nd = d + weights[pos]
                    if nd < dist.get(v, INF):
                        dist[v] = nd
                        relaxations += 1
                        heappush(heap, (nd, v))
                if u in self._facility_set:
                    self._found.append((u, d))
                    return
            self._exhausted = True
        finally:
            c_pops, c_relax, c_settled = _ADVANCE_COUNTERS.get()
            c_pops.add(pops)
            c_relax.add(relaxations)
            c_settled.add(settled)


class StreamCursor:
    """A per-customer position into a (possibly shared) stream.

    The cursor's *rank* counts how many facilities this customer has
    consumed.  ``peek_distance`` is the ``nnDist`` value of Algorithm 2:
    the network distance of the next facility this customer could still be
    introduced to.
    """

    def __init__(
        self, stream: NearestFacilityStream | _oracle.FacilityStream
    ) -> None:
        self._stream = stream
        self._rank = 0

    @property
    def rank(self) -> int:
        """Number of facilities consumed by this cursor."""
        return self._rank

    @property
    def source(self) -> int:
        """The node the underlying stream searches from."""
        return self._stream.source

    def peek(self) -> tuple[int, float] | None:
        """Next ``(facility_node, distance)`` without consuming it."""
        # Fast path: the facility was already revealed by an earlier
        # advance (the common case under Algorithm 2's repeated peeks).
        found = self._stream._found
        rank = self._rank
        if rank < len(found):
            return found[rank]
        return self._stream.facility_at(rank)

    def peek_distance(self) -> float:
        """Distance of the next facility, or ``inf`` when exhausted."""
        found = self._stream._found
        rank = self._rank
        if rank < len(found):
            return found[rank][1]
        return self._stream.distance_at(rank)

    def peek_lower_bound(self) -> float | None:
        """A cheap lower bound on :meth:`peek_distance`, without advancing.

        Already-revealed facilities return their exact distance; at the
        stream frontier the underlying stream's
        ``frontier_lower_bound`` answers (``None`` on kernel streams,
        where no cheap bound exists).  Never triggers search work.
        """
        found = self._stream._found
        rank = self._rank
        if rank < len(found):
            return found[rank][1]
        return self._stream.frontier_lower_bound()

    def take(self) -> tuple[int, float] | None:
        """Consume and return the next ``(facility_node, distance)``."""
        item = self.peek()
        if item is not None:
            self._rank += 1
        return item

    def seek(self, rank: int) -> None:
        """Reposition the cursor to ``rank`` facilities consumed.

        Used by cache restores (:mod:`repro.serve.cache`): a snapshot
        records how far each customer's reveal frontier had advanced,
        and seeking re-establishes that frontier without re-running the
        stream -- the underlying Dijkstra resumes lazily only if a later
        peek needs a facility the stream has not yet settled.  The
        caller must guarantee the first ``rank`` facilities were truly
        consumed on an identical network (seeking past the frontier
        would silently skip reveals and corrupt the pruning bound).
        """
        if rank < 0:
            raise ValueError(f"cursor rank must be >= 0, got {rank}")
        self._rank = int(rank)

    @property
    def exhausted(self) -> bool:
        """True when no further facility is reachable for this cursor."""
        return self.peek() is None

    def drain(self, limit: int | None = None) -> list[tuple[int, float]]:
        """Consume up to ``limit`` facilities (all remaining if ``None``)."""
        out: list[tuple[int, float]] = []
        while limit is None or len(out) < limit:
            item = self.take()  # reprolint: disable=REP112 -- drain retires each pending item exactly once
            if item is None:
                break
            out.append(item)
        return out


class StreamPool:
    """Shared streams keyed by source node, with per-customer cursors.

    WMA touches customers unevenly -- covered customers stop exploring
    early -- so streams are created on first use.  Customers co-located on
    one node share the Dijkstra but advance independent cursors.

    When an oracle scope matching the network is active at construction
    (:func:`repro.network.oracle.active_for`), the pool asks the oracle
    for its streams instead (``make_stream``, implemented by both the
    ALT and contraction-hierarchy kinds); emitted
    ``(facility, distance)`` pairs are bit-identical either way.
    """

    def __init__(self, network: Network, facility_nodes: Iterable[int]) -> None:
        self._network = network
        self._facility_nodes = tuple(int(f) for f in facility_nodes)
        self._streams: dict[
            int, NearestFacilityStream | _oracle.FacilityStream
        ] = {}
        self._oracle = _oracle.active_for(network)
        if self._oracle is not None:
            # Oracle streams replace the kernel streams wholesale, so
            # the incremental.* counters would vanish from reports (the
            # baseline gate treats a missing counter as a violation).
            # Materialize them at zero to keep the vocabulary stable.
            _ADVANCE_COUNTERS.get()
            metrics.active().counter("incremental.streams")

    @property
    def has_oracle(self) -> bool:
        """Whether this pool serves oracle-backed streams."""
        return self._oracle is not None

    def stream_for(
        self, node: int
    ) -> NearestFacilityStream | _oracle.FacilityStream:
        """Return (creating if needed) the shared stream rooted at ``node``."""
        stream = self._streams.get(node)
        if stream is None:
            if self._oracle is not None:
                stream = self._oracle.make_stream(
                    node, self._facility_nodes
                )
            else:
                stream = NearestFacilityStream(
                    self._network, node, self._facility_nodes
                )
            self._streams[node] = stream
        return stream

    def cursor_for(self, node: int) -> StreamCursor:
        """Create a fresh cursor over the stream rooted at ``node``."""
        return StreamCursor(self.stream_for(node))

    def __len__(self) -> int:
        return len(self._streams)

    @property
    def facility_nodes(self) -> tuple[int, ...]:
        """The candidate facility node ids this pool streams towards."""
        return self._facility_nodes
