"""Baselines and the exact solver used in the paper's evaluation.

* :mod:`repro.baselines.exact` -- the MILP formulation (1)-(3) solved by
  HiGHS through :func:`scipy.optimize.milp`; the stand-in for the Gurobi
  Optimizer of Section VII.
* :mod:`repro.baselines.hilbert` -- the Hilbert space-filling-curve
  bucketing baseline of Section VII-A.
* :mod:`repro.baselines.brnn` -- the iterative Bichromatic Reverse
  Nearest Neighbor (MaxSum) baseline of Sections III-A and VII-A.
* :mod:`repro.baselines.wma_naive` -- WMA with greedy, non-rewiring
  demand satisfaction.
* :mod:`repro.baselines.random_select` -- random feasible selection plus
  optimal assignment; a sanity floor not present in the paper.
"""

from repro.baselines.brnn import solve_brnn
from repro.baselines.exact import ExactSolution, lp_lower_bound, solve_exact
from repro.baselines.hilbert import solve_hilbert
from repro.baselines.kmedian_ls import solve_kmedian_ls
from repro.baselines.random_select import solve_random
from repro.baselines.wma_naive import solve_wma_naive

__all__ = [
    "solve_exact",
    "lp_lower_bound",
    "ExactSolution",
    "solve_hilbert",
    "solve_brnn",
    "solve_wma_naive",
    "solve_random",
    "solve_kmedian_ls",
]
