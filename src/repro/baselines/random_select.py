"""Random selection baseline (a sanity floor, not in the paper).

Selects ``k`` candidate facilities uniformly at random, repairs the
selection with Algorithm 5 when its per-component capacity is
insufficient, and assigns customers optimally.  Any serious heuristic
must beat this; the test suite uses it to confirm that WMA's selection
logic adds value beyond the shared optimal-matching machinery.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.instance import MCFSInstance
from repro.core.provisions import cover_components
from repro.core.solution import MCFSSolution
from repro.core.validation import check_feasibility
from repro.errors import MatchingError
from repro.flow.sspa import assign_all
from repro.runtime.options import solver_api


@solver_api("random", uses=("seed",))
def solve_random(instance: MCFSInstance, *, seed: int = 0) -> MCFSSolution:
    """Random-selection + optimal-assignment baseline."""
    started = time.perf_counter()
    check_feasibility(instance)
    rng = np.random.default_rng(seed)

    selected = sorted(
        int(j) for j in rng.choice(instance.l, size=instance.k, replace=False)
    )
    repaired = False
    sub_nodes = [instance.facility_nodes[j] for j in selected]
    sub_caps = [instance.capacities[j] for j in selected]
    try:
        result = assign_all(
            instance.network, instance.customers, sub_nodes, sub_caps
        )
    except MatchingError:
        selected = cover_components(instance, selected)
        sub_nodes = [instance.facility_nodes[j] for j in selected]
        sub_caps = [instance.capacities[j] for j in selected]
        result = assign_all(
            instance.network, instance.customers, sub_nodes, sub_caps
        )
        repaired = True

    assignment = [selected[j_sub] for j_sub in result.assignment]
    runtime = time.perf_counter() - started
    return MCFSSolution(
        selected=tuple(selected),
        assignment=tuple(assignment),
        objective=result.cost,
        meta={
            "algorithm": "random",
            "runtime_sec": runtime,
            "selection_repaired": repaired,
        },
    )
