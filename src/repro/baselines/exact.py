"""Exact MILP solver for MCFS (the paper's Gurobi stand-in).

The paper formulates MCFS as the integer program (1)-(3):

.. math::

    \\min \\sum_i \\sum_j d_{ij} y_{ij}

subject to ``sum_j y_ij = 1`` (each customer served once),
``sum_i y_ij <= c_j x_j`` (capacity, which also forces ``y_ij <= x_j``
for binary variables), and ``sum_j x_j <= k`` (budget).

We solve it with HiGHS via :func:`scipy.optimize.milp`.  Distances
``d_ij`` are computed over the network with one early-exit Dijkstra per
customer; pairs in different components are dropped from the variable
set.  Exactly like Gurobi in the paper, this solver is only practical on
small candidate sets -- the benchmarks report its runtime wall and
declare it *failed* past a time budget.
"""

from __future__ import annotations

import time

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.core.instance import MCFSInstance
from repro.core.solution import MCFSSolution
from repro.errors import InfeasibleInstanceError, SolverError
from repro.network.dijkstra import distance_matrix
from repro.runtime.budget import active as active_budget, checkpoint
from repro.runtime.options import solver_api

ExactSolution = MCFSSolution


def _build_problem(instance: MCFSInstance, workers: int | None = None):
    """Assemble the sparse MILP data.

    Returns ``(costs, constraints, n_x, pairs)`` where variables are laid
    out as ``x_0..x_{l-1}`` followed by one ``y`` per finite customer-
    facility pair, and ``pairs`` lists the ``(i, j)`` of each y-variable.
    The distance matrix dominates build time on large instances; it fans
    out over ``workers`` processes when requested.
    """
    dist = distance_matrix(
        instance.network,
        list(instance.customers),
        list(instance.facility_nodes),
        workers=workers,
    )
    m, l = instance.m, instance.l

    pairs: list[tuple[int, int]] = []
    costs_y: list[float] = []
    for i in range(m):
        checkpoint()
        reachable = np.flatnonzero(np.isfinite(dist[i]))
        if reachable.size == 0:
            raise InfeasibleInstanceError(
                f"customer {i} cannot reach any candidate facility"
            )
        for j in reachable:
            pairs.append((i, int(j)))
            costs_y.append(float(dist[i, j]))

    n_y = len(pairs)
    n_var = l + n_y
    costs = np.concatenate([np.zeros(l), np.array(costs_y)])

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    n_rows = 0

    # sum_j y_ij = 1 for each customer (rows 0..m-1).
    for idx, (i, _j) in enumerate(pairs):
        rows.append(i)
        cols.append(l + idx)
        vals.append(1.0)
    n_rows += m

    # sum_i y_ij - c_j x_j <= 0 for each facility (rows m..m+l-1).
    for idx, (_i, j) in enumerate(pairs):
        rows.append(m + j)
        cols.append(l + idx)
        vals.append(1.0)
    for j in range(l):
        rows.append(m + j)
        cols.append(j)
        vals.append(-float(instance.capacities[j]))
    n_rows += l

    # sum_j x_j <= k (last row).
    for j in range(l):
        rows.append(n_rows)
        cols.append(j)
        vals.append(1.0)
    n_rows += 1

    matrix = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(n_rows, n_var)
    )
    lower = np.concatenate(
        [np.ones(m), np.full(l, -np.inf), [-np.inf]]
    )
    upper = np.concatenate([np.ones(m), np.zeros(l), [float(instance.k)]])
    constraint = LinearConstraint(matrix, lower, upper)
    return costs, constraint, n_var, pairs


@solver_api("exact", uses=("time_limit", "workers"), extras=("mip_gap",))
def solve_exact(
    instance: MCFSInstance,
    *,
    time_limit: float | None = None,
    mip_gap: float = 0.0,
    workers: int | None = None,
) -> MCFSSolution:
    """Solve MCFS to optimality with HiGHS.

    Parameters
    ----------
    instance:
        The problem to solve.
    time_limit:
        Optional wall-clock budget in seconds (HiGHS option); the solver
        raises :class:`SolverError` when it runs out before proving
        optimality -- the benchmarks catch this and report *failed*, as
        the paper does for Gurobi runs beyond 24 hours.
    mip_gap:
        Relative MIP gap at which HiGHS may stop (0 = prove optimality).
    workers:
        Process count for the distance-matrix fan-out (default: the
        ``REPRO_WORKERS`` environment variable, else serial).  The MILP
        itself stays single-process; distances are identical regardless.

    Raises
    ------
    InfeasibleInstanceError
        When HiGHS proves the instance infeasible.
    SolverError
        On time-out or unexpected backend failure.
    """
    started = time.perf_counter()
    costs, constraint, n_var, pairs = _build_problem(instance, workers)
    # HiGHS cannot be checkpointed, so hand it whatever wall-clock the
    # active cooperative budget has left (the distance build above may
    # have consumed part of it).
    budget = active_budget()
    if budget is not None:
        remaining = max(0.01, budget.remaining())
        time_limit = (
            remaining if time_limit is None
            else min(float(time_limit), remaining)
        )
    options: dict[str, float] = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    if mip_gap:
        options["mip_rel_gap"] = float(mip_gap)

    result = milp(
        c=costs,
        constraints=constraint,
        integrality=np.ones(n_var),
        bounds=Bounds(0.0, 1.0),
        options=options or None,
    )
    runtime = time.perf_counter() - started

    if result.status == 2:
        raise InfeasibleInstanceError("MILP proved the instance infeasible")
    if result.status == 1 or result.x is None:
        raise SolverError(
            f"exact solver did not finish (status={result.status}: "
            f"{result.message})"
        )

    l = instance.l
    x = result.x[:l]
    y = result.x[l:]
    selected = tuple(int(j) for j in np.flatnonzero(x > 0.5))
    assignment = [-1] * instance.m
    for idx, (i, j) in enumerate(pairs):
        if y[idx] > 0.5:
            assignment[i] = j
    if any(j < 0 for j in assignment):
        raise SolverError("MILP returned an incomplete assignment")

    # Drop selected-but-unused facilities (HiGHS may open a facility the
    # assignment never touches when it is cost-free to do so).
    used = set(assignment)
    selected = tuple(j for j in selected if j in used)

    return MCFSSolution(
        selected=selected,
        assignment=tuple(assignment),
        objective=float(result.fun),
        meta={
            "algorithm": "exact",
            "runtime_sec": runtime,
            "mip_gap": result.mip_gap if hasattr(result, "mip_gap") else 0.0,
            "n_variables": n_var,
        },
    )


def lp_lower_bound(instance: MCFSInstance) -> float:
    """Objective of the LP relaxation of (1)-(3).

    A valid lower bound on the optimal MCFS objective, available even on
    instances where proving integral optimality is too slow.  Used by
    tests and the scalability benchmarks to sanity-check heuristics.
    """
    costs, constraint, n_var, _ = _build_problem(instance)
    result = milp(
        c=costs,
        constraints=constraint,
        integrality=np.zeros(n_var),
        bounds=Bounds(0.0, 1.0),
    )
    if result.x is None:
        raise SolverError(f"LP relaxation failed: {result.message}")
    return float(result.fun)
