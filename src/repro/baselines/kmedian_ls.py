"""Uncapacitated k-median local search, with capacity repair (baseline).

Section III of the paper positions classic local-search facility-location
heuristics (Korupolu et al. [2], Arya-style single swaps) as inapplicable
to MCFS because "they accommodate neither nonuniform nor hard capacity
constraints".  This baseline operationalizes that argument:

1. solve the *uncapacitated* k-median on the candidate set with the
   standard single-swap local search (customers go to their nearest open
   facility; swap one open facility for a closed one while it improves);
2. confront the resulting selection with the real capacities: repair it
   with Algorithm 5 when per-component capacity falls short, and compute
   the final capacity-aware optimal assignment.

On loose capacities this is a strong baseline (location quality is all
that matters); as occupancy tightens, the capacity-blind selection pays
-- exactly the gap WMA is built to close.  The ablation benchmark
measures this crossover.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.instance import MCFSInstance
from repro.core.provisions import cover_components
from repro.core.solution import MCFSSolution
from repro.core.validation import check_feasibility
from repro.errors import BudgetExceeded, MatchingError
from repro.flow.sspa import assign_all
from repro.network.dijkstra import distance_matrix, multi_source_lengths
from repro.obs import metrics
from repro.runtime.budget import checkpoint, grace
from repro.runtime.options import solver_api


def _uncapacitated_cost(
    instance: MCFSInstance, selected: list[int]
) -> float:
    """Sum of each customer's distance to its nearest open facility."""
    nodes = [instance.facility_nodes[j] for j in selected]
    dist = multi_source_lengths(instance.network, nodes).dist
    total = 0.0
    for node in instance.customers:
        d = dist[node]
        if not np.isfinite(d):
            return float("inf")
        total += float(d)
    return total


def _swap_candidates(
    instance: MCFSInstance,
    selected: list[int],
    rng: np.random.Generator,
    pool_size: int,
) -> list[int]:
    """Closed candidates to consider for swapping in.

    Sampling keeps each round linear in the pool size rather than ``l``;
    customer nodes that are candidates are always included (opening at a
    demand point is the classic high-value move).
    """
    closed = [j for j in range(instance.l) if j not in selected]
    if len(closed) <= pool_size:
        return closed
    customer_nodes = set(instance.customers)
    preferred = [
        j for j in closed if instance.facility_nodes[j] in customer_nodes
    ]
    sampled = [
        closed[int(i)]
        for i in rng.choice(len(closed), size=pool_size, replace=False)
    ]
    return list(dict.fromkeys(preferred + sampled))[: max(pool_size, len(preferred))]


def _greedy_init(
    instance: MCFSInstance,
    rng: np.random.Generator,
    pool_size: int,
    workers: int | None = None,
) -> list[int]:
    """Greedy k-median seeding: add the facility reducing cost most.

    Classic greedy over a candidate pool (customer-hosting candidates
    plus a random sample, to keep each round linear).  Maintains the
    per-customer distance to the nearest open facility incrementally: one
    Dijkstra per *evaluated* candidate (batched into a distance matrix,
    optionally fanned over ``workers`` processes), reused across rounds
    through the cached distance columns.
    """
    customer_nodes = list(dict.fromkeys(instance.customers))
    customer_set = set(customer_nodes)
    pool = [
        j
        for j in range(instance.l)
        if instance.facility_nodes[j] in customer_set
    ]
    extra = [j for j in range(instance.l) if j not in set(pool)]
    if extra:
        take = min(len(extra), max(pool_size, instance.k))
        pool += [
            extra[int(i)]
            for i in rng.choice(len(extra), size=take, replace=False)
        ]
    if len(pool) < instance.k:
        missing = [j for j in range(instance.l) if j not in set(pool)]
        pool += missing[: instance.k - len(pool)]

    # Distance column per pool candidate (facility -> every customer).
    matrix = distance_matrix(
        instance.network,
        [instance.facility_nodes[j] for j in pool],
        list(instance.customers),
        workers=workers,
    )
    columns: dict[int, np.ndarray] = {
        j: matrix[idx] for idx, j in enumerate(pool)
    }

    best_per_customer = np.full(instance.m, np.inf)
    selected: list[int] = []
    selected_set: set[int] = set()
    for _ in range(instance.k):
        best_j, best_gain = None, -1.0
        for j in pool:
            if j in selected_set:
                continue
            improved = np.minimum(best_per_customer, columns[j])
            finite = np.where(np.isfinite(improved), improved, 1e12)
            current = np.where(
                np.isfinite(best_per_customer), best_per_customer, 1e12
            )
            gain = float((current - finite).sum())
            if gain > best_gain:
                best_gain, best_j = gain, j
        assert best_j is not None
        selected.append(best_j)
        selected_set.add(best_j)
        best_per_customer = np.minimum(best_per_customer, columns[best_j])
    return sorted(selected)


@solver_api(
    "kmedian-ls",
    uses=("seed", "workers"),
    extras=("max_rounds", "pool_size"),
)
def solve_kmedian_ls(
    instance: MCFSInstance,
    *,
    seed: int = 0,
    max_rounds: int = 20,
    pool_size: int = 64,
    workers: int | None = None,
) -> MCFSSolution:
    """Uncapacitated swap local search + capacity repair baseline.

    Parameters
    ----------
    instance:
        The MCFS instance; capacities are ignored during the search and
        enforced afterwards.
    seed:
        Randomizes the initial selection and the swap sampling.
    max_rounds:
        Bound on improvement rounds (each scans every open facility).
    pool_size:
        Closed candidates sampled per swap evaluation.
    workers:
        Process count for the greedy-init distance-matrix fan-out
        (default: the ``REPRO_WORKERS`` environment variable, else
        serial).  The search trajectory is identical for any count.
    """
    started = time.perf_counter()
    check_feasibility(instance)
    rng = np.random.default_rng(seed)

    selected: list[int] | None = None
    cost = float("inf")
    degraded = False
    try:
        selected = _greedy_init(instance, rng, pool_size, workers)
        cost = _uncapacitated_cost(instance, selected)

        for _ in range(max_rounds):
            improved = False
            for pos in range(len(selected)):
                pool = _swap_candidates(instance, selected, rng, pool_size)
                best_j, best_cost = None, cost
                for j_new in pool:
                    checkpoint()
                    trial = list(selected)
                    trial[pos] = j_new
                    trial_cost = _uncapacitated_cost(instance, trial)
                    if trial_cost < best_cost - 1e-9:
                        best_j, best_cost = j_new, trial_cost
                if best_j is not None:
                    selected[pos] = best_j
                    cost = best_cost
                    improved = True
            if not improved:
                break
    except BudgetExceeded:
        # No feasible state to salvage before greedy seeding completes;
        # past that point the current selection is as good as any swap
        # round left it, so finish with it under grace.
        if selected is None or len(selected) < instance.k:
            raise
        degraded = True
        metrics.active().counter("runtime.degraded_returns").add()
    selected = sorted(selected)

    if degraded:
        with grace():
            selected, result, repaired = _capacity_finalize(
                instance, selected
            )
    else:
        try:
            selected, result, repaired = _capacity_finalize(
                instance, selected
            )
        except BudgetExceeded:
            degraded = True
            metrics.active().counter("runtime.degraded_returns").add()
            with grace():
                selected, result, repaired = _capacity_finalize(
                    instance, selected
                )

    assignment = [selected[j_sub] for j_sub in result.assignment]
    runtime = time.perf_counter() - started
    meta = {
        "algorithm": "kmedian-ls",
        "runtime_sec": runtime,
        "uncapacitated_cost": cost,
        "selection_repaired": repaired,
    }
    if degraded:
        meta["degraded"] = True
    return MCFSSolution(
        selected=tuple(selected),
        assignment=tuple(assignment),
        objective=result.cost,
        meta=meta,
    )


def _capacity_finalize(instance: MCFSInstance, selected: list[int]):
    """Confront reality: capacities and per-component coverage.

    Returns ``(selected, assignment_result, repaired)``.
    """
    repaired = False
    sub_nodes = [instance.facility_nodes[j] for j in selected]
    sub_caps = [instance.capacities[j] for j in selected]
    try:
        result = assign_all(
            instance.network, instance.customers, sub_nodes, sub_caps
        )
    except MatchingError:
        selected = cover_components(instance, selected)
        sub_nodes = [instance.facility_nodes[j] for j in selected]
        sub_caps = [instance.capacities[j] for j in selected]
        result = assign_all(
            instance.network, instance.customers, sub_nodes, sub_caps
        )
        repaired = True
    return selected, result, repaired
