"""WMA Naive: the non-rewiring ablation baseline (Section VII-A).

Identical outer loop to WMA -- demands, set-cover check, exploration
vector -- but "instead of using an exact bipartite matching, WMA Naive
uses a greedy procedure to satisfy customer demands: in each iteration,
it processes customers in a randomly generated order and assigns each
customer to its closest ``d_i`` candidate facilities that have not yet
reached their capacities".

Because the greedy step never reassigns, a facility that is full stays
full; skipped facilities are therefore consumed (never revisited).  The
final customer-to-selection assignment is greedy too (nearest selected
facility with free capacity, customers in random order); when greed
paints itself into a corner, the optimal matcher repairs the assignment
so the reported objective is always for a *feasible* solution.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.instance import MCFSInstance
from repro.core.provisions import cover_components, select_greedy
from repro.core.set_cover import check_cover
from repro.core.solution import MCFSSolution
from repro.core.validation import check_feasibility
from repro.errors import MatchingError
from repro.flow.sspa import assign_all
from repro.network.incremental import StreamPool
from repro.runtime.options import solver_api


def _greedy_fill(
    cursors,
    matched: list[set[int]],
    load: list[int],
    capacities: list[int],
    fac_index: dict[int, int],
    i: int,
    want: int,
) -> None:
    """Greedily match customer ``i`` to ``want`` more facilities."""
    cursor = cursors[i]
    while want > 0:
        item = cursor.take()
        if item is None:
            return
        node, _dist = item
        j = fac_index[node]
        if load[j] >= capacities[j] or j in matched[i]:
            continue
        matched[i].add(j)
        load[j] += 1
        want -= 1


@solver_api("wma-naive", uses=("seed",))
def solve_wma_naive(
    instance: MCFSInstance, *, seed: int = 0
) -> MCFSSolution:
    """Run WMA Naive.

    Parameters
    ----------
    instance:
        The problem to solve.
    seed:
        Seed of the random customer processing order.
    """
    started = time.perf_counter()
    check_feasibility(instance)
    rng = np.random.default_rng(seed)

    m, l, k = instance.m, instance.l, instance.k
    capacities = list(instance.capacities)
    fac_index = instance.facility_index_of_node()
    pool = StreamPool(instance.network, instance.facility_nodes)
    cursors = [pool.cursor_for(node) for node in instance.customers]

    demand = [1] * m
    max_demand = [l] * m
    matched: list[set[int]] = [set() for _ in range(m)]
    load = [0] * l
    last_used = [-1] * l
    iteration = 0
    guard = m * l + 2
    selected: list[int] = []
    fully_covered = False

    while True:
        order = rng.permutation(m)
        for i in order:
            want = demand[i] - len(matched[i])
            if want > 0:
                _greedy_fill(
                    cursors, matched, load, capacities, fac_index, i, want
                )
                if len(matched[i]) < demand[i]:
                    # Stream exhausted or everything reachable is full.
                    max_demand[i] = len(matched[i])
                    demand[i] = max_demand[i]

        sigma = [set() for _ in range(l)]
        for i in range(m):
            for j in matched[i]:
                sigma[j].add(i)
        cover = check_cover(sigma, m, k, last_used)
        for j in cover.selected:
            last_used[j] = iteration
        selected = cover.selected
        fully_covered = cover.fully_covered

        deltas = [
            1 if (not cover.covered[i] and demand[i] < max_demand[i]) else 0
            for i in range(m)
        ]
        iteration += 1
        if not any(deltas) or iteration >= guard:
            break
        for i in range(m):
            demand[i] += deltas[i]

    if len(selected) < k:
        selected = select_greedy(instance, selected)
    if not fully_covered:
        selected = cover_components(instance, selected)

    assignment, objective, repaired = _final_greedy_assignment(
        instance, selected, rng
    )
    runtime = time.perf_counter() - started
    return MCFSSolution(
        selected=tuple(selected),
        assignment=tuple(assignment),
        objective=objective,
        meta={
            "algorithm": "wma-naive",
            "runtime_sec": runtime,
            "iterations": iteration,
            "assignment_repaired": repaired,
        },
    )


def _final_greedy_assignment(
    instance: MCFSInstance, selected: list[int], rng: np.random.Generator
) -> tuple[list[int], float, bool]:
    """Greedy nearest-free-facility assignment onto ``selected``.

    Returns ``(assignment, objective, repaired)``; ``repaired`` is True
    when greed failed and the optimal matcher had to finish the job.
    """
    sub_nodes = [instance.facility_nodes[j] for j in selected]
    sub_caps = [instance.capacities[j] for j in selected]
    pool = StreamPool(instance.network, sub_nodes)
    sub_index = {node: idx for idx, node in enumerate(sub_nodes)}

    load = [0] * len(selected)
    assignment = [-1] * instance.m
    total = 0.0
    for i in rng.permutation(instance.m):
        cursor = pool.cursor_for(instance.customers[i])
        while True:
            item = cursor.take()
            if item is None:
                break
            node, dist = item
            j_sub = sub_index[node]
            if load[j_sub] < sub_caps[j_sub]:
                load[j_sub] += 1
                assignment[i] = selected[j_sub]
                total += dist
                break

    if all(j >= 0 for j in assignment):
        return assignment, total, False

    # Greedy got stuck; fall back to the optimal matcher for feasibility.
    try:
        result = assign_all(
            instance.network, instance.customers, sub_nodes, sub_caps
        )
    except MatchingError:
        selected[:] = cover_components(instance, selected)
        sub_nodes = [instance.facility_nodes[j] for j in selected]
        sub_caps = [instance.capacities[j] for j in selected]
        result = assign_all(
            instance.network, instance.customers, sub_nodes, sub_caps
        )
    assignment = [selected[j_sub] for j_sub in result.assignment]
    return assignment, result.cost, True
