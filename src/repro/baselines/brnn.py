"""The BRNN (Bichromatic Reverse Nearest Neighbor) baseline.

Section III-A describes how Optimal Location Query techniques can be
applied iteratively to MCFS: each customer has a *Nearest Location
Region* (NLR) -- the network nodes strictly closer to the customer than
its nearest already-selected facility -- and the MaxSum rule opens the
candidate overlapped by the most NLRs.

Per the paper's experimental setup, the first facility is the candidate
minimizing the aggregate distance to all customers (the 1-median seed of
the Figure 2 example); each subsequent facility is the MaxSum candidate
with ties broken arbitrarily (lowest index here, for determinism).  The
final customer assignment is produced by the optimal capacity-aware
matcher (the paper runs SIA for this step).

The paper finds this baseline both slow (it "has to repeatedly calculate
NLR intersections") and weak in quality; the benchmarks reproduce both
effects.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.instance import MCFSInstance
from repro.core.provisions import cover_components
from repro.core.solution import MCFSSolution
from repro.core.validation import check_feasibility
from repro.errors import MatchingError
from repro.flow.sspa import assign_all
from repro.network.dijkstra import (
    distance_matrix,
    multi_source_lengths,
    shortest_path_lengths,
)
from repro.network.parallel import ParallelDistanceEngine, resolve_workers
from repro.runtime.options import solver_api


def _first_facility(
    instance: MCFSInstance, engine: ParallelDistanceEngine | None = None
) -> int:
    """The 1-median seed: candidate minimizing summed customer distance.

    Customers that cannot reach a candidate contribute a large constant
    so that candidates reaching *more* customers always win.  The
    customer-to-candidate distances come from one batched (optionally
    process-parallel) distance matrix.
    """
    fac_nodes = list(instance.facility_nodes)
    customers = list(instance.customers)
    if engine is not None:
        mat = engine.distance_matrix(customers, fac_nodes)
    else:
        mat = distance_matrix(instance.network, customers, fac_nodes)
    sums = np.zeros(instance.l)
    unreachable = np.zeros(instance.l, dtype=np.int64)
    # Accumulate customer by customer: same summation order (hence the
    # same floats and tie-breaks) as the historical per-customer loop.
    for row in mat:
        finite = np.isfinite(row)
        sums[finite] += row[finite]
        unreachable[~finite] += 1
    # Lexicographic: fewest unreachable customers, then smallest sum.
    order = np.lexsort((sums, unreachable))
    return int(order[0])


def _nearest_selected(
    instance: MCFSInstance,
    selected_nodes: list[int],
    engine: ParallelDistanceEngine | None,
) -> np.ndarray:
    """Distance from every node to its nearest selected facility."""
    if engine is not None:
        dist, _, _ = engine.multi_source_lengths(selected_nodes)
        return dist
    return multi_source_lengths(instance.network, selected_nodes).dist


@solver_api("brnn", uses=("workers",))
def solve_brnn(
    instance: MCFSInstance, *, workers: int | None = None
) -> MCFSSolution:
    """Run the iterative BRNN / MaxSum baseline.

    ``workers`` fans the seed distance matrix and the per-iteration
    nearest-facility sweeps over a process pool (default: the
    ``REPRO_WORKERS`` environment variable, else serial); the selection
    and objective are identical for any worker count.
    """
    started = time.perf_counter()
    check_feasibility(instance)

    n_workers = resolve_workers(workers)
    engine = (
        ParallelDistanceEngine(instance.network, n_workers)
        if n_workers > 1
        else None
    )
    try:
        return _solve_brnn(instance, engine, started)
    finally:
        if engine is not None:
            engine.close()


def _solve_brnn(
    instance: MCFSInstance,
    engine: ParallelDistanceEngine | None,
    started: float,
) -> MCFSSolution:
    selected: list[int] = [_first_facility(instance, engine)]
    fac_nodes = list(instance.facility_nodes)
    candidate_of_node = instance.facility_index_of_node()

    while len(selected) < instance.k:
        selected_nodes = [fac_nodes[j] for j in selected]
        nearest = _nearest_selected(instance, selected_nodes, engine)

        scores = np.zeros(instance.l, dtype=np.int64)
        for node in instance.customers:
            radius = nearest[node]
            # NLR: nodes strictly closer to the customer than its nearest
            # selected facility.  With no reachable facility the NLR is
            # the whole component.
            result = shortest_path_lengths(instance.network, node, radius=radius)
            for v in result.settled:
                if result.dist[v] < radius:
                    j = candidate_of_node.get(v)
                    if j is not None:
                        scores[j] += 1

        scores[selected] = -1
        j_new = int(np.argmax(scores))
        if scores[j_new] <= 0:
            # No candidate attracts anyone; fall back to any unselected
            # candidate so the budget is still spent.
            remaining = [j for j in range(instance.l) if j not in selected]
            if not remaining:
                break
            j_new = remaining[0]
        selected.append(j_new)

    repaired = False
    sub_nodes = [fac_nodes[j] for j in selected]
    sub_caps = [instance.capacities[j] for j in selected]
    try:
        result = assign_all(
            instance.network, instance.customers, sub_nodes, sub_caps
        )
    except MatchingError:
        selected = cover_components(instance, selected)
        sub_nodes = [fac_nodes[j] for j in selected]
        sub_caps = [instance.capacities[j] for j in selected]
        result = assign_all(
            instance.network, instance.customers, sub_nodes, sub_caps
        )
        repaired = True

    assignment = [selected[j_sub] for j_sub in result.assignment]
    runtime = time.perf_counter() - started
    return MCFSSolution(
        selected=tuple(selected),
        assignment=tuple(assignment),
        objective=result.cost,
        meta={
            "algorithm": "brnn",
            "runtime_sec": runtime,
            "selection_repaired": repaired,
        },
    )
