"""The BRNN (Bichromatic Reverse Nearest Neighbor) baseline.

Section III-A describes how Optimal Location Query techniques can be
applied iteratively to MCFS: each customer has a *Nearest Location
Region* (NLR) -- the network nodes strictly closer to the customer than
its nearest already-selected facility -- and the MaxSum rule opens the
candidate overlapped by the most NLRs.

Per the paper's experimental setup, the first facility is the candidate
minimizing the aggregate distance to all customers (the 1-median seed of
the Figure 2 example); each subsequent facility is the MaxSum candidate
with ties broken arbitrarily (lowest index here, for determinism).  The
final customer assignment is produced by the optimal capacity-aware
matcher (the paper runs SIA for this step).

The paper finds this baseline both slow (it "has to repeatedly calculate
NLR intersections") and weak in quality; the benchmarks reproduce both
effects.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import MatchingError
from repro.core.instance import MCFSInstance
from repro.core.provisions import cover_components
from repro.core.solution import MCFSSolution
from repro.core.validation import check_feasibility
from repro.flow.sspa import assign_all
from repro.network.dijkstra import multi_source_lengths, shortest_path_lengths


def _first_facility(instance: MCFSInstance) -> int:
    """The 1-median seed: candidate minimizing summed customer distance.

    Customers that cannot reach a candidate contribute a large constant
    so that candidates reaching *more* customers always win.
    """
    fac_nodes = np.asarray(instance.facility_nodes)
    sums = np.zeros(instance.l)
    unreachable = np.zeros(instance.l, dtype=np.int64)
    for node in instance.customers:
        result = shortest_path_lengths(instance.network, node)
        dist = result.dist[fac_nodes]
        finite = np.isfinite(dist)
        sums[finite] += dist[finite]
        unreachable[~finite] += 1
    # Lexicographic: fewest unreachable customers, then smallest sum.
    order = np.lexsort((sums, unreachable))
    return int(order[0])


def solve_brnn(instance: MCFSInstance) -> MCFSSolution:
    """Run the iterative BRNN / MaxSum baseline."""
    started = time.perf_counter()
    check_feasibility(instance)

    selected: list[int] = [_first_facility(instance)]
    fac_nodes = list(instance.facility_nodes)
    candidate_of_node = instance.facility_index_of_node()

    while len(selected) < instance.k:
        selected_nodes = [fac_nodes[j] for j in selected]
        nearest = multi_source_lengths(instance.network, selected_nodes).dist

        scores = np.zeros(instance.l, dtype=np.int64)
        for node in instance.customers:
            radius = nearest[node]
            # NLR: nodes strictly closer to the customer than its nearest
            # selected facility.  With no reachable facility the NLR is
            # the whole component.
            result = shortest_path_lengths(instance.network, node, radius=radius)
            for v in result.settled:
                if result.dist[v] < radius:
                    j = candidate_of_node.get(v)
                    if j is not None:
                        scores[j] += 1

        scores[selected] = -1
        j_new = int(np.argmax(scores))
        if scores[j_new] <= 0:
            # No candidate attracts anyone; fall back to any unselected
            # candidate so the budget is still spent.
            remaining = [j for j in range(instance.l) if j not in selected]
            if not remaining:
                break
            j_new = remaining[0]
        selected.append(j_new)

    repaired = False
    sub_nodes = [fac_nodes[j] for j in selected]
    sub_caps = [instance.capacities[j] for j in selected]
    try:
        result = assign_all(
            instance.network, instance.customers, sub_nodes, sub_caps
        )
    except MatchingError:
        selected = cover_components(instance, selected)
        sub_nodes = [fac_nodes[j] for j in selected]
        sub_caps = [instance.capacities[j] for j in selected]
        result = assign_all(
            instance.network, instance.customers, sub_nodes, sub_caps
        )
        repaired = True

    assignment = [selected[j_sub] for j_sub in result.assignment]
    runtime = time.perf_counter() - started
    return MCFSSolution(
        selected=tuple(selected),
        assignment=tuple(assignment),
        objective=result.cost,
        meta={
            "algorithm": "brnn",
            "runtime_sec": runtime,
            "selection_repaired": repaired,
        },
    )
