"""The Hilbert space-filling-curve baseline (Section VII-A).

Following Mitra [17], the baseline divides the customer set into ``k``
buckets of consecutive customers along the Hilbert curve and opens, for
each bucket, the candidate facility closest to the bucket's centroid.
Customers are then optimally re-assigned to the opened facilities with a
single capacity-aware bipartite matching (the paper: "Hilbert selects
locations first, as if capacities were uniform, and then assigns
customers to facilities according to nonuniform capacities using
bipartite matching").

As the paper notes for Figure 6c, Hilbert "considers each component
separately, calculating required facilities per component proportionally
to the number of customers in the component" -- we apportion the budget
``k`` across connected components with largest-remainder rounding, and
floor each component at its Theorem-3 minimum ``k_g`` so the final
matching stays feasible.  If the capacity of the chosen set still falls
short (possible with nonuniform capacities), Algorithm 5's component
repair is applied before matching.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.core.instance import MCFSInstance
from repro.core.provisions import cover_components
from repro.core.solution import MCFSSolution
from repro.core.validation import check_feasibility
from repro.errors import MatchingError
from repro.flow.sspa import assign_all
from repro.geometry.hilbert_curve import hilbert_sort
from repro.runtime.options import solver_api


def _component_budgets(
    instance: MCFSInstance,
) -> list[tuple[list[int], list[int], int]]:
    """Split the budget across components.

    Returns one ``(customer_indices, facility_indices, budget)`` triple
    per populated component.  Budgets are proportional to customer counts
    (largest-remainder), floored at the component's minimum feasible
    ``k_g`` and capped at its candidate count.
    """
    structure = instance.component_structure()
    populated = structure.populated_components()
    caps = instance.capacities

    mins: dict[int, int] = {}
    maxs: dict[int, int] = {}
    for comp in populated:
        needed = len(structure.customers_in[comp])
        comp_caps = sorted(
            (caps[j] for j in structure.facilities_in[comp]), reverse=True
        )
        covered = 0
        k_g = 0
        for cap in comp_caps:
            if covered >= needed:
                break
            covered += cap
            k_g += 1
        mins[comp] = k_g
        maxs[comp] = len(structure.facilities_in[comp])

    # Proportional shares, then repair to respect floors/caps and sum k.
    m = instance.m
    shares = {
        comp: instance.k * len(structure.customers_in[comp]) / m
        for comp in populated
    }
    budget = {comp: max(mins[comp], int(shares[comp])) for comp in populated}
    for comp in populated:
        budget[comp] = min(budget[comp], maxs[comp])

    total = sum(budget.values())
    remainders = sorted(
        populated, key=lambda c: shares[c] - int(shares[c]), reverse=True
    )
    idx = 0
    while total < instance.k and any(
        budget[c] < maxs[c] for c in populated
    ):
        comp = remainders[idx % len(remainders)]
        if budget[comp] < maxs[comp]:
            budget[comp] += 1
            total += 1
        idx += 1
        if idx > 4 * instance.k + len(populated):
            break
    while total > instance.k:
        # Trim the most over-floored component.
        comp = max(populated, key=lambda c: budget[c] - mins[c])
        if budget[comp] <= mins[comp]:
            break
        budget[comp] -= 1
        total -= 1

    return [
        (
            structure.customers_in[comp],
            structure.facilities_in[comp],
            budget[comp],
        )
        for comp in populated
    ]


@solver_api("hilbert")
def solve_hilbert(instance: MCFSInstance) -> MCFSSolution:
    """Run the Hilbert bucketing baseline.

    The terminal method of every default fallback chain: geometry-only
    selection is cheap enough that the runtime runs it without budget
    checkpoints, so it answers even on a fully consumed deadline.

    Raises
    ------
    InfeasibleInstanceError
        When the instance has no feasible solution at all.
    """
    started = time.perf_counter()
    check_feasibility(instance)
    coords = instance.network.coords
    fac_coords = coords[list(instance.facility_nodes)]

    selected: list[int] = []
    for cust_idx, fac_idx, k_comp in _component_budgets(instance):
        if k_comp == 0:
            continue
        pts = coords[[instance.customers[i] for i in cust_idx]]
        order = hilbert_sort(pts)
        bucket_size = math.ceil(len(cust_idx) / k_comp)
        available = set(fac_idx) - set(selected)
        for b in range(0, len(cust_idx), bucket_size):
            chunk = order[b : b + bucket_size]
            if chunk.size == 0 or not available:
                break
            centroid = pts[chunk].mean(axis=0)
            # sorted: argmin tie-breaks must not depend on set order
            cand = sorted(available)
            deltas = fac_coords[cand] - centroid
            j_best = cand[int(np.argmin((deltas**2).sum(axis=1)))]
            selected.append(j_best)
            available.discard(j_best)

    # Capacity repair (needed with nonuniform or tight capacities).
    structure = instance.component_structure()
    labels = structure.labels
    cap_by_comp: dict[int, int] = {}
    need_by_comp: dict[int, int] = {}
    for j in selected:
        comp = int(labels[instance.facility_nodes[j]])
        cap_by_comp[comp] = cap_by_comp.get(comp, 0) + instance.capacities[j]
    for node in instance.customers:
        comp = int(labels[node])
        need_by_comp[comp] = need_by_comp.get(comp, 0) + 1
    repaired = any(
        cap_by_comp.get(comp, 0) < need for comp, need in need_by_comp.items()
    )
    if repaired:
        selected = cover_components(instance, selected)

    sub_nodes = [instance.facility_nodes[j] for j in selected]
    sub_caps = [instance.capacities[j] for j in selected]
    try:
        result = assign_all(
            instance.network, instance.customers, sub_nodes, sub_caps
        )
    except MatchingError:
        selected = cover_components(instance, selected)
        sub_nodes = [instance.facility_nodes[j] for j in selected]
        sub_caps = [instance.capacities[j] for j in selected]
        result = assign_all(
            instance.network, instance.customers, sub_nodes, sub_caps
        )
        repaired = True

    assignment = [selected[j_sub] for j_sub in result.assignment]
    runtime = time.perf_counter() - started
    return MCFSSolution(
        selected=tuple(selected),
        assignment=tuple(assignment),
        objective=result.cost,
        meta={
            "algorithm": "hilbert",
            "runtime_sec": runtime,
            "selection_repaired": repaired,
        },
    )
