"""Solution data model for MCFS solvers.

Every solver in this library -- WMA, the baselines, and the exact MILP --
returns an :class:`MCFSSolution`: the selected facility indices, the
customer-to-facility assignment, the objective value, and a metadata dict
with runtime and algorithm-specific counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class MCFSSolution:
    """A (claimed) feasible MCFS solution.

    Attributes
    ----------
    selected:
        Facility indices (positions into ``instance.facility_nodes``) of
        the opened facilities, ``|selected| <= k``.
    assignment:
        For each customer ``i``, the facility index it is served by.  Every
        entry must be a member of ``selected``.
    objective:
        Sum of network distances between customers and their assigned
        facilities (the paper's objective (1)).
    meta:
        Free-form diagnostics: ``algorithm``, ``runtime_sec``,
        ``iterations``, solver-specific counters.  Purely informational.
    """

    selected: tuple[int, ...]
    assignment: tuple[int, ...]
    objective: float
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.selected = tuple(int(j) for j in self.selected)
        self.assignment = tuple(int(j) for j in self.assignment)
        self.objective = float(self.objective)

    @property
    def algorithm(self) -> str:
        """Name of the producing algorithm (from ``meta``)."""
        return str(self.meta.get("algorithm", "unknown"))

    @property
    def runtime_sec(self) -> float:
        """Wall-clock runtime in seconds (from ``meta``; 0 if unrecorded)."""
        return float(self.meta.get("runtime_sec", 0.0))

    def load_per_facility(self) -> dict[int, int]:
        """Number of customers served by each selected facility."""
        loads = {j: 0 for j in self.selected}
        for j in self.assignment:
            loads[j] = loads.get(j, 0) + 1
        return loads

    def summary_row(self) -> dict[str, Any]:
        """Flat summary for benchmark tables."""
        return {
            "algorithm": self.algorithm,
            "objective": round(self.objective, 2),
            "runtime_sec": round(self.runtime_sec, 4),
            "facilities_used": len(set(self.assignment)),
        }

    def __repr__(self) -> str:
        return (
            f"MCFSSolution(algorithm={self.algorithm!r}, "
            f"objective={self.objective:.2f}, "
            f"selected={len(self.selected)} facilities)"
        )
