"""Dynamic customer reallocation on a fixed facility selection.

The paper's introduction motivates MCFS with applications that "may need
to be solved scalably and repeatedly, as in applications requiring the
dynamic reallocation of customers to facilities".  This module provides
that operational layer: once facilities have been selected (by WMA or any
other solver), a :class:`DynamicAllocator` maintains an *optimal*
customer-to-facility assignment under customer arrivals and departures.

* An **arrival** runs one SSPA augmentation (``find_pair``) on the
  persistent bipartite state, possibly rewiring existing customers.  By
  the matcher's invariants (Section V), the running assignment stays
  cost-optimal for the active customer set -- arrivals are incremental
  and cheap.
* A **departure** frees one unit of flow.  The remaining flow is feasible
  but not necessarily optimal, and the matcher's dual invariants do not
  survive flow *removal*; the allocator therefore rebuilds the optimal
  assignment with a fresh SSPA pass over the active customers.  The
  expensive network Dijkstras are shared through the persistent
  :class:`~repro.network.incremental.StreamPool`, so the rebuild is far
  cheaper than solving cold.  ``auto_reoptimize=False`` defers this
  (feasible-but-possibly-suboptimal) until :meth:`reoptimize` is called.

Customer *handles* returned by :meth:`add_customer` stay valid across
rebuilds.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.instance import MCFSInstance
from repro.errors import InvalidInstanceError, MatchingError
from repro.flow.bipartite import BipartiteState
from repro.flow.sspa import find_pair


@dataclass
class AllocationEvent:
    """Audit record of one arrival, departure, or re-optimization."""

    kind: str  # "arrival" | "departure" | "reoptimize"
    customer_node: int
    cost_before: float
    cost_after: float
    reassigned: int  # customers whose facility changed


class DynamicAllocator:
    """Maintain a capacity-feasible, optimal assignment under churn.

    Parameters
    ----------
    instance:
        Provides the network and the facility metadata; its customer list
        seeds the initial population.
    selected:
        Facility indices (into ``instance.facility_nodes``) to serve
        from; the selection stays fixed.
    auto_reoptimize:
        Re-optimize after every departure (default).  With ``False`` the
        assignment remains feasible but may drift from optimal until
        :meth:`reoptimize` is invoked.
    """

    def __init__(
        self,
        instance: MCFSInstance,
        selected: Sequence[int],
        *,
        auto_reoptimize: bool = True,
    ) -> None:
        self._instance = instance
        self._selected = [int(j) for j in selected]
        if not self._selected:
            raise InvalidInstanceError("selection must contain facilities")
        self._sub_nodes = [instance.facility_nodes[j] for j in self._selected]
        self._sub_caps = [instance.capacities[j] for j in self._selected]
        self._auto_reoptimize = bool(auto_reoptimize)

        self._state = BipartiteState(
            instance.network, [], self._sub_nodes, self._sub_caps
        )
        # handle -> node (None once departed); handle -> state row index.
        self._node_of_handle: list[int | None] = []
        self._row_of_handle: dict[int, int] = {}
        self._handle_of_row: dict[int, int] = {}
        self.events: list[AllocationEvent] = []
        for node in instance.customers:
            self.add_customer(int(node))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_active(self) -> int:
        """Number of currently served customers."""
        return len(self._row_of_handle)

    @property
    def cost(self) -> float:
        """Total distance of the current assignment."""
        return self._state.total_cost()

    def facility_of(self, handle: int) -> int:
        """Facility index currently serving the given customer handle."""
        row = self._row_of_handle.get(handle)
        if row is None:
            raise InvalidInstanceError(f"no active customer {handle}")
        (j_sub,) = self._state.matched[row]
        return self._selected[j_sub]

    def assignment(self) -> dict[int, int]:
        """Active handle -> facility index (into the instance)."""
        return {h: self.facility_of(h) for h in self._row_of_handle}

    def load_per_facility(self) -> dict[int, int]:
        """Facility index -> number of served customers."""
        return {
            self._selected[j_sub]: self._state.load(j_sub)
            for j_sub in range(len(self._selected))
        }

    def residual_capacity(self) -> int:
        """Total unused capacity across the selection."""
        return sum(
            self._state.capacities[j] - self._state.load(j)
            for j in range(self._state.l)
        )

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def add_customer(self, node: int) -> int:
        """Serve a newly arrived customer at ``node``; returns a handle.

        Raises :class:`MatchingError` (leaving the allocator unchanged)
        when no reachable facility has residual capacity -- the signal to
        re-run facility selection.
        """
        state = self._state
        cost_before = state.total_cost()
        snapshot = self._facility_snapshot()

        row = self._append_row(state, int(node))
        try:
            find_pair(state, row)
        except MatchingError:
            self._pop_row(state)
            raise

        handle = len(self._node_of_handle)
        self._node_of_handle.append(int(node))
        self._row_of_handle[handle] = row
        self._handle_of_row[row] = handle

        self.events.append(
            AllocationEvent(
                kind="arrival",
                customer_node=int(node),
                cost_before=cost_before,
                cost_after=state.total_cost(),
                reassigned=self._count_moves(snapshot),
            )
        )
        return handle

    def remove_customer(self, handle: int) -> None:
        """Stop serving the customer identified by ``handle``."""
        row = self._row_of_handle.get(handle)
        if row is None:
            raise InvalidInstanceError(f"no active customer {handle}")
        state = self._state
        cost_before = state.total_cost()
        node = self._node_of_handle[handle]
        assert node is not None

        (j_sub,) = state.matched[row]
        state.unmatch(row, j_sub)
        del self._row_of_handle[handle]
        del self._handle_of_row[row]
        self._node_of_handle[handle] = None

        reassigned = 0
        if self._auto_reoptimize:
            reassigned = self.reoptimize()

        self.events.append(
            AllocationEvent(
                kind="departure",
                customer_node=int(node),
                cost_before=cost_before,
                cost_after=self._state.total_cost(),
                reassigned=reassigned,
            )
        )

    def reoptimize(self) -> int:
        """Rebuild the optimal assignment for the active customers.

        Returns the number of customers whose facility changed.  Shares
        the stream pool with the previous state, so network shortest-path
        work is reused.
        """
        snapshot = self._facility_snapshot()
        handles = sorted(self._row_of_handle)
        nodes = [self._node_of_handle[h] for h in handles]

        fresh = BipartiteState(
            self._instance.network,
            [int(n) for n in nodes],  # type: ignore[arg-type]
            self._sub_nodes,
            self._sub_caps,
            pool=self._state.pool,
        )
        for row in range(fresh.m):
            find_pair(fresh, row)

        self._state = fresh
        self._row_of_handle = {h: row for row, h in enumerate(handles)}
        self._handle_of_row = {row: h for row, h in enumerate(handles)}
        return self._count_moves(snapshot)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _append_row(state: BipartiteState, node: int) -> int:
        """Grow the bipartite state's customer side by one stub row."""
        row = state.m
        state.customer_nodes.append(node)
        state.edges.append({})
        state.matched.append(set())
        state.customer_potential.append(0.0)
        state._cursors.append(None)
        state.m += 1
        return row

    @staticmethod
    def _pop_row(state: BipartiteState) -> None:
        """Undo :meth:`_append_row` for an unmatched trailing stub."""
        assert not state.matched[-1]
        state.customer_nodes.pop()
        state.edges.pop()
        state.matched.pop()
        state.customer_potential.pop()
        state._cursors.pop()
        state.m -= 1

    def _facility_snapshot(self) -> dict[int, int]:
        out: dict[int, int] = {}
        for handle, row in self._row_of_handle.items():
            if self._state.matched[row]:
                (j_sub,) = self._state.matched[row]
                out[handle] = self._selected[j_sub]
        return out

    def _count_moves(self, before: dict[int, int]) -> int:
        moves = 0
        for handle, j_old in before.items():
            row = self._row_of_handle.get(handle)
            if row is not None and self._state.matched[row]:
                (j_sub,) = self._state.matched[row]
                if self._selected[j_sub] != j_old:
                    moves += 1
        return moves

    def __repr__(self) -> str:
        return (
            f"DynamicAllocator(active={self.n_active}, "
            f"facilities={len(self._selected)}, cost={self.cost:.1f})"
        )
