"""Dynamic customer reallocation -- the legacy shim over the serve engine.

The paper's introduction motivates MCFS with applications that "may need
to be solved scalably and repeatedly, as in applications requiring the
dynamic reallocation of customers to facilities".  That operational
layer now lives in :mod:`repro.serve`: a
:class:`~repro.serve.engine.ServeEngine` consumes batches of typed
mutations (``engine.apply([CustomerArrive(node)])``) and keeps the
assignment optimal with incremental repair, component-scoped re-solves,
deadlines, and admission control.

:class:`DynamicAllocator` remains as the pre-serve API: a thin forwarding
shim whose :meth:`add_customer`/:meth:`remove_customer` emit
:class:`DeprecationWarning` and translate to one-mutation batches (the
same migration pattern ``runtime.options`` used for the PR 3 solver
kwargs; the call migration table lives in ``docs/api.md``).  Behavior is
preserved -- including the :class:`AllocationEvent` audit trail, handle
stability, and ``MatchingError`` on infeasible arrivals -- with one
improvement the redesign ships: departures now take the engine's cheap
*component-scoped* repair path instead of an unconditional full SSPA
rebuild, bit-identical in cost (SSPA augmentations never cross network
components, so per-component re-solves compose to the full rebuild).

Customer *handles* returned by :meth:`add_customer` stay valid across
rebuilds.
"""

from __future__ import annotations

import warnings
from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.instance import MCFSInstance
from repro.errors import InvalidInstanceError, MatchingError

if TYPE_CHECKING:
    from repro.serve.engine import ServeEngine


@dataclass
class AllocationEvent:
    """Audit record of one arrival, departure, or re-optimization."""

    kind: str  # "arrival" | "departure" | "reoptimize"
    customer_node: int
    cost_before: float
    cost_after: float
    reassigned: int  # customers whose facility changed


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"DynamicAllocator.{old} is deprecated; use "
        f"ServeEngine.apply([{new}]) from repro.serve instead",
        DeprecationWarning,
        stacklevel=3,
    )


class DynamicAllocator:
    """Maintain a capacity-feasible, optimal assignment under churn.

    Deprecated in favor of :class:`repro.serve.ServeEngine`; this class
    forwards to an engine underneath and will be removed once callers
    migrate to the typed mutation API.

    Parameters
    ----------
    instance:
        Provides the network and the facility metadata; its customer list
        seeds the initial population.
    selected:
        Facility indices (into ``instance.facility_nodes``) to serve
        from; the selection stays fixed.
    auto_reoptimize:
        Re-optimize after every departure (default).  With ``False`` the
        assignment remains feasible but may drift from optimal until
        :meth:`reoptimize` is invoked.
    """

    def __init__(
        self,
        instance: MCFSInstance,
        selected: Sequence[int],
        *,
        auto_reoptimize: bool = True,
    ) -> None:
        # Lazy: core ranks below serve in the layering contract.
        from repro.serve.engine import ServeEngine

        self._engine: ServeEngine = ServeEngine(
            instance,
            selected,
            auto_repair=auto_reoptimize,
            seed_customers=False,
        )
        self.events: list[AllocationEvent] = []
        for node in instance.customers:
            self._add(int(node))

    # ------------------------------------------------------------------
    # Queries (all forwarded to the engine)
    # ------------------------------------------------------------------
    @property
    def n_active(self) -> int:
        """Number of currently served customers."""
        return self._engine.n_active

    @property
    def cost(self) -> float:
        """Total distance of the current assignment."""
        return self._engine.cost

    @property
    def _node_of_handle(self) -> list[int | None]:
        # Kept for callers that indexed the old internal handle table.
        return self._engine._node_of_handle

    def facility_of(self, handle: int) -> int:
        """Facility index currently serving the given customer handle."""
        return self._engine.facility_of(handle)

    def assignment(self) -> dict[int, int]:
        """Active handle -> facility index (into the instance)."""
        return self._engine.assignment()

    def load_per_facility(self) -> dict[int, int]:
        """Facility index -> number of served customers."""
        return self._engine.load_per_facility()

    def residual_capacity(self) -> int:
        """Total unused capacity across the selection."""
        return self._engine.residual_capacity()

    # ------------------------------------------------------------------
    # Mutations (deprecated shims over ServeEngine.apply)
    # ------------------------------------------------------------------
    def add_customer(self, node: int) -> int:
        """Serve a newly arrived customer at ``node``; returns a handle.

        .. deprecated::
            Use ``engine.apply([CustomerArrive(node)])`` instead.

        Raises :class:`MatchingError` (leaving the allocator unchanged)
        when no reachable facility has residual capacity -- the signal to
        re-run facility selection.
        """
        _deprecated("add_customer", f"CustomerArrive({int(node)})")
        return self._add(int(node))

    def remove_customer(self, handle: int) -> None:
        """Stop serving the customer identified by ``handle``.

        .. deprecated::
            Use ``engine.apply([CustomerDepart(handle)])`` instead.
        """
        _deprecated("remove_customer", f"CustomerDepart({int(handle)})")
        from repro.serve.mutations import CustomerDepart

        engine = self._engine
        node = engine.node_of(handle)  # raises on unknown/departed handles
        cost_before = engine.cost
        result = engine.apply([CustomerDepart(int(handle))])
        outcome = result.outcomes[0]
        if outcome.status != "applied":
            raise InvalidInstanceError(outcome.detail)
        self.events.append(
            AllocationEvent(
                kind="departure",
                customer_node=node,
                cost_before=cost_before,
                cost_after=engine.cost,
                reassigned=result.moves,
            )
        )

    def reoptimize(self) -> int:
        """Re-optimize everything pending; returns customers moved.

        With ``auto_reoptimize=False`` departures leave the assignment
        feasible but stale; this repairs it (the engine re-solves only
        the dirty components).
        """
        return self._engine.repair()

    def _add(self, node: int) -> int:
        from repro.serve.mutations import CustomerArrive

        engine = self._engine
        cost_before = engine.cost
        result = engine.apply([CustomerArrive(node)])
        outcome = result.outcomes[0]
        if outcome.status != "applied":
            raise MatchingError(outcome.detail)
        assert outcome.handle is not None
        self.events.append(
            AllocationEvent(
                kind="arrival",
                customer_node=node,
                cost_before=cost_before,
                cost_after=engine.cost,
                reassigned=result.moves,
            )
        )
        return outcome.handle

    def __repr__(self) -> str:
        return (
            f"DynamicAllocator(active={self.n_active}, "
            f"facilities={len(self._engine.selected_nodes)}, "
            f"cost={self.cost:.1f})"
        )
