"""Exploration-vector (demand update) policies, Section IV-F.

Each customer ``s_i`` carries a *demand* ``d_i``: the number of distinct
candidate facilities it must be matched to in ``G_b``.  After every
set-cover check, a demand policy decides which customers explore further.

The paper's finding -- reproduced by the ablation benchmark -- is that the
*selective* policy (grow only customers left uncovered by the current
selection) converges much faster than growing everyone uniformly.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Protocol


class DemandPolicy(Protocol):
    """Strategy deciding the per-iteration demand increments ``delta_d``."""

    def deltas(
        self,
        demand: Sequence[int],
        covered: Sequence[bool],
        max_demand: Sequence[int],
    ) -> list[int]:
        """Return ``delta_d`` per customer.

        Parameters
        ----------
        demand:
            Current demand per customer.
        covered:
            Whether the latest selection covers each customer.
        max_demand:
            Per-customer demand ceiling: the paper caps demand at ``l``;
            the solver may lower the ceiling to the number of facilities
            actually reachable from the customer's component.
        """
        ...


class SelectiveDemandPolicy:
    """The paper's policy: ``delta_d_i = 1`` iff uncovered and below cap.

    "It is much more effective to increase the demand by 1 only for those
    customers that were not covered in the last iteration" (Section IV-F).
    """

    name = "selective"

    def deltas(
        self,
        demand: Sequence[int],
        covered: Sequence[bool],
        max_demand: Sequence[int],
    ) -> list[int]:
        return [
            1 if (not covered[i] and demand[i] < max_demand[i]) else 0
            for i in range(len(demand))
        ]


class UniformDemandPolicy:
    """Ablation policy: grow every customer (below cap) while any is uncovered.

    This is the "simple approach" the paper argues against.  Termination
    still requires that fully-covered rounds produce an all-zero delta, so
    growth stops as soon as the selection covers everyone.
    """

    name = "uniform"

    def deltas(
        self,
        demand: Sequence[int],
        covered: Sequence[bool],
        max_demand: Sequence[int],
    ) -> list[int]:
        if all(covered):
            return [0] * len(demand)
        return [
            1 if demand[i] < max_demand[i] else 0 for i in range(len(demand))
        ]
