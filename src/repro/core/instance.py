"""The MCFS problem instance data model.

An instance bundles the network, the customers, the candidate facilities
with their capacities, and the budget ``k`` -- the inputs of objective (1)
subject to constraints (2)-(3) in the paper.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import InvalidInstanceError
from repro.network.components import ComponentStructure
from repro.network.graph import Network

if TYPE_CHECKING:
    from repro.core.solution import MCFSSolution


@dataclass(frozen=True)
class MCFSInstance:
    """A Multicapacity Facility Selection problem instance.

    Attributes
    ----------
    network:
        The weighted road network ``G``.
    customers:
        Node id per customer (length ``m``).  Duplicates are allowed --
        the paper's Figure 8c explicitly places multiple customers per
        node.
    facility_nodes:
        Node id per candidate facility (length ``l``).  Distinct, because
        MCFS is the *hard* capacitated k-median: at most one facility per
        location.
    capacities:
        Positive integer capacity ``c_j`` per candidate facility.
    k:
        Number of facilities to select.
    name:
        Optional label used in reports.
    """

    network: Network
    customers: tuple[int, ...]
    facility_nodes: tuple[int, ...]
    capacities: tuple[int, ...]
    k: int
    name: str = "mcfs"

    def __post_init__(self) -> None:
        object.__setattr__(self, "customers", tuple(int(c) for c in self.customers))
        object.__setattr__(
            self, "facility_nodes", tuple(int(f) for f in self.facility_nodes)
        )
        object.__setattr__(
            self, "capacities", tuple(int(c) for c in self.capacities)
        )
        self._validate()

    def _validate(self) -> None:
        n = self.network.n_nodes
        if not self.customers:
            raise InvalidInstanceError("instance has no customers")
        if not self.facility_nodes:
            raise InvalidInstanceError("instance has no candidate facilities")
        if len(self.facility_nodes) != len(self.capacities):
            raise InvalidInstanceError(
                f"{len(self.facility_nodes)} facility nodes but "
                f"{len(self.capacities)} capacities"
            )
        if len(set(self.facility_nodes)) != len(self.facility_nodes):
            raise InvalidInstanceError(
                "candidate facility nodes must be distinct (hard capacities: "
                "one facility per location)"
            )
        for node in self.customers:
            if not (0 <= node < n):
                raise InvalidInstanceError(f"customer node {node} outside graph")
        for node in self.facility_nodes:
            if not (0 <= node < n):
                raise InvalidInstanceError(f"facility node {node} outside graph")
        for cap in self.capacities:
            if cap <= 0:
                raise InvalidInstanceError(f"capacity must be positive, got {cap}")
        if not (1 <= self.k <= len(self.facility_nodes)):
            raise InvalidInstanceError(
                f"k={self.k} must be in 1..l={len(self.facility_nodes)}"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of customers."""
        return len(self.customers)

    @property
    def l(self) -> int:
        """Number of candidate facilities (the paper's script-l)."""
        return len(self.facility_nodes)

    @property
    def mean_capacity(self) -> float:
        """Average candidate capacity, used by the Uniform-First variant."""
        return float(np.mean(self.capacities))

    @property
    def occupancy(self) -> float:
        """The paper's occupancy ``o = m / (c-bar * k)``.

        Values close to 1 mean capacities are tight; the instance can only
        be feasible when ``o <= 1`` holds for the capacities actually
        selected.
        """
        return self.m / (self.mean_capacity * self.k)

    def facility_index_of_node(self) -> dict[int, int]:
        """Map facility node id -> facility index."""
        return {node: j for j, node in enumerate(self.facility_nodes)}

    def component_structure(self) -> ComponentStructure:
        """Customers and candidates grouped by network component."""
        return ComponentStructure.build(
            self.network, self.customers, self.facility_nodes
        )

    def restrict_to(self, facility_indices: Sequence[int]) -> MCFSInstance:
        """A sub-instance whose candidate set is the given facilities.

        This is the instance solved by the final recursive call of
        Algorithm 1 (Lines 14-15): ``F_p`` shrinks to the selected set and
        ``k`` stays, so the solver reduces to an optimal assignment.
        """
        indices = list(facility_indices)
        return MCFSInstance(
            network=self.network,
            customers=self.customers,
            facility_nodes=tuple(self.facility_nodes[j] for j in indices),
            capacities=tuple(self.capacities[j] for j in indices),
            k=min(self.k, len(indices)),
            name=f"{self.name}|restricted",
        )

    def with_uniform_capacities(self, capacity: int | None = None) -> MCFSInstance:
        """Copy of the instance with every capacity set to ``capacity``.

        Defaults to the rounded-up mean capacity, as in the Uniform-First
        heuristic of Section VII-F.
        """
        if capacity is None:
            capacity = max(1, int(round(self.mean_capacity)))
        return MCFSInstance(
            network=self.network,
            customers=self.customers,
            facility_nodes=self.facility_nodes,
            capacities=(int(capacity),) * self.l,
            k=self.k,
            name=f"{self.name}|uniform-cap",
        )

    def solve(
        self,
        method: str = "wma",
        *,
        options: object = None,
        deadline: float | None = None,
        fallback: object = None,
        **kwargs: Any,
    ) -> MCFSSolution:
        """Solve this instance -- the documented one-line entry point.

        Equivalent to ``repro.solve(self, method, options=options,
        deadline=deadline, fallback=fallback, **kwargs)``; see
        :func:`repro.solve` for the parameters and
        :class:`repro.SolverOptions` for the unified option surface.

        >>> from repro.datagen import uniform_instance
        >>> uniform_instance(64, seed=1).solve("hilbert").objective > 0
        True
        """
        from repro import solve as _solve

        return _solve(
            self,
            method,
            options=options,
            deadline=deadline,
            fallback=fallback,
            **kwargs,
        )

    def describe(self) -> dict[str, Any]:
        """Flat summary for reports."""
        return {
            "name": self.name,
            "n": self.network.n_nodes,
            "E": self.network.n_edges,
            "m": self.m,
            "l": self.l,
            "k": self.k,
            "occupancy": round(self.occupancy, 3),
        }
