"""Feasibility audits and objective evaluation.

These routines are the ground truth the test suite and benchmarks rely
on: they recompute everything from the instance and the raw network,
independently of any solver's internal bookkeeping.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence

import numpy as np

from repro.core.instance import MCFSInstance
from repro.core.solution import MCFSSolution
from repro.errors import InfeasibleInstanceError, InvalidInstanceError
from repro.network.dijkstra import shortest_path_lengths


def evaluate_objective(
    instance: MCFSInstance, assignment: Sequence[int]
) -> float:
    """Recompute objective (1): the summed customer-facility distances.

    Distances are measured customer-to-facility (the direction the
    matcher optimizes).  On undirected networks one early-exit Dijkstra
    per *used facility* suffices (usually far fewer than customers); on
    directed networks the search runs per distinct customer node, since
    the two directions differ.

    Raises
    ------
    InvalidInstanceError
        If the assignment has the wrong length or references an invalid
        facility index.
    InfeasibleInstanceError
        If some customer cannot reach its assigned facility.
    """
    if len(assignment) != instance.m:
        raise InvalidInstanceError(
            f"assignment length {len(assignment)} != m={instance.m}"
        )
    by_facility: dict[int, list[int]] = defaultdict(list)
    for i, j in enumerate(assignment):
        j = int(j)
        if not (0 <= j < instance.l):
            raise InvalidInstanceError(f"assignment[{i}]={j} is not a facility index")
        by_facility[j].append(i)

    total = 0.0
    if instance.network.directed:
        by_customer_node: dict[int, list[int]] = defaultdict(list)
        for i, _j in enumerate(assignment):
            by_customer_node[instance.customers[i]].append(i)
        for node, members in by_customer_node.items():
            targets = {instance.facility_nodes[int(assignment[i])] for i in members}
            result = shortest_path_lengths(instance.network, node, targets=targets)
            for i in members:
                f_node = instance.facility_nodes[int(assignment[i])]
                d = result.dist[f_node]
                if not np.isfinite(d):
                    raise InfeasibleInstanceError(
                        f"customer {i} (node {node}) cannot reach facility "
                        f"node {f_node}"
                    )
                total += float(d)
        return total

    for j, members in by_facility.items():
        f_node = instance.facility_nodes[j]
        targets = {instance.customers[i] for i in members}
        result = shortest_path_lengths(instance.network, f_node, targets=targets)
        for i in members:
            d = result.dist[instance.customers[i]]
            if not np.isfinite(d):
                raise InfeasibleInstanceError(
                    f"customer {i} (node {instance.customers[i]}) cannot reach "
                    f"facility {j} (node {f_node})"
                )
            total += float(d)
    return total


def validate_solution(
    instance: MCFSInstance,
    solution: MCFSSolution,
    *,
    objective_rtol: float = 1e-6,
) -> None:
    """Audit a solution against constraints (2)-(3) of the paper.

    Checks, raising :class:`InvalidInstanceError` on the first violation:

    * at most ``k`` facilities selected, all valid and distinct;
    * every customer assigned to exactly one *selected* facility;
    * no facility serves more customers than its capacity;
    * the reported objective matches an independent recomputation.
    """
    selected = set(solution.selected)
    if len(solution.selected) != len(selected):
        raise InvalidInstanceError("selected facilities contain duplicates")
    if len(selected) > instance.k:
        raise InvalidInstanceError(
            f"{len(selected)} facilities selected but k={instance.k}"
        )
    for j in selected:
        if not (0 <= j < instance.l):
            raise InvalidInstanceError(f"selected facility index {j} out of range")

    if len(solution.assignment) != instance.m:
        raise InvalidInstanceError(
            f"assignment length {len(solution.assignment)} != m={instance.m}"
        )
    loads: dict[int, int] = defaultdict(int)
    for i, j in enumerate(solution.assignment):
        if j not in selected:
            raise InvalidInstanceError(
                f"customer {i} assigned to unselected facility {j}"
            )
        loads[j] += 1
    for j, load in loads.items():
        if load > instance.capacities[j]:
            raise InvalidInstanceError(
                f"facility {j} serves {load} customers but has capacity "
                f"{instance.capacities[j]}"
            )

    recomputed = evaluate_objective(instance, solution.assignment)
    tolerance = objective_rtol * max(1.0, abs(recomputed))
    if abs(recomputed - solution.objective) > tolerance:
        raise InvalidInstanceError(
            f"reported objective {solution.objective} differs from recomputed "
            f"{recomputed}"
        )


def check_feasibility(instance: MCFSInstance) -> None:
    """Raise :class:`InfeasibleInstanceError` if no feasible solution exists.

    Per Theorem 3 of the paper, an instance is feasible iff the budget
    ``k`` can be split across connected components so that each component
    ``g`` receives at least ``k_g`` facilities, where ``k_g`` is the
    minimum number of highest-capacity candidates in ``g`` whose combined
    capacity covers the component's customers.
    """
    structure = instance.component_structure()
    needed = structure.minimum_budget(instance.capacities)
    if needed > instance.k:
        if needed > instance.l:
            raise InfeasibleInstanceError(
                "some network component hosts more customers than the total "
                "capacity of its candidate facilities"
            )
        raise InfeasibleInstanceError(
            f"budget k={instance.k} is below the per-component minimum "
            f"{needed}"
        )


def is_feasible(instance: MCFSInstance) -> bool:
    """Boolean form of :func:`check_feasibility`."""
    try:
        check_feasibility(instance)
    except InfeasibleInstanceError:
        return False
    return True
