"""Assignment under road throughput constraints (extension).

The paper's model routes every customer along shortest paths and notes
that its networks have "no throughput constraints on edges" (Section
VII-D3).  Real road and utility networks do have them: only so many
customers can be funneled through one street segment.  This module adds
the missing variant for a *fixed* facility selection:

    minimize total routed distance such that every customer reaches one
    selected facility, facility loads respect capacities, and no road
    edge carries more than ``throughput`` customers.

This is a single min-cost flow on the road network itself (not the
bipartite abstraction): customers inject one unit each, selected
facilities drain into a super-sink bounded by their capacities, and every
road edge becomes a pair of arcs with the throughput as capacity and the
road length as cost.  Solved exactly by :class:`repro.flow.mcf.FlowNetwork`.

With infinite throughput the optimum equals the classic assignment
(``assign_all``), which the tests verify; with tight throughput the cost
rises and eventually the problem becomes infeasible -- the congestion
regime the paper's model ignores.

Note: flow solutions give each *unit* a route, but units are
interchangeable; customer-to-facility attribution follows a flow
decomposition and is therefore not unique.  The reported objective and
per-facility loads are.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.instance import MCFSInstance
from repro.errors import InvalidInstanceError
from repro.flow.mcf import FlowError, FlowNetwork


@dataclass
class ThroughputResult:
    """Outcome of :func:`assign_with_throughput`.

    Attributes
    ----------
    cost:
        Total routed distance (equals the assignment objective when
        throughput is not binding).
    facility_loads:
        Customers absorbed per facility index.
    edge_flows:
        Net absolute flow per input road edge (units traversing it).
    max_edge_utilization:
        Highest ``flow / throughput`` over road edges (1.0 = saturated).
    """

    cost: float
    facility_loads: dict[int, int]
    edge_flows: list[float]
    max_edge_utilization: float


def assign_with_throughput(
    instance: MCFSInstance,
    selected: Sequence[int],
    throughput: float,
) -> ThroughputResult:
    """Min-cost routing of all customers under a uniform edge throughput.

    Parameters
    ----------
    instance:
        The MCFS instance (network, customers, capacities).
    selected:
        Facility indices to serve from.
    throughput:
        Maximum number of customers any single road edge may carry (per
        direction); use ``float('inf')`` for the classic unconstrained
        assignment.

    Raises
    ------
    FlowError
        When the throughput (or capacities/connectivity) make serving all
        customers impossible.
    InvalidInstanceError
        For an empty selection.
    """
    selected = [int(j) for j in selected]
    if not selected:
        raise InvalidInstanceError("selection must contain facilities")
    if throughput <= 0:
        raise FlowError(f"throughput must be positive, got {throughput}")

    network = instance.network
    n = network.n_nodes
    sink = n  # super-sink node
    flow_net = FlowNetwork(n + 1)

    # Customer supplies (multiple customers per node aggregate).
    per_node: dict[int, int] = defaultdict(int)
    for node in instance.customers:
        per_node[node] += 1
    for node, count in per_node.items():
        flow_net.set_supply(node, count)
    flow_net.set_supply(sink, -instance.m)

    # Road edges: one arc per direction, throughput-capped.  Infinite
    # throughput becomes a finite bound of m (no edge ever needs more).
    cap = float(min(throughput, instance.m))
    edge_arc_ids: list[tuple[int, int]] = []
    for u, v, w in network.edges():
        a1 = flow_net.add_arc(u, v, cap, w)
        if network.directed:
            edge_arc_ids.append((a1, -1))
        else:
            a2 = flow_net.add_arc(v, u, cap, w)
            edge_arc_ids.append((a1, a2))

    # Facility drains.
    drain_arc_of_facility: dict[int, int] = {}
    for j in selected:
        node = instance.facility_nodes[j]
        drain_arc_of_facility[j] = flow_net.add_arc(
            node, sink, float(instance.capacities[j]), 0.0
        )

    result = flow_net.solve()

    loads = {
        j: int(round(result.flows[arc_id]))
        for j, arc_id in drain_arc_of_facility.items()
    }
    edge_flows: list[float] = []
    max_util = 0.0
    for a1, a2 in edge_arc_ids:
        total = result.flows[a1] + (result.flows[a2] if a2 >= 0 else 0.0)
        edge_flows.append(total)
        if cap > 0:
            max_util = max(max_util, max(result.flows[a1],
                                         result.flows[a2] if a2 >= 0 else 0.0) / cap)
    return ThroughputResult(
        cost=result.cost,
        facility_loads=loads,
        edge_flows=edge_flows,
        max_edge_utilization=max_util,
    )


def congestion_profile(
    instance: MCFSInstance,
    selected: Sequence[int],
    throughputs: Sequence[float],
) -> list[dict[str, float]]:
    """Routed cost as edge throughput tightens.

    One row per throughput value: cost, max edge utilization, and the
    relative cost increase versus the unconstrained optimum; infeasible
    points report ``cost=None``.
    """
    base = assign_with_throughput(instance, selected, float("inf"))
    rows: list[dict[str, float]] = []
    for throughput in throughputs:
        try:
            res = assign_with_throughput(instance, selected, throughput)
            rows.append(
                {
                    "throughput": throughput,
                    "cost": round(res.cost, 2),
                    "vs_unconstrained": round(res.cost / base.cost, 4)
                    if base.cost > 0
                    else 1.0,
                    "max_edge_utilization": round(
                        res.max_edge_utilization, 3
                    ),
                }
            )
        except FlowError:
            rows.append(
                {
                    "throughput": throughput,
                    "cost": None,
                    "vs_unconstrained": None,
                    "max_edge_utilization": None,
                }
            )
    return rows
