"""Special provisions of WMA (Algorithms 4 and 5).

Two repairs applied after the main loop of Algorithm 1:

* :func:`select_greedy` (Algorithm 4) -- when fewer than ``k`` facilities
  already cover all customers, spend the remaining budget near the
  worst-served customers: repeatedly find the customer whose distance to
  the current selection is largest and open the candidate facility nearest
  to it.  Coverage is retained and the cost objective can only improve.

* :func:`cover_components` (Algorithm 5) -- when the selection leaves some
  customers uncoverable (demands exhausted), rebalance capacity across
  connected components: move budget from the most over-provisioned
  component (dropping its lowest-capacity selected facility) to the most
  deficient one (opening its highest-capacity unselected candidate), until
  every component's selected capacity covers its customers.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.instance import MCFSInstance
from repro.errors import InfeasibleInstanceError
from repro.network.dijkstra import multi_source_lengths, nearest_of


def select_greedy(
    instance: MCFSInstance, selected: Sequence[int]
) -> list[int]:
    """Pad ``selected`` with facilities near under-served customers (Alg. 4).

    Returns a new list of facility indices of size ``min(k, l)``.  Each
    round computes every customer's distance to the nearest selected
    facility (one multi-source Dijkstra), picks the worst-served customer
    ``s*`` (unreachable customers, i.e. components with no selected
    facility yet, count as infinitely far), and opens the unselected
    candidate nearest to ``s*``.
    """
    result = list(selected)
    chosen = set(result)
    node_of = instance.facility_nodes
    customers = instance.customers

    while len(result) < min(instance.k, instance.l):
        selected_nodes = [node_of[j] for j in result]
        dist = multi_source_lengths(instance.network, selected_nodes).dist
        # Customer distances to the nearest selected facility; inf floats
        # to the top, prioritizing components with no facility yet.
        worst_i = max(range(len(customers)), key=lambda i: dist[customers[i]])
        s_star = customers[worst_i]

        open_candidates = [
            node_of[j] for j in range(instance.l) if j not in chosen
        ]
        found = nearest_of(instance.network, s_star, open_candidates)
        if found is None:
            # The worst customer's component has no unselected candidate;
            # fall back to any unselected candidate (budget still helps
            # other components).
            fallback = next(j for j in range(instance.l) if j not in chosen)
            result.append(fallback)
            chosen.add(fallback)
            continue
        node, _ = found
        j_new = instance.facility_index_of_node()[node]
        result.append(j_new)
        chosen.add(j_new)
    return result


def cover_components(
    instance: MCFSInstance, selected: Sequence[int]
) -> list[int]:
    """Rebalance a selection so every component can cover its customers.

    Implements Algorithm 5.  ``g.p`` of a component is the total capacity
    of selected facilities inside it minus its customer count; while some
    component is negative, swap the lowest-capacity selected facility out
    of the highest-``g.p`` component for the highest-capacity unselected
    candidate of the lowest-``g.p`` component.

    Raises
    ------
    InfeasibleInstanceError
        When the instance cannot be repaired (per-component capacity or
        budget is fundamentally insufficient, cf. Theorem 3).
    """
    structure = instance.component_structure()
    if structure.minimum_budget(instance.capacities) > instance.k:
        raise InfeasibleInstanceError(
            "budget k cannot supply every component with enough capacity"
        )

    caps = instance.capacities
    labels = structure.labels
    n_comp = structure.n_components
    selected_set = set(int(j) for j in selected)

    comp_of_fac = [int(labels[node]) for node in instance.facility_nodes]
    customers_count = np.zeros(n_comp, dtype=np.int64)
    for node in instance.customers:
        customers_count[labels[node]] += 1

    surplus = -customers_count.astype(np.float64)
    for j in selected_set:
        surplus[comp_of_fac[j]] += caps[j]

    guard = 4 * instance.k * max(1, n_comp) + 16
    while surplus.min() < 0:
        guard -= 1
        if guard < 0:
            raise InfeasibleInstanceError(
                "cover_components failed to converge; instance is likely "
                "infeasible despite passing the budget pre-check"
            )
        g_m = int(np.argmin(surplus))
        # Highest-capacity unselected candidate in the deficient component.
        incoming = [
            j
            for j in structure.facilities_in[g_m]
            if j not in selected_set
        ]
        if not incoming:
            raise InfeasibleInstanceError(
                f"component {g_m} lacks capacity: all its candidates are "
                f"already selected yet customers remain uncovered"
            )
        j_in = max(incoming, key=lambda j: caps[j])

        # Unspent budget: open the candidate outright.  Swapping cannot
        # repair an under-sized selection (a size-preserving swap inside
        # one deficient component just trades capacities back and forth
        # until the guard trips), and callers may legitimately arrive
        # here with fewer than k facilities (e.g. Hilbert's bucketing
        # emits one facility per non-empty bucket).
        if len(selected_set) < min(instance.k, instance.l):
            selected_set.add(j_in)
            surplus[comp_of_fac[j_in]] += caps[j_in]
            continue

        # Lowest-capacity selected facility in the highest-surplus
        # component (skipping the receiving component when possible, so
        # the swap is a genuine transfer).
        donor_order = np.argsort(-surplus)
        j_out = None
        for g_M in donor_order:
            g_M = int(g_M)
            outgoing = [
                j
                for j in structure.facilities_in[g_M]
                if j in selected_set and not (g_M == g_m and j == j_in)
            ]
            if outgoing:
                j_out = min(outgoing, key=lambda j: caps[j])
                break
        if j_out is None:
            raise InfeasibleInstanceError(
                "no selected facility available to swap out"
            )

        selected_set.remove(j_out)
        selected_set.add(j_in)
        surplus[comp_of_fac[j_out]] -= caps[j_out]
        surplus[comp_of_fac[j_in]] += caps[j_in]

    return sorted(selected_set)
