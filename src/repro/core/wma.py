"""The Wide Matching Algorithm (Algorithm 1 of the paper).

WMA progressively enriches candidate facilities with potential serviced
customers until a set of ``k`` facilities can service the full customer
set within capacities:

1. every customer with unmet demand is matched to one more facility by
   the SSPA matcher (:func:`repro.flow.sspa.find_pair`), rewiring earlier
   assignments when beneficial;
2. the greedy set-cover check (:func:`repro.core.set_cover.check_cover`)
   asks whether the best ``k`` facilities cover everyone;
3. uncovered customers raise their demand (exploration vector) and the
   loop repeats.

After the loop, Algorithm 4 pads under-full selections, Algorithm 5
repairs per-component capacity, and a final SSPA pass computes the
*optimal* assignment of all customers onto the selected set (the paper's
recursive call with ``F_p = F``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.demand import DemandPolicy, SelectiveDemandPolicy
from repro.core.instance import MCFSInstance
from repro.core.provisions import cover_components, select_greedy
from repro.core.set_cover import check_cover
from repro.core.solution import MCFSSolution
from repro.core.validation import check_feasibility
from repro.errors import BudgetExceeded, MatchingError
from repro.flow.bipartite import BipartiteState
from repro.flow.sspa import ThresholdRule, assign_all, find_pair
from repro.obs import metrics, tracing
from repro.runtime.budget import checkpoint, grace
from repro.runtime.options import solver_api


@dataclass
class WMATrace:
    """Per-iteration diagnostics, the data behind the paper's Figure 12b.

    Attributes
    ----------
    covered:
        Customers covered by the selection at the end of each iteration.
    matching_time:
        Seconds spent in the matching phase per iteration.
    cover_time:
        Seconds spent in the set-cover phase per iteration.
    edges_materialized:
        Cumulative ``G_b`` edges revealed, per iteration.
    """

    covered: list[int] = field(default_factory=list)
    matching_time: list[float] = field(default_factory=list)
    cover_time: list[float] = field(default_factory=list)
    edges_materialized: list[int] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        """Number of main-loop iterations recorded."""
        return len(self.covered)

    def rows(self) -> list[dict[str, float]]:
        """Flat per-iteration rows for reporting."""
        return [
            {
                "iteration": t + 1,
                "covered": self.covered[t],
                "matching_time": round(self.matching_time[t], 6),
                "cover_time": round(self.cover_time[t], 6),
                "edges": self.edges_materialized[t],
            }
            for t in range(self.iterations)
        ]


class WMASolver:
    """Configurable Wide Matching Algorithm solver.

    Parameters
    ----------
    instance:
        The MCFS instance to solve.
    demand_policy:
        Exploration-vector policy (default: the paper's selective policy).
    threshold_rule:
        Pruning bound used by the matcher (Theorem 1 vs. the tau-prime
        bound of U et al., for the Section V ablation).
    tie_breaking:
        Set-cover tie-breaking: ``"lru"`` (paper), ``"index"``
        (ablation), or ``"cost"`` (extension: prefer the facility with
        the cheapest service cluster among gain ties -- markedly more
        stable on fragmented, tie-dense instances).
    """

    def __init__(
        self,
        instance: MCFSInstance,
        *,
        demand_policy: DemandPolicy | None = None,
        threshold_rule: ThresholdRule = ThresholdRule.THEOREM1,
        tie_breaking: str = "lru",
    ) -> None:
        self.instance = instance
        self.demand_policy = demand_policy or SelectiveDemandPolicy()
        self.threshold_rule = threshold_rule
        self.tie_breaking = tie_breaking
        self.trace = WMATrace()

    def solve(self) -> MCFSSolution:
        """Run WMA and return a feasible, audited-shape solution.

        Raises
        ------
        InfeasibleInstanceError
            When no feasible solution exists (Theorem 3 budget check).
        """
        started = time.perf_counter()
        instance = self.instance
        check_feasibility(instance)

        state = BipartiteState(
            instance.network,
            instance.customers,
            instance.facility_nodes,
            instance.capacities,
        )
        m, l, k = instance.m, instance.l, instance.k
        demand = [1] * m
        max_demand = [l] * m
        last_used = [-1] * l

        # Demands grow by >= 1 per non-final iteration, bounded by m * l.
        iteration_guard = m * l + 2

        degraded = False
        try:
            self._main_loop(
                state, demand, max_demand, last_used, iteration_guard
            )
        except BudgetExceeded:
            # Budget ran out mid-exploration: salvage whatever selection
            # the last completed cover pass produced (possibly empty --
            # the provisions below then build a greedy one) and let the
            # repair/assignment finalize run to completion under grace.
            degraded = True
            metrics.active().counter("runtime.degraded_returns").add()
        iteration = self.trace.iterations
        selected = list(self._selected)
        fully_covered = self._fully_covered and not degraded

        if degraded:
            with grace():
                selected, assignment, objective = self._finish(
                    selected, fully_covered, state
                )
        else:
            try:
                selected, assignment, objective = self._finish(
                    selected, fully_covered, state
                )
            except BudgetExceeded:
                # Expired during the finalize itself: redo it under
                # grace -- the result is still a complete assignment,
                # only the exploration depth is what the budget allowed.
                degraded = True
                metrics.active().counter("runtime.degraded_returns").add()
                with grace():
                    selected, assignment, objective = self._finish(
                        selected, False, state
                    )

        runtime = time.perf_counter() - started
        reg = metrics.active()
        reg.counter("wma.solves").add()
        reg.counter("wma.iterations").add(iteration)
        reg.gauge("bipartite.peak_edges").set_max(state.edges_materialized)
        reg.timer("wma.solve").observe(runtime)
        meta = {
            "algorithm": "wma",
            "runtime_sec": runtime,
            "iterations": iteration,
            "edges_materialized": state.edges_materialized,
            "dijkstra_runs": state.dijkstra_runs,
            "threshold_rule": self.threshold_rule.value,
            "demand_policy": getattr(self.demand_policy, "name", "custom"),
            "tie_breaking": self.tie_breaking,
        }
        if degraded:
            meta["degraded"] = True
        return MCFSSolution(
            selected=tuple(selected),
            assignment=tuple(assignment),
            objective=objective,
            meta=meta,
        )

    def _main_loop(
        self,
        state: BipartiteState,
        demand: list[int],
        max_demand: list[int],
        last_used: list[int],
        iteration_guard: int,
    ) -> None:
        """Algorithm 1's exploration loop (lines 2-9).

        Leaves the best selection seen so far in ``self._selected`` /
        ``self._fully_covered`` after every iteration, so a
        :class:`BudgetExceeded` escaping a checkpoint still leaves a
        salvageable state behind.
        """
        instance = self.instance
        m, l, k = instance.m, instance.l, instance.k
        iteration = 0
        self._selected: list[int] = []
        self._fully_covered = False

        while True:
            checkpoint()
            with tracing.span("wma.iteration", k=iteration + 1):
                t0 = time.perf_counter()
                with tracing.span("wma.matching"):
                    for i in range(m):
                        while state.assignment_count(i) < demand[i]:
                            try:
                                find_pair(state, i, self.threshold_rule)  # reprolint: disable=REP112 -- Theorem 1: at most one augmentation per customer; reveals bounded by the WMA analysis
                            except MatchingError:
                                # No facility with free capacity is
                                # reachable: freeze this customer's
                                # demand at what it got.
                                max_demand[i] = state.assignment_count(i)
                                demand[i] = max_demand[i]
                                break
                t1 = time.perf_counter()

                costs = None
                if self.tie_breaking == "cost":
                    costs = [
                        sum(state.edges[i][j] for i in state.assigned[j])
                        for j in range(l)
                    ]
                with tracing.span("wma.cover"):
                    cover = check_cover(  # reprolint: disable=REP112 -- Alg. 2 gate: one O(l) cover check per uniform-phase round
                        state.assigned,
                        m,
                        k,
                        last_used,
                        tie_breaking=self.tie_breaking,
                        costs=costs,
                    )
                t2 = time.perf_counter()
            for j in cover.selected:
                last_used[j] = iteration

            self._selected = cover.selected
            self._fully_covered = cover.fully_covered
            self.trace.covered.append(sum(cover.covered))
            self.trace.matching_time.append(t1 - t0)
            self.trace.cover_time.append(t2 - t1)
            self.trace.edges_materialized.append(state.edges_materialized)

            deltas = self.demand_policy.deltas(demand, cover.covered, max_demand)
            iteration += 1
            if not any(deltas) or iteration >= iteration_guard:
                break
            for i in range(m):
                demand[i] += deltas[i]

    def _finish(
        self,
        selected: list[int],
        fully_covered: bool,
        state: BipartiteState,
    ) -> tuple[list[int], list[int], float]:
        """Provisions + final optimal assignment (Algorithm 1, lines 10-15)."""
        instance = self.instance
        with tracing.span("wma.provisions"):
            if len(selected) < instance.k:
                selected = select_greedy(instance, selected)
            if not fully_covered:
                selected = cover_components(instance, selected)
        with tracing.span("wma.final_assign"):
            assignment, objective = _assign_to_selection(
                instance, selected, state
            )
        return selected, assignment, objective


def _assign_to_selection(
    instance: MCFSInstance,
    selected: list[int],
    state: BipartiteState,
) -> tuple[list[int], float]:
    """Optimally assign all customers to the selected facilities.

    Reuses the main phase's stream pool so network-level Dijkstra work is
    shared with the exploration phase.  Falls back to a component repair
    if the selection turns out unassignable (possible when coverage was
    established through facilities that the set-cover pass then dropped).
    """
    sub_nodes = [instance.facility_nodes[j] for j in selected]
    sub_caps = [instance.capacities[j] for j in selected]
    try:
        result = assign_all(
            instance.network,
            instance.customers,
            sub_nodes,
            sub_caps,
            pool=state.pool,
        )
    except MatchingError:
        selected[:] = cover_components(instance, selected)
        sub_nodes = [instance.facility_nodes[j] for j in selected]
        sub_caps = [instance.capacities[j] for j in selected]
        result = assign_all(
            instance.network,
            instance.customers,
            sub_nodes,
            sub_caps,
            pool=state.pool,
        )
    assignment = [selected[j_sub] for j_sub in result.assignment]
    return assignment, result.cost


@solver_api(
    "wma", extras=("demand_policy", "threshold_rule", "tie_breaking")
)
def solve_wma(instance: MCFSInstance, **kwargs) -> MCFSSolution:
    """Solve an instance with WMA (Direct variant). See :class:`WMASolver`."""
    return WMASolver(instance, **kwargs).solve()


@solver_api(
    "wma-uf", extras=("demand_policy", "threshold_rule", "tie_breaking")
)
def solve_wma_uniform_first(
    instance: MCFSInstance, **kwargs
) -> MCFSSolution:
    """The Uniform-First (UF) WMA variant of Section VII-F.

    First selects facilities as if every candidate had the average
    capacity, then reassigns customers under the true nonuniform
    capacities with one optimal bipartite matching (repairing the
    selection first if the true capacities make it infeasible).

    The uniform proxy starts at the rounded-up mean capacity; if that
    proxy is infeasible (flattening capacities can starve a component
    that relied on one big facility), the capacity is doubled until the
    proxy becomes feasible.  As a last resort the Direct variant's
    selection is used.
    """
    import math

    from repro.errors import InfeasibleInstanceError

    started = time.perf_counter()
    check_feasibility(instance)
    proxy_capacity = max(1, math.ceil(instance.mean_capacity))
    inner = None
    for _ in range(12):
        uniform = instance.with_uniform_capacities(proxy_capacity)
        try:
            inner = WMASolver(uniform, **kwargs).solve()
            break
        except InfeasibleInstanceError:
            proxy_capacity *= 2
    if inner is None:
        inner = WMASolver(instance, **kwargs).solve()

    selected = list(inner.selected)
    try:
        cover_ok = True
        sub_nodes = [instance.facility_nodes[j] for j in selected]
        sub_caps = [instance.capacities[j] for j in selected]
        result = assign_all(
            instance.network, instance.customers, sub_nodes, sub_caps
        )
    except MatchingError:
        cover_ok = False
        selected = cover_components(instance, selected)
        sub_nodes = [instance.facility_nodes[j] for j in selected]
        sub_caps = [instance.capacities[j] for j in selected]
        result = assign_all(
            instance.network, instance.customers, sub_nodes, sub_caps
        )

    assignment = [selected[j_sub] for j_sub in result.assignment]
    runtime = time.perf_counter() - started
    meta = {
        "algorithm": "wma-uf",
        "runtime_sec": runtime,
        "iterations": inner.meta.get("iterations"),
        "selection_repaired": not cover_ok,
    }
    if inner.meta.get("degraded"):
        meta["degraded"] = True
    return MCFSSolution(
        selected=tuple(selected),
        assignment=tuple(assignment),
        objective=result.cost,
        meta=meta,
    )
