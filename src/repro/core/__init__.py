"""Core MCFS problem model and the Wide Matching Algorithm.

The modules in this subpackage map one-to-one onto the paper's Section IV:

* :mod:`repro.core.instance` / :mod:`repro.core.solution` -- problem and
  solution data model (objective (1) subject to (2)-(3)).
* :mod:`repro.core.wma` -- Algorithm 1, the main WMA loop.
* :mod:`repro.core.set_cover` -- Algorithm 3, the lazy greedy set-cover
  check with least-recently-used tie-breaking.
* :mod:`repro.core.provisions` -- Algorithms 4 and 5, the special
  provisions for under-full and under-covered selections.
* :mod:`repro.core.demand` -- the exploration-vector policies of
  Section IV-F.
* :mod:`repro.core.validation` -- feasibility audits and objective
  evaluation used by tests and benchmarks.
"""

from repro.core.demand import DemandPolicy, SelectiveDemandPolicy, UniformDemandPolicy
from repro.core.dynamic import AllocationEvent, DynamicAllocator
from repro.core.instance import MCFSInstance
from repro.core.local_search import RefinementReport, refine_solution, solve_wma_refined
from repro.core.provisions import cover_components, select_greedy
from repro.core.set_cover import CoverResult, check_cover
from repro.core.solution import MCFSSolution
from repro.core.throughput import (
    ThroughputResult,
    assign_with_throughput,
    congestion_profile,
)
from repro.core.validation import (
    check_feasibility,
    evaluate_objective,
    validate_solution,
)
from repro.core.wma import WMASolver, WMATrace, solve_wma, solve_wma_uniform_first

__all__ = [
    "MCFSInstance",
    "MCFSSolution",
    "WMASolver",
    "WMATrace",
    "solve_wma",
    "solve_wma_uniform_first",
    "evaluate_objective",
    "validate_solution",
    "check_feasibility",
    "DemandPolicy",
    "SelectiveDemandPolicy",
    "UniformDemandPolicy",
    "CoverResult",
    "check_cover",
    "cover_components",
    "select_greedy",
    "DynamicAllocator",
    "AllocationEvent",
    "RefinementReport",
    "refine_solution",
    "solve_wma_refined",
    "ThroughputResult",
    "assign_with_throughput",
    "congestion_profile",
]
