"""The greedy set-cover routine of WMA (Algorithm 3, ``CheckCover``).

After each matching round, WMA asks: do the top-``k`` candidate
facilities, ranked by *marginal gain* (how many still-uncovered customers
each would cover through its current ``sigma_j`` assignments), cover every
customer?  The routine runs the classic lazy-greedy set-cover heuristic:
facilities sit in a max-heap keyed by a possibly stale gain; a popped
facility whose gain changed is re-inserted with the fresh value, otherwise
it is selected.

Ties between equal marginal gains are broken in favour of the facility
selected *least recently* in earlier iterations (Section IV-F) -- the
diversification that keeps WMA out of local minima.  Two alternative
tie-breakings are available for the ablation study and as practical
extensions:

* ``"index"`` -- deterministic arbitrary order (no diversification);
* ``"cost"`` -- prefer the facility whose matched customers are closest
  (smallest total sigma-edge distance).  Not in the paper; it markedly
  reduces WMA's variance on tie-dense instances (small marginal gains,
  fragmented networks) where pure LRU rotation picks distance-blindly.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence
from dataclasses import dataclass

from repro.obs import metrics


@dataclass
class CoverResult:
    """Outcome of one ``CheckCover`` call.

    Attributes
    ----------
    selected:
        Chosen facility indices, at most ``k``, in selection order.
    covered:
        Per-customer flag: covered by some selected facility's
        ``sigma_j``.
    fully_covered:
        True iff every customer is covered (WMA's termination signal).
    """

    selected: list[int]
    covered: list[bool]
    fully_covered: bool


def check_cover(
    sigma: Sequence[set[int]],
    n_customers: int,
    k: int,
    last_used: Sequence[int],
    *,
    tie_breaking: str = "lru",
    costs: Sequence[float] | None = None,
) -> CoverResult:
    """Greedily select up to ``k`` facilities maximizing customer coverage.

    Parameters
    ----------
    sigma:
        Per-facility set of customers currently assigned to it in ``G_b``
        (the ``sigma_j`` sets of the paper).
    n_customers:
        Total number of customers ``m``.
    k:
        Selection budget.
    last_used:
        Per-facility iteration index at which it was last selected
        (``-1`` if never).  Smaller means "least recently used" and wins
        ties under ``tie_breaking="lru"``.
    tie_breaking:
        ``"lru"`` (paper), ``"index"`` (ablation: deterministic
        arbitrary order), or ``"cost"`` (extension: cheapest service
        cluster wins ties; requires ``costs``).
    costs:
        Per-facility total distance of its ``sigma_j`` edges; required
        for (and only used by) ``tie_breaking="cost"``.

    Notes
    -----
    Selection stops early when the best remaining marginal gain is zero:
    such facilities cannot improve coverage, and Algorithm 4 later pads
    the selection with facilities chosen to *reduce cost* instead, which
    dominates padding with useless cover picks.
    """
    if tie_breaking not in ("lru", "index", "cost"):
        raise ValueError(f"unknown tie_breaking {tie_breaking!r}")
    if tie_breaking == "cost" and costs is None:
        raise ValueError("tie_breaking='cost' requires the costs argument")

    covered = [False] * n_customers
    selected: list[int] = []
    n_facilities = len(sigma)

    def tie_key(j: int) -> float:
        if tie_breaking == "lru":
            return last_used[j]
        if tie_breaking == "cost":
            return float(costs[j])
        return 0.0

    heap: list[tuple[int, float, int]] = []
    for j in range(n_facilities):
        gain = len(sigma[j])
        if gain > 0:
            heap.append((-gain, tie_key(j), j))
    heapq.heapify(heap)
    heap_pops = 0

    n_covered = 0
    while heap and len(selected) < k:
        neg_gain, tie, j = heapq.heappop(heap)
        heap_pops += 1
        members = sigma[j]
        fresh_gain = len(members)
        for i in members:
            if covered[i]:
                fresh_gain -= 1
        if fresh_gain == 0:
            # Neither this nor anything below it in the heap can help if
            # the stale key was already the maximum and fresh is zero --
            # but stale keys may over-estimate, so only skip this entry.
            continue
        if fresh_gain != -neg_gain:
            heapq.heappush(heap, (-fresh_gain, tie, j))
            continue
        selected.append(j)
        for i in members:
            if not covered[i]:
                covered[i] = True
                n_covered += 1
        if n_covered == n_customers:
            break

    reg = metrics.active()
    reg.counter("set_cover.checks").add()
    reg.counter("set_cover.heap_pops").add(heap_pops)
    reg.counter("set_cover.selections").add(len(selected))
    return CoverResult(
        selected=selected,
        covered=covered,
        fully_covered=all(covered),
    )
