"""Local-search refinement of MCFS solutions (extension).

The paper's related work surveys local-search heuristics for facility
location [2], [8] but notes they "accommodate neither nonuniform nor hard
capacity constraints"; its future-work-flavoured positioning invites a
capacity-aware refinement stage.  This module provides one, usable as a
post-processing step after any solver:

* **medoid moves** (Lloyd-style): replace a selected facility by the
  candidate that minimizes the summed distance to the customers the
  facility currently serves, provided the candidate's capacity suffices;
* **swap moves**: close one selected facility and open the unselected
  candidate nearest to its service cluster.

Every accepted move is validated by re-running the *optimal* bipartite
assignment on the modified selection, so refined solutions are always
feasible and their objectives exact.  The search uses first-improvement
and stops after a full round without progress -- a monotone descent, so
termination is guaranteed.

This is an *extension*, not part of the paper's WMA; the ablation
benchmark ``benchmarks/test_ablation_local_search.py`` quantifies how
much headroom it finds over raw WMA and the baselines.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.instance import MCFSInstance
from repro.core.solution import MCFSSolution
from repro.errors import BudgetExceeded, MatchingError
from repro.flow.sspa import assign_all
from repro.network.dijkstra import shortest_path_lengths
from repro.network.incremental import StreamPool
from repro.obs import metrics
from repro.runtime.options import solver_api


@dataclass
class RefinementReport:
    """Summary of one :func:`refine_solution` run."""

    rounds: int
    moves_accepted: int
    initial_objective: float
    final_objective: float

    @property
    def improvement(self) -> float:
        """Relative objective reduction achieved."""
        if self.initial_objective <= 0:
            return 0.0
        return 1.0 - self.final_objective / self.initial_objective


def _cluster_cost_sums(
    instance: MCFSInstance, members: Sequence[int]
) -> np.ndarray:
    """Summed distance from each candidate facility to the given customers.

    One Dijkstra per member customer; entries are ``inf`` when any member
    cannot reach the candidate.
    """
    fac_nodes = np.asarray(instance.facility_nodes)
    sums = np.zeros(instance.l)
    for i in members:
        dist = shortest_path_lengths(
            instance.network, instance.customers[i]
        ).dist
        sums += dist[fac_nodes]
    return sums


def _reassign(
    instance: MCFSInstance,
    selection: list[int],
    pool: StreamPool | None,
) -> tuple[list[int], float] | None:
    """Optimal assignment onto ``selection``; None when infeasible."""
    sub_nodes = [instance.facility_nodes[j] for j in selection]
    sub_caps = [instance.capacities[j] for j in selection]
    try:
        result = assign_all(
            instance.network, instance.customers, sub_nodes, sub_caps
        )
    except MatchingError:
        return None
    return [selection[j] for j in result.assignment], result.cost


def refine_solution(
    instance: MCFSInstance,
    solution: MCFSSolution,
    *,
    max_rounds: int = 5,
    seed: int = 0,
) -> tuple[MCFSSolution, RefinementReport]:
    """Improve a feasible solution by medoid and swap moves.

    Parameters
    ----------
    instance:
        The problem instance.
    solution:
        A feasible starting solution (from any solver).
    max_rounds:
        Upper bound on improvement rounds; each round scans every
        selected facility once.
    seed:
        Order in which facilities are scanned (first-improvement makes
        the outcome order-dependent).

    Returns
    -------
    (refined_solution, report):
        The refined solution (same object shape, new objective) and a
        :class:`RefinementReport`.  The refined objective is never worse
        than the input's.
    """
    started = time.perf_counter()
    rng = np.random.default_rng(seed)
    selection = list(solution.selected)
    assignment = list(solution.assignment)
    objective = solution.objective
    accepted = 0
    rounds = 0

    for _ in range(max_rounds):
        rounds += 1
        improved = False
        scan_order = rng.permutation(len(selection))
        for pos in scan_order:
            j_old = selection[pos]
            members = [
                i for i, j in enumerate(assignment) if j == j_old
            ]
            if not members:
                continue
            sums = _cluster_cost_sums(instance, members)
            # Rank candidates by service cost for this cluster; try the
            # best few replacements with sufficient capacity.
            order = np.argsort(sums)
            tried = 0
            for j_new in order:
                j_new = int(j_new)
                if j_new == j_old:
                    break  # current facility is already the medoid
                if j_new in selection:
                    continue
                if not np.isfinite(sums[j_new]):
                    break
                if instance.capacities[j_new] < len(members):
                    continue
                tried += 1
                if tried > 3:
                    break
                candidate_selection = list(selection)
                candidate_selection[pos] = j_new
                outcome = _reassign(instance, candidate_selection, None)
                if outcome is None:
                    continue
                new_assignment, new_objective = outcome
                if new_objective < objective - 1e-9:
                    selection = candidate_selection
                    assignment = new_assignment
                    objective = new_objective
                    accepted += 1
                    improved = True
                    break
        if not improved:
            break

    refined = MCFSSolution(
        selected=tuple(selection),
        assignment=tuple(assignment),
        objective=objective,
        meta={
            **solution.meta,
            "algorithm": f"{solution.algorithm}+ls",
            "runtime_sec": solution.runtime_sec
            + (time.perf_counter() - started),
            "ls_moves": accepted,
            "ls_rounds": rounds,
        },
    )
    report = RefinementReport(
        rounds=rounds,
        moves_accepted=accepted,
        initial_objective=solution.objective,
        final_objective=objective,
    )
    return refined, report


@solver_api(
    "wma-ls",
    uses=("seed",),
    extras=("max_rounds", "demand_policy", "threshold_rule", "tie_breaking"),
)
def solve_wma_refined(
    instance: MCFSInstance, *, max_rounds: int = 5, seed: int = 0, **wma_kwargs
) -> MCFSSolution:
    """Convenience: WMA followed by local-search refinement.

    Under a cooperative budget the refinement rounds are best-effort: a
    budget expiry during refinement returns the (feasible) WMA base
    solution, marked degraded.
    """
    from repro.core.wma import WMASolver

    base = WMASolver(instance, **wma_kwargs).solve()
    try:
        refined, _ = refine_solution(
            instance, base, max_rounds=max_rounds, seed=seed
        )
    except BudgetExceeded:
        metrics.active().counter("runtime.degraded_returns").add()
        base.meta["degraded"] = True
        return base
    return refined
