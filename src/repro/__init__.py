"""repro: Multicapacity Facility Selection in Networks (ICDE 2019).

A from-scratch reproduction of Logins, Karras & Jensen, *Multicapacity
Facility Selection in Networks*: the Wide Matching Algorithm (WMA), its
bipartite-matching and network substrates, the paper's baselines
(Hilbert, BRNN, WMA Naive), an exact MILP solver, and the data
generators and benchmarks behind every table and figure of the paper's
evaluation.

Quickstart
----------
>>> from repro import solve, MCFSInstance
>>> from repro.datagen import uniform_instance
>>> instance = uniform_instance(256, seed=7)
>>> solution = solve(instance, method="wma")
>>> solution.objective > 0
True

The :func:`solve` dispatcher accepts ``method`` in ``{"wma", "wma-uf",
"wma-naive", "hilbert", "brnn", "random", "exact"}``.
"""

from __future__ import annotations

from collections.abc import Callable

from repro import runtime
from repro.baselines import (
    solve_brnn,
    solve_exact,
    solve_hilbert,
    solve_kmedian_ls,
    solve_random,
    solve_wma_naive,
)
from repro.core import (
    DynamicAllocator,
    MCFSInstance,
    MCFSSolution,
    WMASolver,
    WMATrace,
    evaluate_objective,
    refine_solution,
    solve_wma,
    solve_wma_refined,
    solve_wma_uniform_first,
    validate_solution,
)
from repro.errors import (
    BudgetExceeded,
    GraphError,
    InfeasibleInstanceError,
    InvalidInstanceError,
    MatchingError,
    ReproError,
    SolverError,
)
from repro.network import Network
from repro.runtime import SolverOptions
from repro.serve import (
    CapacityChange,
    CustomerArrive,
    CustomerDepart,
    EdgeRetime,
    ServeEngine,
    ServeResult,
)

__version__ = "1.0.0"

SOLVERS: dict[str, Callable[..., MCFSSolution]] = {
    "wma": solve_wma,
    "wma-uf": solve_wma_uniform_first,
    "wma-naive": solve_wma_naive,
    "wma-ls": solve_wma_refined,
    "hilbert": solve_hilbert,
    "brnn": solve_brnn,
    "kmedian-ls": solve_kmedian_ls,
    "random": solve_random,
    "exact": solve_exact,
}


def solve(
    instance: MCFSInstance,
    method: str = "wma",
    *,
    options: SolverOptions | dict | None = None,
    deadline: float | None = None,
    fallback: object = None,
    **kwargs,
) -> MCFSSolution:
    """Solve an MCFS instance with the chosen algorithm.

    Parameters
    ----------
    instance:
        The problem instance.
    method:
        One of ``"wma"`` (the paper's algorithm), ``"wma-uf"`` (its
        Uniform-First variant), ``"wma-naive"``, ``"wma-ls"`` (WMA plus
        local-search refinement), ``"hilbert"``, ``"brnn"``,
        ``"random"``, or ``"exact"`` (MILP, small instances only).
    options:
        A :class:`SolverOptions` (or equivalent dict) accepted uniformly
        by every method: ``seed``, ``time_limit``, ``workers``,
        ``distance_cache``, plus solver-specific ``extras``.
    deadline:
        Overall wall-clock budget in seconds.  Implies fallback: when
        the budget expires (or the method fails), the runtime falls
        through the method's default chain (e.g. ``exact -> wma ->
        hilbert``) and still returns a feasible solution;
        ``solution.meta["runtime"]`` records what happened.
    fallback:
        Fallback chain control: ``None``/``"auto"`` use the default
        chain for ``method`` (only engaged when a deadline or time limit
        is set), ``False`` disables fallback, a comma-separated string
        or sequence gives an explicit chain.
    kwargs:
        Forwarded to the specific solver (e.g. ``seed`` for randomized
        baselines, ``time_limit`` for any method).
    """
    if method not in SOLVERS:
        raise ValueError(
            f"unknown method {method!r}; choose from {sorted(SOLVERS)}"
        ) from None
    opts = runtime.normalize_options(method, options, kwargs)
    limit = deadline if deadline is not None else opts.time_limit
    if fallback is not None or limit is not None:
        chain = runtime.chain_for(method, fallback)
        if len(chain) > 1 or limit is not None:
            result = runtime.solve_with_fallback(
                instance, chain, deadline=deadline, options=opts
            )
            return result.solution
    return SOLVERS[method](instance, options=opts)


__all__ = [
    "solve",
    "SOLVERS",
    "SolverOptions",
    "runtime",
    "MCFSInstance",
    "MCFSSolution",
    "Network",
    "WMASolver",
    "WMATrace",
    "solve_wma",
    "solve_wma_uniform_first",
    "solve_wma_naive",
    "solve_wma_refined",
    "refine_solution",
    "DynamicAllocator",
    "ServeEngine",
    "ServeResult",
    "CustomerArrive",
    "CustomerDepart",
    "CapacityChange",
    "EdgeRetime",
    "solve_hilbert",
    "solve_brnn",
    "solve_kmedian_ls",
    "solve_random",
    "solve_exact",
    "evaluate_objective",
    "validate_solution",
    "ReproError",
    "GraphError",
    "InvalidInstanceError",
    "InfeasibleInstanceError",
    "MatchingError",
    "SolverError",
    "BudgetExceeded",
    "__version__",
]
