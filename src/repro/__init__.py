"""repro: Multicapacity Facility Selection in Networks (ICDE 2019).

A from-scratch reproduction of Logins, Karras & Jensen, *Multicapacity
Facility Selection in Networks*: the Wide Matching Algorithm (WMA), its
bipartite-matching and network substrates, the paper's baselines
(Hilbert, BRNN, WMA Naive), an exact MILP solver, and the data
generators and benchmarks behind every table and figure of the paper's
evaluation.

Quickstart
----------
>>> from repro import solve, MCFSInstance
>>> from repro.datagen import uniform_instance
>>> instance = uniform_instance(256, seed=7)
>>> solution = solve(instance, method="wma")
>>> solution.objective > 0
True

The :func:`solve` dispatcher accepts ``method`` in ``{"wma", "wma-uf",
"wma-naive", "hilbert", "brnn", "random", "exact"}``.
"""

from __future__ import annotations

from typing import Callable

from repro.baselines import (
    solve_brnn,
    solve_exact,
    solve_hilbert,
    solve_kmedian_ls,
    solve_random,
    solve_wma_naive,
)
from repro.core import (
    DynamicAllocator,
    MCFSInstance,
    MCFSSolution,
    WMASolver,
    WMATrace,
    evaluate_objective,
    refine_solution,
    solve_wma,
    solve_wma_refined,
    solve_wma_uniform_first,
    validate_solution,
)
from repro.errors import (
    GraphError,
    InfeasibleInstanceError,
    InvalidInstanceError,
    MatchingError,
    ReproError,
    SolverError,
)
from repro.network import Network

__version__ = "1.0.0"

SOLVERS: dict[str, Callable[..., MCFSSolution]] = {
    "wma": solve_wma,
    "wma-uf": solve_wma_uniform_first,
    "wma-naive": solve_wma_naive,
    "wma-ls": solve_wma_refined,
    "hilbert": solve_hilbert,
    "brnn": solve_brnn,
    "kmedian-ls": solve_kmedian_ls,
    "random": solve_random,
    "exact": solve_exact,
}


def solve(
    instance: MCFSInstance, method: str = "wma", **kwargs
) -> MCFSSolution:
    """Solve an MCFS instance with the chosen algorithm.

    Parameters
    ----------
    instance:
        The problem instance.
    method:
        One of ``"wma"`` (the paper's algorithm), ``"wma-uf"`` (its
        Uniform-First variant), ``"wma-naive"``, ``"wma-ls"`` (WMA plus
        local-search refinement), ``"hilbert"``, ``"brnn"``,
        ``"random"``, or ``"exact"`` (MILP, small instances only).
    kwargs:
        Forwarded to the specific solver (e.g. ``seed`` for randomized
        baselines, ``time_limit`` for the exact solver).
    """
    try:
        solver = SOLVERS[method]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; choose from {sorted(SOLVERS)}"
        ) from None
    return solver(instance, **kwargs)


__all__ = [
    "solve",
    "SOLVERS",
    "MCFSInstance",
    "MCFSSolution",
    "Network",
    "WMASolver",
    "WMATrace",
    "solve_wma",
    "solve_wma_uniform_first",
    "solve_wma_naive",
    "solve_wma_refined",
    "refine_solution",
    "DynamicAllocator",
    "solve_hilbert",
    "solve_brnn",
    "solve_kmedian_ls",
    "solve_random",
    "solve_exact",
    "evaluate_objective",
    "validate_solution",
    "ReproError",
    "GraphError",
    "InvalidInstanceError",
    "InfeasibleInstanceError",
    "MatchingError",
    "SolverError",
    "__version__",
]
