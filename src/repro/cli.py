"""Command-line interface for the MCFS reproduction library.

Subcommands::

    python -m repro generate --kind uniform --n 512 -o instance.npz
    python -m repro solve instance.npz --method wma -o solution.json
    python -m repro stats instance.npz
    python -m repro compare instance.npz --methods wma,hilbert,exact
    python -m repro bench --experiment fig6a

``generate`` builds a synthetic instance file, ``solve`` runs one solver
and writes the solution, ``stats`` prints network/instance statistics,
``compare`` prints a side-by-side solver table, and ``bench`` regenerates
a paper experiment by id.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro import SOLVERS, solve, validate_solution
from repro.analysis import compare_solutions
from repro.bench.reporting import format_series, format_table
from repro.io.serialization import (
    load_instance,
    save_instance,
    save_solution,
)

# (load_solution is imported lazily inside the handlers that need it.)

EXPERIMENTS = (
    "fig6a", "fig6b", "fig6c", "fig6d",
    "fig7a", "fig7b", "fig7c", "fig7d",
    "fig8a", "fig8b", "fig8c", "fig8d",
    "fig9a", "fig9b", "fig10", "fig12a", "fig13a", "fig13b",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multicapacity Facility Selection in Networks (ICDE 2019)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic instance")
    gen.add_argument("--kind", choices=("uniform", "clustered"), default="uniform")
    gen.add_argument("--n", type=int, default=512, help="network size in nodes")
    gen.add_argument("--alpha", type=float, default=2.0, help="density parameter")
    gen.add_argument("--clusters", type=int, default=20)
    gen.add_argument("--customer-frac", type=float, default=0.1)
    gen.add_argument("--capacity", type=int, default=20)
    gen.add_argument("--k-frac", type=float, default=0.1, help="k as fraction of m")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("-o", "--output", required=True, help="instance .npz path")

    slv = sub.add_parser("solve", help="solve an instance file")
    slv.add_argument("instance", help="instance .npz path")
    slv.add_argument(
        "--method", choices=sorted(SOLVERS), default="wma"
    )
    slv.add_argument("--seed", type=int, default=None)
    slv.add_argument(
        "--time-limit", type=float, default=None,
        help="seconds (exact method only)",
    )
    slv.add_argument("-o", "--output", default=None, help="solution .json path")

    sta = sub.add_parser("stats", help="print instance statistics")
    sta.add_argument("instance", help="instance .npz path")

    cmp_ = sub.add_parser("compare", help="run several solvers side by side")
    cmp_.add_argument("instance", help="instance .npz path")
    cmp_.add_argument(
        "--methods", default="wma,hilbert,wma-naive",
        help="comma-separated solver names",
    )

    ben = sub.add_parser("bench", help="regenerate a paper experiment")
    ben.add_argument("--experiment", choices=EXPERIMENTS, required=True)
    ben.add_argument(
        "--methods", default="wma,hilbert,wma-naive",
        help="comma-separated solver names",
    )

    ref = sub.add_parser(
        "refine", help="local-search refine a saved solution"
    )
    ref.add_argument("instance", help="instance .npz path")
    ref.add_argument("solution", help="solution .json path")
    ref.add_argument("--rounds", type=int, default=5)
    ref.add_argument("-o", "--output", default=None, help="refined .json path")

    exp = sub.add_parser(
        "export", help="export a scenario (and solution) as GeoJSON layers"
    )
    exp.add_argument("instance", help="instance .npz path")
    exp.add_argument("--solution", default=None, help="solution .json path")
    exp.add_argument("-o", "--output", required=True, help="output JSON path")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.datagen.instances import clustered_instance, uniform_instance

    if args.kind == "uniform":
        instance = uniform_instance(
            args.n,
            alpha=args.alpha,
            customer_frac=args.customer_frac,
            capacity=args.capacity,
            k_frac_of_m=args.k_frac,
            seed=args.seed,
        )
    else:
        instance = clustered_instance(
            args.n,
            n_clusters=args.clusters,
            alpha=args.alpha,
            customer_frac=args.customer_frac,
            capacity=args.capacity,
            k_frac_of_m=args.k_frac,
            seed=args.seed,
        )
    save_instance(instance, args.output)
    print(f"wrote {args.output}: {instance.describe()}")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    kwargs = {}
    if args.seed is not None and args.method in ("wma-naive", "random", "wma-ls"):
        kwargs["seed"] = args.seed
    if args.time_limit is not None and args.method == "exact":
        kwargs["time_limit"] = args.time_limit
    solution = solve(instance, method=args.method, **kwargs)
    validate_solution(instance, solution)
    print(format_table([solution.summary_row()], title=instance.name))
    if args.output:
        save_solution(solution, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    print(format_table([instance.describe()], title="instance"))
    print()
    print(format_table([instance.network.stats().as_row()], title="network"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    unknown = [m for m in methods if m not in SOLVERS]
    if unknown:
        print(f"unknown methods: {', '.join(unknown)}", file=sys.stderr)
        return 2
    solutions = []
    for method in methods:
        solution = solve(instance, method=method)
        validate_solution(instance, solution)
        solutions.append(solution)
    print(
        format_table(
            compare_solutions(instance, solutions),
            title=f"{instance.name} (m={instance.m}, l={instance.l}, k={instance.k})",
        )
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import experiments as ex
    from repro.bench.harness import run_solvers

    factories = {
        "fig6a": (ex.fig6a_cases, "n"),
        "fig6b": (ex.fig6b_cases, "n"),
        "fig6c": (ex.fig6c_cases, "n"),
        "fig6d": (ex.fig6d_cases, "n"),
        "fig7a": (ex.fig7a_cases, "n"),
        "fig7b": (ex.fig7b_cases, "n"),
        "fig7c": (ex.fig7c_cases, "n"),
        "fig7d": (ex.fig7d_cases, "n"),
        "fig8a": (ex.fig8a_cases, "l_frac"),
        "fig8b": (ex.fig8b_cases, "m"),
        "fig8c": (ex.fig8c_cases, "m"),
        "fig8d": (ex.fig8d_cases, "k"),
        "fig9a": (ex.fig9a_cases, "avg_degree"),
        "fig9b": (ex.fig9b_cases, "c"),
        "fig10": (ex.fig10_cases, "m"),
        "fig12a": (ex.fig12a_cases, "k"),
        "fig13a": (ex.fig13a_cases, "k"),
        "fig13b": (ex.fig13b_cases, "k"),
    }
    factory, x_key = factories[args.experiment]
    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    rows = []
    for params, instance in factory():
        case_methods = list(methods)
        if "exact" in case_methods and not ex.include_exact(instance):
            case_methods.remove("exact")
        rows += run_solvers(instance, case_methods, params=params)
    print(format_series(rows, x_key=x_key, value="objective",
                        title=f"{args.experiment} -- objective"))
    print()
    print(format_series(rows, x_key=x_key, value="runtime_sec",
                        title=f"{args.experiment} -- runtime [s]"))
    return 0


def _cmd_refine(args: argparse.Namespace) -> int:
    from repro.core.local_search import refine_solution
    from repro.io.serialization import load_solution

    instance = load_instance(args.instance)
    solution = load_solution(args.solution)
    validate_solution(instance, solution)
    refined, report = refine_solution(
        instance, solution, max_rounds=args.rounds
    )
    validate_solution(instance, refined)
    print(
        format_table(
            [
                {
                    "stage": "input",
                    "objective": round(solution.objective, 2),
                },
                {
                    "stage": "refined",
                    "objective": round(refined.objective, 2),
                    "moves": report.moves_accepted,
                    "improvement": f"{report.improvement:.2%}",
                },
            ],
            title=instance.name,
        )
    )
    if args.output:
        save_solution(refined, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.io.geojson import export_scenario
    from repro.io.serialization import load_solution

    instance = load_instance(args.instance)
    solution = None
    if args.solution:
        solution = load_solution(args.solution)
        validate_solution(instance, solution)
    export_scenario(instance, solution, args.output)
    layers = "network, instance" + (", solution" if solution else "")
    print(f"wrote {args.output} ({layers})")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "solve": _cmd_solve,
        "stats": _cmd_stats,
        "compare": _cmd_compare,
        "bench": _cmd_bench,
        "refine": _cmd_refine,
        "export": _cmd_export,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
