"""Command-line interface for the MCFS reproduction library.

Subcommands::

    python -m repro generate --kind uniform --n 512 -o instance.npz
    python -m repro solve instance.npz --method wma -o solution.json
    python -m repro stats instance.npz
    python -m repro compare instance.npz --methods wma,hilbert,exact
    python -m repro bench --experiment fig6a
    python -m repro profile --kind uniform --n 256 --seed 0 -o report.json
    python -m repro oracle build --kind uniform --n 256 --seed 0
    python -m repro serve instance.npz --trace trace.jsonl --batch 64
    python -m repro lint --format json

``generate`` builds a synthetic instance file, ``solve`` runs one solver
and writes the solution, ``stats`` prints network/instance statistics,
``compare`` prints a side-by-side solver table, ``bench`` regenerates
a paper experiment by id, ``profile`` runs one solver under the
observability layer (:mod:`repro.obs`), emits a structured metrics/span
report, and can gate counters against a committed baseline (the CI
benchmark-smoke job), ``oracle`` builds or inspects a precomputed
distance oracle -- ``--kind alt`` for ALT landmarks
(:mod:`repro.network.oracle`) or ``--kind ch`` for the
contraction-hierarchy tier (:mod:`repro.network.ch`); blobs are keyed
by network fingerprint so CI can cache them across runs -- ``serve``
replays (or synthesizes) a mutation trace through the online serving
engine (:mod:`repro.serve`), reporting throughput, staleness, and the
``serve.*`` counters, optionally gated against a committed baseline --
and ``lint`` runs reprolint, the repo-specific
static-analysis pass (:mod:`repro.analysis`; rule catalogue in
``docs/dev.md``).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro import SOLVERS, solve, validate_solution
from repro.bench.solution_stats import compare_solutions
from repro.bench.reporting import format_series, format_table
from repro.io.serialization import load_instance, save_instance, save_solution

# (load_solution is imported lazily inside the handlers that need it.)

EXPERIMENTS = (
    "fig6a", "fig6b", "fig6c", "fig6d",
    "fig7a", "fig7b", "fig7c", "fig7d",
    "fig8a", "fig8b", "fig8c", "fig8d",
    "fig9a", "fig9b", "fig10", "fig12a", "fig13a", "fig13b",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multicapacity Facility Selection in Networks (ICDE 2019)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic instance")
    gen.add_argument("--kind", choices=("uniform", "clustered"), default="uniform")
    gen.add_argument("--n", type=int, default=512, help="network size in nodes")
    gen.add_argument("--alpha", type=float, default=2.0, help="density parameter")
    gen.add_argument("--clusters", type=int, default=20)
    gen.add_argument("--customer-frac", type=float, default=0.1)
    gen.add_argument("--capacity", type=int, default=20)
    gen.add_argument("--k-frac", type=float, default=0.1, help="k as fraction of m")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("-o", "--output", required=True, help="instance .npz path")

    slv = sub.add_parser("solve", help="solve an instance file")
    slv.add_argument("instance", help="instance .npz path")
    slv.add_argument(
        "--method", choices=sorted(SOLVERS), default="wma"
    )
    slv.add_argument("--seed", type=int, default=None)
    slv.add_argument(
        "--time-limit", type=float, default=None,
        help="wall-clock budget in seconds, enforced cooperatively for "
        "every method (the exact method additionally passes it to HiGHS)",
    )
    slv.add_argument(
        "--deadline", type=float, default=None,
        help="overall wall-clock deadline in seconds; on expiry the "
        "runtime degrades through the method's fallback chain and still "
        "returns a feasible solution",
    )
    slv.add_argument(
        "--fallback", default=None,
        help="fallback chain: 'auto' (default chain for the method), "
        "'none' to disable, or an explicit comma-separated list, e.g. "
        "'wma,hilbert'",
    )
    slv.add_argument("-o", "--output", default=None, help="solution .json path")

    sta = sub.add_parser("stats", help="print instance statistics")
    sta.add_argument("instance", help="instance .npz path")

    cmp_ = sub.add_parser("compare", help="run several solvers side by side")
    cmp_.add_argument("instance", help="instance .npz path")
    cmp_.add_argument(
        "--methods", default="wma,hilbert,wma-naive",
        help="comma-separated solver names",
    )
    cmp_.add_argument(
        "--deadline", type=float, default=None,
        help="per-method wall-clock deadline in seconds (cooperative; "
        "expired methods degrade through their fallback chain)",
    )
    cmp_.add_argument(
        "--fallback", default=None,
        help="fallback chain: 'auto' (per-method default), 'none' to "
        "disable, or an explicit comma-separated list",
    )

    ben = sub.add_parser("bench", help="regenerate a paper experiment")
    ben.add_argument("--experiment", choices=EXPERIMENTS, required=True)
    ben.add_argument(
        "--methods", default="wma,hilbert,wma-naive",
        help="comma-separated solver names",
    )
    ben.add_argument(
        "--workers", type=int, default=None,
        help="process count for distance fan-out in worker-aware solvers "
        "(default: REPRO_WORKERS env var, else serial); objectives are "
        "identical for any count",
    )

    ref = sub.add_parser(
        "refine", help="local-search refine a saved solution"
    )
    ref.add_argument("instance", help="instance .npz path")
    ref.add_argument("solution", help="solution .json path")
    ref.add_argument("--rounds", type=int, default=5)
    ref.add_argument("-o", "--output", default=None, help="refined .json path")

    exp = sub.add_parser(
        "export", help="export a scenario (and solution) as GeoJSON layers"
    )
    exp.add_argument("instance", help="instance .npz path")
    exp.add_argument("--solution", default=None, help="solution .json path")
    exp.add_argument("-o", "--output", required=True, help="output JSON path")

    prof = sub.add_parser(
        "profile",
        help="run one solver under full observability and emit a JSON report",
    )
    prof.add_argument(
        "instance", nargs="?", default=None,
        help="instance .npz path (omitted: generate a synthetic one)",
    )
    prof.add_argument("--method", choices=sorted(SOLVERS), default="wma")
    prof.add_argument(
        "--kind", choices=("uniform", "clustered"), default="uniform",
        help="synthetic kind when no instance file is given",
    )
    prof.add_argument("--n", type=int, default=256, help="synthetic network size")
    prof.add_argument("--seed", type=int, default=0, help="synthetic seed")
    prof.add_argument(
        "-o", "--output", default=None,
        help="report JSON path (default: stdout)",
    )
    prof.add_argument(
        "--spans-out", default=None,
        help="also export raw spans as JSON-lines to this path",
    )
    prof.add_argument(
        "--baseline", default=None,
        help="baseline JSON (see benchmarks/baselines/); exit 1 when any "
        "baselined counter regresses beyond tolerance",
    )
    prof.add_argument(
        "--tolerance", type=float, default=None,
        help="override the baseline file's tolerance (fraction, e.g. 0.2)",
    )
    prof.add_argument(
        "--workers", type=int, default=None,
        help="process count for distance fan-out in worker-aware solvers "
        "(default: REPRO_WORKERS env var, else serial)",
    )
    prof.add_argument(
        "--oracle", choices=("alt", "ch", "off"), default=None,
        help="distance oracle: 'alt' (landmarks) or 'ch' (contraction "
        "hierarchy) enables that kind, 'off' disables (default: "
        "REPRO_ORACLE env var); oracle.* and ch.* counters appear in "
        "the report either way",
    )

    orc = sub.add_parser(
        "oracle",
        help="build or inspect a precomputed distance oracle (ALT or CH)",
    )
    orc_sub = orc.add_subparsers(dest="oracle_command", required=True)
    for name, help_text in (
        ("build", "build (or refresh) the oracle blob for an instance"),
        ("info", "report the oracle parameters and cache status as JSON"),
    ):
        sp = orc_sub.add_parser(name, help=help_text)
        sp.add_argument(
            "instance", nargs="?", default=None,
            help="instance .npz path (omitted: generate a synthetic one)",
        )
        sp.add_argument(
            "--kind", choices=("alt", "ch"), default="alt",
            help="oracle kind: ALT landmarks or contraction hierarchy",
        )
        sp.add_argument(
            "--instance-kind", choices=("uniform", "clustered"),
            default="uniform",
            help="synthetic instance kind when no instance file is given",
        )
        sp.add_argument(
            "--n", type=int, default=256, help="synthetic network size"
        )
        sp.add_argument(
            "--seed", type=int, default=0, help="synthetic seed"
        )
        sp.add_argument(
            "--landmarks", type=int, default=None,
            help="landmark count (ALT kind only; default 16)",
        )
        sp.add_argument(
            "--oracle-seed", type=int, default=0,
            help="seed for the farthest-point landmark sweep (ALT kind only)",
        )
        sp.add_argument(
            "--cache-dir", default=None,
            help="oracle blob directory (default: REPRO_ORACLE_DIR env "
            "var, else .oracle-cache)",
        )
        if name == "info":
            sp.add_argument(
                "-o", "--output", default=None,
                help="info JSON path (default: stdout)",
            )

    srv = sub.add_parser(
        "serve",
        help="replay a mutation trace through the online serving engine",
    )
    srv.add_argument(
        "instance", nargs="?", default=None,
        help="instance .npz path (omitted: generate a synthetic one)",
    )
    srv.add_argument(
        "--kind", choices=("uniform", "clustered"), default="uniform",
        help="synthetic kind when no instance file is given",
    )
    srv.add_argument("--n", type=int, default=256, help="synthetic network size")
    srv.add_argument("--seed", type=int, default=0, help="synthetic seed")
    srv.add_argument(
        "--method", choices=sorted(SOLVERS), default="wma",
        help="solver for the initial facility selection",
    )
    srv.add_argument(
        "--trace", default=None,
        help="mutation trace (JSON-lines); with --synthesize the "
        "generated trace is written here instead",
    )
    srv.add_argument(
        "--synthesize", type=int, default=None, metavar="N",
        help="generate an N-mutation workload instead of reading --trace",
    )
    srv.add_argument(
        "--trace-seed", type=int, default=0,
        help="seed for --synthesize",
    )
    srv.add_argument(
        "--p-depart", type=float, default=0.3,
        help="departure share of the synthesized mix",
    )
    srv.add_argument(
        "--p-capacity", type=float, default=0.05,
        help="capacity re-rate share of the synthesized mix",
    )
    srv.add_argument(
        "--p-retime", type=float, default=0.0,
        help="edge-retime share of the synthesized mix",
    )
    srv.add_argument(
        "--batch", type=int, default=64,
        help="mutations per engine.apply() batch",
    )
    srv.add_argument(
        "--deadline", type=float, default=None,
        help="per-batch deadline in seconds (sheds work, stays feasible)",
    )
    srv.add_argument(
        "--max-batch", type=int, default=None,
        help="admission bound: mutations beyond this per batch are shed",
    )
    srv.add_argument(
        "--cache", type=int, default=8,
        help="solution-cache capacity for global re-solves (0 disables)",
    )
    srv.add_argument(
        "-o", "--output", default=None,
        help="summary JSON path (default: stdout)",
    )
    srv.add_argument(
        "--baseline", default=None,
        help="baseline JSON (see benchmarks/baselines/); exit 1 when any "
        "baselined counter regresses beyond tolerance",
    )
    srv.add_argument(
        "--tolerance", type=float, default=None,
        help="override the baseline file's tolerance (fraction, e.g. 0.25)",
    )

    lint = sub.add_parser(
        "lint",
        help="run reprolint, the repo-specific static-analysis pass",
    )
    from repro.analysis.lintcli import add_lint_arguments

    add_lint_arguments(lint)
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.datagen.instances import clustered_instance, uniform_instance

    if args.kind == "uniform":
        instance = uniform_instance(
            args.n,
            alpha=args.alpha,
            customer_frac=args.customer_frac,
            capacity=args.capacity,
            k_frac_of_m=args.k_frac,
            seed=args.seed,
        )
    else:
        instance = clustered_instance(
            args.n,
            n_clusters=args.clusters,
            alpha=args.alpha,
            customer_frac=args.customer_frac,
            capacity=args.capacity,
            k_frac_of_m=args.k_frac,
            seed=args.seed,
        )
    save_instance(instance, args.output)
    print(f"wrote {args.output}: {instance.describe()}")
    return 0


def _parse_fallback(raw: str | None):
    """Map the ``--fallback`` flag onto :func:`repro.runtime.chain_for` input."""
    if raw is None:
        return None
    value = raw.strip().lower()
    if value in ("none", "off", "false"):
        return False
    if value == "auto":
        return "auto"
    return raw


def _cmd_solve(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    kwargs = {}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.time_limit is not None:
        kwargs["time_limit"] = args.time_limit
    solution = solve(
        instance,
        method=args.method,
        deadline=args.deadline,
        fallback=_parse_fallback(args.fallback),
        **kwargs,
    )
    validate_solution(instance, solution)
    runtime_meta = solution.meta.get("runtime")
    if runtime_meta and runtime_meta.get("fallbacks"):
        print(
            f"note: {runtime_meta['requested']} fell back to "
            f"{runtime_meta['method_used']} "
            f"({runtime_meta['fallbacks']} failed attempt(s))"
        )
    print(format_table([solution.summary_row()], title=instance.name))
    if args.output:
        save_solution(solution, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    print(format_table([instance.describe()], title="instance"))
    print()
    print(format_table([instance.network.stats().as_row()], title="network"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    unknown = [m for m in methods if m not in SOLVERS]
    if unknown:
        print(f"unknown methods: {', '.join(unknown)}", file=sys.stderr)
        return 2
    solutions = []
    for method in methods:
        solution = solve(
            instance,
            method=method,
            deadline=args.deadline,
            fallback=_parse_fallback(args.fallback),
        )
        validate_solution(instance, solution)
        solutions.append(solution)
    print(
        format_table(
            compare_solutions(instance, solutions),
            title=f"{instance.name} (m={instance.m}, l={instance.l}, k={instance.k})",
        )
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import experiments as ex
    from repro.bench.harness import run_solvers

    factories = {
        "fig6a": (ex.fig6a_cases, "n"),
        "fig6b": (ex.fig6b_cases, "n"),
        "fig6c": (ex.fig6c_cases, "n"),
        "fig6d": (ex.fig6d_cases, "n"),
        "fig7a": (ex.fig7a_cases, "n"),
        "fig7b": (ex.fig7b_cases, "n"),
        "fig7c": (ex.fig7c_cases, "n"),
        "fig7d": (ex.fig7d_cases, "n"),
        "fig8a": (ex.fig8a_cases, "l_frac"),
        "fig8b": (ex.fig8b_cases, "m"),
        "fig8c": (ex.fig8c_cases, "m"),
        "fig8d": (ex.fig8d_cases, "k"),
        "fig9a": (ex.fig9a_cases, "avg_degree"),
        "fig9b": (ex.fig9b_cases, "c"),
        "fig10": (ex.fig10_cases, "m"),
        "fig12a": (ex.fig12a_cases, "k"),
        "fig13a": (ex.fig13a_cases, "k"),
        "fig13b": (ex.fig13b_cases, "k"),
    }
    factory, x_key = factories[args.experiment]
    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    rows = []
    for params, instance in factory():
        case_methods = list(methods)
        if "exact" in case_methods and not ex.include_exact(instance):
            case_methods.remove("exact")
        rows += run_solvers(
            instance, case_methods, params=params, workers=args.workers
        )
    print(format_series(rows, x_key=x_key, value="objective",
                        title=f"{args.experiment} -- objective"))
    print()
    print(format_series(rows, x_key=x_key, value="runtime_sec",
                        title=f"{args.experiment} -- runtime [s]"))
    return 0


def _cmd_refine(args: argparse.Namespace) -> int:
    from repro.core.local_search import refine_solution
    from repro.io.serialization import load_solution

    instance = load_instance(args.instance)
    solution = load_solution(args.solution)
    validate_solution(instance, solution)
    refined, report = refine_solution(
        instance, solution, max_rounds=args.rounds
    )
    validate_solution(instance, refined)
    print(
        format_table(
            [
                {
                    "stage": "input",
                    "objective": round(solution.objective, 2),
                },
                {
                    "stage": "refined",
                    "objective": round(refined.objective, 2),
                    "moves": report.moves_accepted,
                    "improvement": f"{report.improvement:.2%}",
                },
            ],
            title=instance.name,
        )
    )
    if args.output:
        save_solution(refined, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.io.geojson import export_scenario
    from repro.io.serialization import load_solution

    instance = load_instance(args.instance)
    solution = None
    if args.solution:
        solution = load_solution(args.solution)
        validate_solution(instance, solution)
    export_scenario(instance, solution, args.output)
    layers = "network, instance" + (", solution" if solution else "")
    print(f"wrote {args.output} ({layers})")
    return 0


def _load_or_generate(args: argparse.Namespace):
    """The instance named by ``args``, or a synthetic one (profile/oracle)."""
    if args.instance is not None:
        return load_instance(args.instance)
    from repro.datagen.instances import clustered_instance, uniform_instance

    # The oracle subcommands repurpose --kind for the oracle kind and
    # carry the synthetic flavour in --instance-kind; profile has only
    # --kind.
    kind = getattr(args, "instance_kind", None) or args.kind
    factory = uniform_instance if kind == "uniform" else clustered_instance
    return factory(args.n, seed=args.seed)


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from repro.obs import tracing
    from repro.obs.profile import check_against_baseline, profile_solver

    instance = _load_or_generate(args)
    oracle = {"alt": "alt", "ch": "ch", "off": False, None: None}[args.oracle]
    trace = tracing.Trace()
    report = profile_solver(
        instance, args.method, trace=trace, workers=args.workers,
        oracle=oracle,
    )
    payload = report.to_json()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")
        print(f"wrote {args.output}")
    else:
        print(payload)
    if args.spans_out:
        trace.export_jsonl(args.spans_out)
        print(f"wrote {args.spans_out} ({len(trace)} spans)")

    if args.baseline:
        with open(args.baseline, encoding="utf-8") as fh:
            baseline_doc = json.load(fh)
        baseline = baseline_doc.get("metrics", baseline_doc)
        tolerance = args.tolerance
        if tolerance is None:
            tolerance = float(baseline_doc.get("tolerance", 0.2))
        violations = check_against_baseline(
            report.metrics, baseline, tolerance=tolerance
        )
        if violations:
            for line in violations:
                print(f"BASELINE REGRESSION: {line}", file=sys.stderr)
            return 1
        print(
            f"baseline ok: {len(baseline)} counters within "
            f"{tolerance:.0%} of {args.baseline}"
        )
    return 0


def _cmd_oracle(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.network import ch as ch_mod
    from repro.network import oracle as oracle_mod

    instance = _load_or_generate(args)
    network = instance.network
    cache_dir = (
        args.cache_dir
        or os.environ.get(oracle_mod.ORACLE_DIR_ENV_VAR)
        or ".oracle-cache"
    )
    if args.kind == "ch":
        path = ch_mod.cache_path(cache_dir, network)

        def _load():
            return ch_mod.ContractionHierarchy.load(path, network)

        def _build():
            return ch_mod.ContractionHierarchy.build(network)

        def _describe(oracle):
            return f"{oracle.n_shortcuts} shortcuts, {network.n_nodes} nodes"

    else:
        n_landmarks = (
            args.landmarks
            if args.landmarks is not None
            else oracle_mod.DEFAULT_LANDMARKS
        )
        path = oracle_mod.cache_path(
            cache_dir, network, n_landmarks=n_landmarks, seed=args.oracle_seed
        )

        def _load():
            return oracle_mod.AltOracle.load(path, network)

        def _build():
            return oracle_mod.AltOracle.build(
                network, n_landmarks=n_landmarks, seed=args.oracle_seed
            )

        def _describe(oracle):
            return f"{oracle.n_landmarks} landmarks, {network.n_nodes} nodes"

    if args.oracle_command == "build":
        cached = _load()
        if cached is not None:
            print(f"up to date: {path}")
            return 0
        oracle = _build()
        oracle.save(path)
        print(f"wrote {path} ({_describe(oracle)})")
        return 0

    # info: load the blob when present, else describe an in-memory build.
    oracle = _load()
    cached = oracle is not None
    if oracle is None:
        oracle = _build()
    doc = oracle.info()
    doc["cached"] = cached
    doc["cache_path"] = path
    payload = json.dumps(doc, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")
        print(f"wrote {args.output}")
    else:
        print(payload)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.obs import metrics
    from repro.obs.profile import check_against_baseline
    from repro.serve import (
        ServeEngine,
        load_trace,
        save_trace,
        synthesize_trace,
    )

    instance = _load_or_generate(args)
    solution = solve(instance, method=args.method)
    selected = solution.selected

    if args.synthesize is not None:
        mutations = synthesize_trace(
            instance.network,
            args.synthesize,
            facility_nodes=[instance.facility_nodes[j] for j in selected],
            capacities=[int(instance.capacities[j]) for j in selected],
            start_handle=len(instance.customers),
            customer_nodes=[int(c) for c in instance.customers],
            seed=args.trace_seed,
            p_depart=args.p_depart,
            p_capacity=args.p_capacity,
            p_retime=args.p_retime,
        )
        if args.trace:
            save_trace(args.trace, mutations)
            print(f"wrote {args.trace} ({len(mutations)} mutations)")
    elif args.trace:
        mutations = load_trace(args.trace)
    else:
        print("serve: provide --trace PATH or --synthesize N", file=sys.stderr)
        return 2

    registry = metrics.Registry()
    staleness_counts = {"optimal": 0, "feasible": 0, "cached": 0}
    applied = rejected = shed = moves = 0
    deadline_batches = 0
    started = time.perf_counter()
    with metrics.use(registry):
        engine = ServeEngine(
            instance,
            selected,
            max_batch=args.max_batch,
            cache=args.cache or None,
        )
        batch_size = max(1, args.batch)
        n_batches = 0
        for start in range(0, len(mutations), batch_size):
            result = engine.apply(
                mutations[start:start + batch_size], deadline=args.deadline
            )
            n_batches += 1
            staleness_counts[result.staleness] += 1
            applied += result.applied
            rejected += result.rejected
            shed += result.shed
            moves += result.moves
            deadline_batches += int(result.deadline_exceeded)
    elapsed = time.perf_counter() - started

    doc = {
        "method": args.method,
        "n_mutations": len(mutations),
        "batch_size": batch_size,
        "batches": n_batches,
        "applied": applied,
        "rejected": rejected,
        "shed": shed,
        "moves": moves,
        "staleness": staleness_counts,
        "deadline_exceeded_batches": deadline_batches,
        "final_cost": engine.cost,
        "n_active": engine.n_active,
        "elapsed_sec": elapsed,
        "mutations_per_sec": len(mutations) / elapsed if elapsed > 0 else 0.0,
        "metrics": registry.as_dict(),
    }
    payload = json.dumps(doc, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")
        print(f"wrote {args.output}")
    else:
        print(payload)
    print(
        f"served {len(mutations)} mutations in {n_batches} batches: "
        f"{applied} applied, {rejected} rejected, {shed} shed; "
        f"{doc['mutations_per_sec']:.0f} mut/s, "
        f"final cost {engine.cost:.2f} ({engine.staleness})"
    )

    if args.baseline:
        with open(args.baseline, encoding="utf-8") as fh:
            baseline_doc = json.load(fh)
        baseline = baseline_doc.get("metrics", baseline_doc)
        tolerance = args.tolerance
        if tolerance is None:
            tolerance = float(baseline_doc.get("tolerance", 0.2))
        violations = check_against_baseline(
            doc["metrics"], baseline, tolerance=tolerance
        )
        if violations:
            for line in violations:
                print(f"BASELINE REGRESSION: {line}", file=sys.stderr)
            return 1
        print(
            f"baseline ok: {len(baseline)} counters within "
            f"{tolerance:.0%} of {args.baseline}"
        )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lintcli import run_from_args

    return run_from_args(args)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "solve": _cmd_solve,
        "stats": _cmd_stats,
        "compare": _cmd_compare,
        "bench": _cmd_bench,
        "refine": _cmd_refine,
        "export": _cmd_export,
        "profile": _cmd_profile,
        "oracle": _cmd_oracle,
        "serve": _cmd_serve,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
