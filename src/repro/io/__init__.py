"""Serialization and export of networks, instances, and solutions."""

from repro.io.geojson import (
    export_scenario,
    instance_to_geojson,
    network_to_geojson,
    solution_to_geojson,
)
from repro.io.osm import OsmImport, load_osm_xml, nearest_network_node
from repro.io.serialization import (
    load_instance,
    load_network,
    load_solution,
    save_instance,
    save_network,
    save_solution,
)

__all__ = [
    "save_network",
    "load_network",
    "save_instance",
    "load_instance",
    "save_solution",
    "load_solution",
    "network_to_geojson",
    "instance_to_geojson",
    "solution_to_geojson",
    "export_scenario",
    "OsmImport",
    "load_osm_xml",
    "nearest_network_node",
]
