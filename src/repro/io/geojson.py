"""GeoJSON export of networks, instances, and solutions.

The paper presents its scenarios on city maps (Figures 1, 5, 14, 15);
this module produces the equivalent visual artifacts as GeoJSON
FeatureCollections that drop straight into any web map or GIS tool:

* the street network as ``LineString`` features;
* customers and candidate facilities as ``Point`` features;
* a solution's opened facilities (with load/capacity properties) and the
  customer-to-facility assignment as connecting lines.

Coordinates are emitted verbatim from the network's planar coordinates;
callers working in a real CRS can post-transform.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.instance import MCFSInstance
from repro.core.solution import MCFSSolution
from repro.errors import GraphError
from repro.network.graph import Network


def _point(coords, properties: dict[str, Any]) -> dict[str, Any]:
    return {
        "type": "Feature",
        "geometry": {
            "type": "Point",
            "coordinates": [float(coords[0]), float(coords[1])],
        },
        "properties": properties,
    }


def _line(a, b, properties: dict[str, Any]) -> dict[str, Any]:
    return {
        "type": "Feature",
        "geometry": {
            "type": "LineString",
            "coordinates": [
                [float(a[0]), float(a[1])],
                [float(b[0]), float(b[1])],
            ],
        },
        "properties": properties,
    }


def network_to_geojson(network: Network) -> dict[str, Any]:
    """The street network as a FeatureCollection of edge LineStrings."""
    if not network.has_coords:
        raise GraphError("GeoJSON export requires node coordinates")
    coords = network.coords
    features = [
        _line(
            coords[u],
            coords[v],
            {"kind": "edge", "u": u, "v": v, "length": round(w, 3)},
        )
        for u, v, w in network.edges()
    ]
    return {"type": "FeatureCollection", "features": features}


def instance_to_geojson(instance: MCFSInstance) -> dict[str, Any]:
    """Customers and candidate facilities as Point features.

    Multiple customers on one node are merged into a single point with a
    ``count`` property (how map renderers expect it).
    """
    coords = instance.network.coords
    counts: dict[int, int] = {}
    for node in instance.customers:
        counts[node] = counts.get(node, 0) + 1
    features = [
        _point(
            coords[node],
            {"kind": "customer", "node": node, "count": count},
        )
        for node, count in sorted(counts.items())
    ]
    features += [
        _point(
            coords[node],
            {
                "kind": "candidate",
                "node": node,
                "facility_index": j,
                "capacity": instance.capacities[j],
            },
        )
        for j, node in enumerate(instance.facility_nodes)
    ]
    return {"type": "FeatureCollection", "features": features}


def solution_to_geojson(
    instance: MCFSInstance,
    solution: MCFSSolution,
    *,
    include_assignment_lines: bool = True,
) -> dict[str, Any]:
    """Opened facilities (+ loads) and assignment lines as GeoJSON."""
    coords = instance.network.coords
    loads = solution.load_per_facility()
    features = [
        _point(
            coords[instance.facility_nodes[j]],
            {
                "kind": "facility",
                "facility_index": j,
                "node": instance.facility_nodes[j],
                "capacity": instance.capacities[j],
                "load": loads.get(j, 0),
            },
        )
        for j in solution.selected
    ]
    if include_assignment_lines:
        for i, j in enumerate(solution.assignment):
            features.append(
                _line(
                    coords[instance.customers[i]],
                    coords[instance.facility_nodes[j]],
                    {
                        "kind": "assignment",
                        "customer": i,
                        "facility_index": j,
                    },
                )
            )
    return {"type": "FeatureCollection", "features": features}


def export_scenario(
    instance: MCFSInstance,
    solution: MCFSSolution | None,
    path: str | Path,
) -> None:
    """Write network + instance (+ solution) layers into one JSON file.

    The file holds an object with ``network``, ``instance``, and
    (optionally) ``solution`` FeatureCollections -- one file per scenario
    keeps map tooling simple.
    """
    payload: dict[str, Any] = {
        "network": network_to_geojson(instance.network),
        "instance": instance_to_geojson(instance),
    }
    if solution is not None:
        payload["solution"] = solution_to_geojson(instance, solution)
    Path(path).write_text(json.dumps(payload))
