"""Disk round-trips for networks, instances, and solutions.

Networks go to ``.npz`` (flat integer/float arrays, compact and fast);
instances pair a network ``.npz`` with the customer/facility metadata in
the same archive; solutions are small and go to JSON.  All formats are
versioned so future readers can detect stale files.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.instance import MCFSInstance
from repro.core.solution import MCFSSolution
from repro.network.graph import Network

_FORMAT_VERSION = 1


def save_network(network: Network, path: str | Path) -> None:
    """Write a network to an ``.npz`` archive."""
    path = Path(path)
    edges = np.array(
        [(u, v) for u, v, _ in network.edges()], dtype=np.int64
    ).reshape(-1, 2)
    weights = network.edge_lengths()
    payload = {
        "version": np.int64(_FORMAT_VERSION),
        "n_nodes": np.int64(network.n_nodes),
        "directed": np.int64(1 if network.directed else 0),
        "edges": edges,
        "weights": weights,
    }
    if network.has_coords:
        payload["coords"] = network.coords
    np.savez_compressed(path, **payload)


def load_network(path: str | Path) -> Network:
    """Read a network written by :func:`save_network`."""
    with np.load(Path(path)) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported network format version {version}")
        edges = data["edges"]
        weights = data["weights"]
        coords = data["coords"] if "coords" in data else None
        return Network(
            int(data["n_nodes"]),
            [
                (int(u), int(v), float(w))
                for (u, v), w in zip(edges, weights, strict=True)
            ],
            coords=coords,
            directed=bool(int(data["directed"])),
        )


def save_instance(instance: MCFSInstance, path: str | Path) -> None:
    """Write an instance (network included) to an ``.npz`` archive."""
    path = Path(path)
    edges = np.array(
        [(u, v) for u, v, _ in instance.network.edges()], dtype=np.int64
    ).reshape(-1, 2)
    payload = {
        "version": np.int64(_FORMAT_VERSION),
        "n_nodes": np.int64(instance.network.n_nodes),
        "directed": np.int64(1 if instance.network.directed else 0),
        "edges": edges,
        "weights": instance.network.edge_lengths(),
        "customers": np.array(instance.customers, dtype=np.int64),
        "facility_nodes": np.array(instance.facility_nodes, dtype=np.int64),
        "capacities": np.array(instance.capacities, dtype=np.int64),
        "k": np.int64(instance.k),
        "name": np.array(instance.name),
    }
    if instance.network.has_coords:
        payload["coords"] = instance.network.coords
    np.savez_compressed(path, **payload)


def load_instance(path: str | Path) -> MCFSInstance:
    """Read an instance written by :func:`save_instance`."""
    with np.load(Path(path)) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported instance format version {version}")
        coords = data["coords"] if "coords" in data else None
        network = Network(
            int(data["n_nodes"]),
            [
                (int(u), int(v), float(w))
                for (u, v), w in zip(
                    data["edges"], data["weights"], strict=True
                )
            ],
            coords=coords,
            directed=bool(int(data["directed"])),
        )
        return MCFSInstance(
            network=network,
            customers=tuple(int(c) for c in data["customers"]),
            facility_nodes=tuple(int(f) for f in data["facility_nodes"]),
            capacities=tuple(int(c) for c in data["capacities"]),
            k=int(data["k"]),
            name=str(data["name"]),
        )


def save_solution(solution: MCFSSolution, path: str | Path) -> None:
    """Write a solution to JSON."""
    payload = {
        "version": _FORMAT_VERSION,
        "selected": list(solution.selected),
        "assignment": list(solution.assignment),
        "objective": solution.objective,
        "meta": _jsonable(solution.meta),
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_solution(path: str | Path) -> MCFSSolution:
    """Read a solution written by :func:`save_solution`."""
    payload = json.loads(Path(path).read_text())
    version = int(payload["version"])
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported solution format version {version}")
    return MCFSSolution(
        selected=tuple(payload["selected"]),
        assignment=tuple(payload["assignment"]),
        objective=float(payload["objective"]),
        meta=dict(payload["meta"]),
    )


def _jsonable(value):
    """Coerce numpy scalars and other common types to JSON-safe values."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value
