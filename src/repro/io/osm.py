"""OpenStreetMap XML import.

The paper evaluates on road networks "obtained from OpenStreetMap"; this
offline reproduction ships synthetic proxies, but users with a real
``.osm`` XML extract can load it directly:

    network, node_ids = load_osm_xml("copenhagen.osm")

Parsing follows the standard recipe:

* ``<node>`` elements provide coordinates (lat/lon, projected to local
  meters with an equirectangular approximation around the extract's
  centroid -- adequate at city scale);
* ``<way>`` elements tagged ``highway=*`` become chains of edges, with
  length = great-circle distance between consecutive nodes;
* ways tagged ``oneway=yes`` produce directed arcs when the network is
  built in directed mode, and are treated as bidirectional otherwise
  (the paper's setting);
* nodes unused by any highway are dropped; ids are densified.

Only the tags relevant to routing are considered; this is deliberately a
small, dependency-free importer, not a general OSM toolkit.
"""

from __future__ import annotations

import math
import xml.etree.ElementTree as ET
from dataclasses import dataclass
from pathlib import Path
from typing import IO

import numpy as np

from repro.errors import GraphError
from repro.network.graph import Network

EARTH_RADIUS_M = 6_371_000.0

#: highway values that do not carry general road traffic.
_EXCLUDED_HIGHWAYS = {
    "proposed",
    "construction",
    "raceway",
    "abandoned",
    "platform",
    "elevator",
}


@dataclass(frozen=True)
class OsmImport:
    """Result of :func:`load_osm_xml`.

    Attributes
    ----------
    network:
        The road network with dense node ids and meter coordinates.
    osm_node_ids:
        Original OSM node id per dense id (for joining external data,
        e.g. venue locations, back onto the network).
    origin:
        ``(lat0, lon0)`` of the local equirectangular projection; needed
        to project further WGS84 points onto the same plane.
    """

    network: Network
    osm_node_ids: list[int]
    origin: tuple[float, float]

    def project(self, lat: float, lon: float) -> tuple[float, float]:
        """Project a WGS84 coordinate onto the network's meter plane."""
        lat0, lon0 = self.origin
        k_lat = math.pi / 180.0 * EARTH_RADIUS_M
        k_lon = k_lat * math.cos(math.radians(lat0))
        return (lon - lon0) * k_lon, (lat - lat0) * k_lat


def _haversine_m(lat1, lon1, lat2, lon2) -> float:
    """Great-circle distance in meters."""
    p1, p2 = math.radians(lat1), math.radians(lat2)
    dp = p2 - p1
    dl = math.radians(lon2 - lon1)
    a = math.sin(dp / 2) ** 2 + math.cos(p1) * math.cos(p2) * math.sin(dl / 2) ** 2
    return 2 * EARTH_RADIUS_M * math.asin(math.sqrt(a))


def load_osm_xml(
    source: str | Path | IO[bytes],
    *,
    directed: bool = False,
    keep_highways: set[str] | None = None,
) -> OsmImport:
    """Parse an OSM XML extract into a :class:`Network`.

    Parameters
    ----------
    source:
        Path to a ``.osm`` file, or an open binary file object.
    directed:
        Build a directed network honouring ``oneway=yes`` tags; the
        default follows the paper and treats all roads as bidirectional.
    keep_highways:
        Optional whitelist of ``highway`` tag values; by default every
        highway type except obviously non-routable ones is kept.

    Raises
    ------
    GraphError
        When the extract contains no usable road data.
    """
    tree = ET.parse(source)
    root = tree.getroot()

    lat_lon: dict[int, tuple[float, float]] = {}
    for node in root.iter("node"):
        try:
            lat_lon[int(node.attrib["id"])] = (
                float(node.attrib["lat"]),
                float(node.attrib["lon"]),
            )
        except (KeyError, ValueError):
            continue

    # (osm_u, osm_v, length_m, oneway) segments from highway ways.
    segments: list[tuple[int, int, float, bool]] = []
    used: set[int] = set()
    for way in root.iter("way"):
        tags = {
            tag.attrib.get("k"): tag.attrib.get("v")
            for tag in way.findall("tag")
        }
        highway = tags.get("highway")
        if highway is None or highway in _EXCLUDED_HIGHWAYS:
            continue
        if keep_highways is not None and highway not in keep_highways:
            continue
        oneway = tags.get("oneway") in ("yes", "true", "1")
        refs = [
            int(nd.attrib["ref"])
            for nd in way.findall("nd")
            if int(nd.attrib.get("ref", -1)) in lat_lon
        ]
        for a, b in zip(refs, refs[1:], strict=False):
            if a == b:
                continue
            la1, lo1 = lat_lon[a]
            la2, lo2 = lat_lon[b]
            length = _haversine_m(la1, lo1, la2, lo2)
            if length <= 0:
                length = 0.01
            segments.append((a, b, length, oneway))
            used.add(a)
            used.add(b)

    if not segments:
        raise GraphError("extract contains no routable highway data")

    osm_ids = sorted(used)
    dense = {osm: i for i, osm in enumerate(osm_ids)}

    # Local meter coordinates: equirectangular around the centroid.
    lat0 = sum(lat_lon[o][0] for o in osm_ids) / len(osm_ids)
    lon0 = sum(lat_lon[o][1] for o in osm_ids) / len(osm_ids)
    k_lat = math.pi / 180.0 * EARTH_RADIUS_M
    k_lon = k_lat * math.cos(math.radians(lat0))
    coords = np.array(
        [
            (
                (lat_lon[o][1] - lon0) * k_lon,
                (lat_lon[o][0] - lat0) * k_lat,
            )
            for o in osm_ids
        ]
    )

    edges: list[tuple[int, int, float]] = []
    seen: set[tuple[int, int]] = set()
    for a, b, length, oneway in segments:
        u, v = dense[a], dense[b]
        if directed:
            edges.append((u, v, length))
            if not oneway:
                edges.append((v, u, length))
        else:
            key = (min(u, v), max(u, v))
            if key in seen:
                continue
            seen.add(key)
            edges.append((key[0], key[1], length))

    network = Network(
        len(osm_ids), edges, coords=coords, directed=directed
    )
    return OsmImport(
        network=network,
        osm_node_ids=list(osm_ids),
        origin=(lat0, lon0),
    )


def nearest_network_node(result: OsmImport, lat: float, lon: float) -> int:
    """Dense node id nearest to a WGS84 coordinate.

    The join primitive for external point data (venues, bike counters):
    project the query onto the import's meter plane and take the
    Euclidean nearest network node.
    """
    x, y = result.project(lat, lon)
    deltas = result.network.coords - np.array([x, y])
    return int(np.argmin((deltas**2).sum(axis=1)))
