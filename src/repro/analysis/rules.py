"""The repo-specific reprolint rules (REP001..REP006).

Each rule encodes a real contract of this codebase that no generic
linter knows about -- the observability name registry, the
``solver_api``/``SOLVERS`` registration protocol, clock and RNG
discipline, and budget checkpoints in hot loops.  Rules are pluggable:
subclass :class:`Rule`, give it an id/severity/hint, and add it to
:func:`default_rules`.

Per-file state arrives through
:class:`~repro.analysis.engine.FileContext`; cross-file rules accumulate
during :meth:`Rule.visit` and reconcile in :meth:`Rule.finalize`.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.analysis.engine import FileContext
from repro.analysis.findings import Finding

__all__ = ["Rule", "default_rules", "RULES"]


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`id`, :attr:`severity`, :attr:`title`, and
    :attr:`hint`, implement :meth:`visit` (per file), and may implement
    :meth:`finalize` (project-wide, after every file was visited).
    """

    id = "REP000"
    severity = "error"
    title = ""
    hint = ""

    def start(self) -> None:
        """Reset cross-file state; called once per engine run."""

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one parsed file."""
        return iter(())

    def finalize(self) -> Iterator[Finding]:
        """Yield cross-file findings after the whole tree was visited."""
        return iter(())

    def finding(
        self,
        ctx_or_path: FileContext | str,
        line: int,
        col: int,
        symbol: str,
        message: str,
        hint: str | None = None,
    ) -> Finding:
        """Build a :class:`Finding` for this rule."""
        path = (
            ctx_or_path.rel
            if isinstance(ctx_or_path, FileContext)
            else ctx_or_path
        )
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=path,
            line=line,
            col=col,
            symbol=symbol,
            message=message,
            hint=self.hint if hint is None else hint,
        )


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------
def _dotted(node: ast.expr) -> str:
    """Render a Name/Attribute chain as ``a.b.c`` (empty if dynamic)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _call_name(node: ast.Call) -> str:
    """The final identifier of the called expression (``c`` in ``a.b.c()``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _str_value(node: ast.expr, ctx: FileContext) -> str | None:
    """Resolve a string literal or module-level string constant."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return ctx.constants.get(node.id)
    return None


def _iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str, tuple]]:
    """Yield ``(def_node, qualname, enclosing_def_chain)`` for every function."""

    def walk(node: ast.AST, prefix: str, chain: tuple) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield child, qual, chain
                yield from walk(child, f"{qual}.", chain + (child,))
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.", chain)
            else:
                yield from walk(child, prefix, chain)

    yield from walk(tree, "", ())


def _owned_nodes(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Walk ``func`` without descending into nested function defs."""
    todo: list[ast.AST] = list(ast.iter_child_nodes(func))
    while todo:
        node = todo.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            todo.extend(ast.iter_child_nodes(node))


# ----------------------------------------------------------------------
# REP001 -- observability names must round-trip through the registry
# ----------------------------------------------------------------------
class ObsNameRegistryRule(Rule):
    """Counter/gauge/timer names must exist in ``obs/names.py`` (both ways).

    A name used at a call site but absent from the registry is a typo
    about to mint an ungated counter; a registered name with no call
    site is dead vocabulary.  Names passed through module-level string
    constants (``COUNTER_HITS = "distcache.hits"``) are resolved;
    genuinely dynamic names (variables, f-strings) are outside the
    rule's reach and are ignored.
    """

    id = "REP001"
    severity = "error"
    title = "observability name not in obs/names.py registry"
    hint = (
        "declare the name in the matching set of src/repro/obs/names.py "
        "(COUNTERS/GAUGES/TIMERS) or fix the typo at the call site"
    )

    REGISTRY_REL = "obs/names.py"
    _KIND_BY_SET = {"COUNTERS": "counter", "GAUGES": "gauge", "TIMERS": "timer"}

    def start(self) -> None:
        # kind -> name -> declaration line in the registry file
        self.registry: dict[str, dict[str, int]] = {}
        self.registry_seen = False
        # (kind, name, path, line, col) usages across the tree
        self.usages: list[tuple[str, str, str, int, int]] = []

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel == self.REGISTRY_REL:
            self.registry_seen = True
            self._collect_registry(ctx)
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            called = _call_name(node)
            if called in ("counter", "gauge", "timer"):
                if node.args:
                    name = _str_value(node.args[0], ctx)
                    if name is not None:
                        self.usages.append(
                            (called, name, ctx.rel, node.lineno, node.col_offset)
                        )
            elif called == "CounterBlock":
                for arg in node.args:
                    name = _str_value(arg, ctx)
                    if name is not None:
                        self.usages.append(
                            ("counter", name, ctx.rel, node.lineno, node.col_offset)
                        )
        return
        yield  # pragma: no cover - makes this an (empty) generator

    def _collect_registry(self, ctx: FileContext) -> None:
        for node in ctx.tree.body:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            kind = self._KIND_BY_SET.get(target.id)
            if kind is None:
                continue
            names = self.registry.setdefault(kind, {})
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                    names[sub.value] = sub.lineno

    def finalize(self) -> Iterator[Finding]:
        all_registered: dict[str, tuple[str, int]] = {}
        for kind, names in self.registry.items():
            for name, line in names.items():
                all_registered[name] = (kind, line)

        used_names = set()
        for kind, name, path, line, col in self.usages:
            used_names.add(name)
            registered = all_registered.get(name)
            if registered is None:
                yield self.finding(
                    path,
                    line,
                    col,
                    name,
                    f"{kind} name {name!r} is not declared in the "
                    f"observability registry ({self.REGISTRY_REL})",
                )
            elif registered[0] != kind:
                yield self.finding(
                    path,
                    line,
                    col,
                    name,
                    f"{name!r} is registered as a {registered[0]} but used "
                    f"as a {kind} here",
                    hint="use the registered instrument kind or move the "
                    "name to the matching registry set",
                )
        if self.registry_seen:
            for name, (kind, line) in sorted(all_registered.items()):
                if name not in used_names:
                    yield self.finding(
                        self.REGISTRY_REL,
                        line,
                        0,
                        name,
                        f"registered {kind} name {name!r} has no call site "
                        f"left in the tree (dead registry entry)",
                        hint="remove the entry or restore the "
                        "instrumentation that used it",
                    )


# ----------------------------------------------------------------------
# REP002 -- solver entry points must use solver_api and be in SOLVERS
# ----------------------------------------------------------------------
class SolverRegistrationRule(Rule):
    """``def solve_*`` in ``baselines/``/``core/`` must be registered.

    Every solver entry point must carry the ``@solver_api`` decorator
    (PR 3's unified option surface -- without it, ``options=`` and the
    budget/cache scopes silently do not apply) and must be reachable as
    a value of the top-level ``SOLVERS`` dict, or the CLI, the fallback
    chains, and the bench harness cannot see it.
    """

    id = "REP002"
    severity = "error"
    title = "unregistered solver entry point"
    hint = (
        "decorate with @solver_api(<method>, ...) and add the function "
        "to SOLVERS in src/repro/__init__.py"
    )

    PREFIXES = ("baselines/", "core/")

    def start(self) -> None:
        self.defs: list[tuple[str, str, int]] = []  # (name, path, line)
        self.solvers_values: set[str] | None = None

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel == "__init__.py":
            self._collect_solvers(ctx)
        if not ctx.rel.startswith(self.PREFIXES):
            return
        for node in ctx.tree.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            if not node.name.startswith("solve_"):
                continue
            if not self._has_solver_api(node):
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    node.name,
                    f"solver entry point {node.name!r} lacks the "
                    f"@solver_api decorator",
                )
            self.defs.append((node.name, ctx.rel, node.lineno))

    @staticmethod
    def _has_solver_api(node: ast.FunctionDef) -> bool:
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = _dotted(target)
            if name == "solver_api" or name.endswith(".solver_api"):
                return True
        return False

    def _collect_solvers(self, ctx: FileContext) -> None:
        for node in ctx.tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "SOLVERS"
                and isinstance(node.value, ast.Dict)
            ) or (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.target.id == "SOLVERS"
                and isinstance(node.value, ast.Dict)
            ):
                values = set()
                for value in node.value.values:
                    name = _dotted(value)
                    if name:
                        values.add(name.rsplit(".", 1)[-1])
                self.solvers_values = values

    def finalize(self) -> Iterator[Finding]:
        if self.solvers_values is None:
            return
        for name, path, line in self.defs:
            if name not in self.solvers_values:
                yield self.finding(
                    path,
                    line,
                    0,
                    name,
                    f"solver entry point {name!r} is not reachable from "
                    f"the SOLVERS registry in __init__.py",
                )


# ----------------------------------------------------------------------
# REP003 -- wall clocks belong to runtime/ and obs/
# ----------------------------------------------------------------------
class WallClockOwnershipRule(Rule):
    """No ``time.time``/``time.monotonic``/argless ``datetime.now`` elsewhere.

    Determinism and budget ownership: solvers must observe wall time
    only through the cooperative budget (:mod:`repro.runtime.budget`)
    and the observability layer, or identical runs stop being identical
    and deadline enforcement fragments.  ``time.perf_counter`` for pure
    duration measurement is allowed.
    """

    id = "REP003"
    severity = "error"
    title = "wall-clock read outside runtime/ and obs/"
    hint = (
        "route deadlines through repro.runtime.budget and measurements "
        "through repro.obs; time.perf_counter() is fine for durations"
    )

    EXEMPT_PREFIXES = ("runtime/", "obs/", "analysis/")
    _BANNED_CALLS = {"time.time", "time.monotonic"}

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel.startswith(self.EXEMPT_PREFIXES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                banned = [
                    a.name
                    for a in node.names
                    if a.name in ("time", "monotonic")
                ]
                if banned:
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"from-time-import-{'-'.join(banned)}",
                        f"importing {', '.join(banned)} from time makes "
                        f"wall-clock reads invisible to the budget layer",
                    )
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted in self._BANNED_CALLS:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    dotted,
                    f"{dotted}() outside runtime/ and obs/ breaks "
                    f"determinism and budget ownership",
                )
            elif (
                dotted.endswith("datetime.now")
                or dotted == "datetime.now"
            ) and not node.args and not node.keywords:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "datetime.now",
                    "argless datetime.now() outside runtime/ and obs/ is "
                    "a non-deterministic wall-clock read",
                )


# ----------------------------------------------------------------------
# REP004 -- randomness must be seed-driven
# ----------------------------------------------------------------------
class SeededRandomnessRule(Rule):
    """No ``import random``, no unseeded ``default_rng()``.

    Reproducibility is a headline contract of this repo: every random
    draw flows from an explicit seed.  The stdlib ``random`` module
    (global, shared state) is allowed only in the whitelisted
    seed-driven site (``runtime/faults.py``, whose FaultPlan derives a
    private ``random.Random(seed)``); ``numpy.random.default_rng()``
    must always be given a seed.
    """

    id = "REP004"
    severity = "error"
    title = "unseeded randomness"
    hint = (
        "thread an explicit seed: np.random.default_rng(seed); the "
        "stdlib random module is whitelisted only in runtime/faults.py"
    )

    WHITELIST = {"runtime/faults.py"}

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel in self.WHITELIST:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "random."
                    ):
                        yield self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            "import-random",
                            "the stdlib random module (global shared state) "
                            "is only allowed in runtime/faults.py",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "import-random",
                    "the stdlib random module (global shared state) is "
                    "only allowed in runtime/faults.py",
                )
            elif isinstance(node, ast.Call):
                if (
                    _call_name(node) == "default_rng"
                    and not node.args
                    and not node.keywords
                ):
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        "default_rng",
                        "default_rng() without a seed is OS-entropy seeded "
                        "and breaks run-to-run reproducibility",
                    )


# ----------------------------------------------------------------------
# REP005 -- hot loops must checkpoint the budget
# ----------------------------------------------------------------------
class BudgetCheckpointRule(Rule):
    """Instance-sized loops in hot-path modules must hit ``checkpoint()``.

    The deadline runtime (PR 3) is cooperative: a hot loop that never
    calls :func:`repro.runtime.budget.checkpoint` cannot be interrupted,
    so one such loop defeats every ``--deadline`` above it.  The rule
    flags functions in the hot-path modules (``network/``, ``flow/``,
    ``core/wma.py``) that run data-dependent loops (``while``, or
    ``for`` over anything but a literal/constant-range iterable) without
    a checkpoint in their own or an enclosing scope.  Heuristic by
    nature, hence a *warning*: suppress deliberately cold or
    caller-checkpointed functions with ``# reprolint: disable=REP005``.
    """

    id = "REP005"
    severity = "warning"
    title = "hot loop without budget checkpoint"
    hint = (
        "call repro.runtime.budget.checkpoint() in the loop (cheap no-op "
        "without an active budget), or suppress with "
        "'# reprolint: disable=REP005' if the loop is construction-time "
        "or its caller checkpoints"
    )

    HOT_PREFIXES = ("network/", "flow/")
    HOT_FILES = {"core/wma.py"}
    _BOUNDED_CALLS = {"range", "enumerate", "zip", "reversed"}

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        if not (
            ctx.rel.startswith(self.HOT_PREFIXES) or ctx.rel in self.HOT_FILES
        ):
            return
        for func, qual, chain in _iter_functions(ctx.tree):
            if self._checkpoints(func) or any(
                self._checkpoints(outer, shallow=True) for outer in chain
            ):
                continue
            loop_line = self._first_hot_loop(func)
            if loop_line is not None:
                yield self.finding(
                    ctx,
                    func.lineno,
                    func.col_offset,
                    qual,
                    f"{qual}() runs an instance-sized loop (line "
                    f"{loop_line}) without a budget checkpoint",
                )

    @classmethod
    def _checkpoints(
        cls,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        shallow: bool = False,
    ) -> bool:
        nodes: Iterable[ast.AST] = (
            _owned_nodes(func) if shallow else ast.walk(func)
        )
        for node in nodes:
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if "checkpoint" in name or name == "tick":
                    return True
        return False

    @classmethod
    def _first_hot_loop(
        cls, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> int | None:
        for node in _owned_nodes(func):
            if isinstance(node, ast.While):
                return node.lineno
            if isinstance(node, ast.For) and cls._data_dependent(node.iter):
                return node.lineno
        return None

    @classmethod
    def _data_dependent(cls, expr: ast.expr) -> bool:
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            return any(
                not isinstance(e, ast.Constant) and cls._data_dependent(e)
                for e in expr.elts
            )
        if isinstance(expr, ast.Constant):
            return False
        if isinstance(expr, ast.Call):
            if _call_name(expr) in cls._BOUNDED_CALLS:
                return any(cls._data_dependent(a) for a in expr.args)
            return True
        return True


# ----------------------------------------------------------------------
# REP006 -- no mutable defaults, no bare except
# ----------------------------------------------------------------------
class MutableDefaultAndBareExceptRule(Rule):
    """No mutable default arguments and no bare ``except:`` anywhere.

    Mutable defaults are shared across calls (the classic aliasing bug);
    bare ``except`` swallows ``KeyboardInterrupt``/``SystemExit`` and --
    in this codebase -- :class:`~repro.errors.BudgetExceeded`, which
    must always reach the runtime's fallback chain.
    """

    id = "REP006"
    severity = "error"
    title = "mutable default argument or bare except"
    hint = (
        "default to None and create the container inside the function; "
        "catch a concrete exception type instead of bare except"
    )

    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        for func, qual, _chain in _iter_functions(ctx.tree):
            defaults = list(func.args.defaults) + [
                d for d in func.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx,
                        default.lineno,
                        default.col_offset,
                        qual,
                        f"{qual}() has a mutable default argument "
                        f"(shared across calls)",
                    )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "bare-except",
                    "bare except swallows SystemExit/KeyboardInterrupt "
                    "and BudgetExceeded",
                )

    @classmethod
    def _is_mutable(cls, node: ast.expr) -> bool:
        if isinstance(
            node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                   ast.SetComp)
        ):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in cls._MUTABLE_CALLS
        )


#: Rule registry in id order; ``repro lint --list-rules`` prints this.
RULES: tuple[type[Rule], ...] = (
    ObsNameRegistryRule,
    SolverRegistrationRule,
    WallClockOwnershipRule,
    SeededRandomnessRule,
    BudgetCheckpointRule,
    MutableDefaultAndBareExceptRule,
)


def default_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in id order."""
    return [cls() for cls in RULES]
