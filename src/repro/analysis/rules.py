"""The repo-specific reprolint rules (REP001..REP006, REP101..REP108).

Each rule encodes a real contract of this codebase that no generic
linter knows about -- the observability name registry, the
``solver_api``/``SOLVERS`` registration protocol, clock and RNG
discipline, budget-checkpoint reachability, the architecture layering,
shared-state safety under process fan-out, and dead-export hygiene.
Rules are pluggable: subclass :class:`Rule`, give it an id/severity/
hint, and add it to :func:`default_rules`.

Per-file state arrives through
:class:`~repro.analysis.engine.FileContext`; cross-file rules accumulate
during :meth:`Rule.visit`, receive the whole-program graphs
(:class:`~repro.analysis.graphs.AnalysisProject`) through
:meth:`Rule.set_project`, and reconcile in :meth:`Rule.finalize`.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.analysis.engine import FileContext
from repro.analysis.findings import Finding
from repro.analysis.graphs import (
    AnalysisProject,
    CallGraph,
    FunctionInfo,
    check_layering,
    module_name,
)

__all__ = ["Rule", "default_rules", "RULES"]


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`id`, :attr:`severity`, :attr:`title`, and
    :attr:`hint`, implement :meth:`visit` (per file), and may implement
    :meth:`finalize` (project-wide, after every file was visited).
    """

    id = "REP000"
    severity = "error"
    title = ""
    hint = ""
    #: Pure per-file rules (no cross-file state, no ``finalize``
    #: findings) set this True; the incremental engine may then replay
    #: their cached findings for unchanged files.
    local = False

    def start(self) -> None:
        """Reset cross-file state; called once per engine run."""

    def set_project(self, project: AnalysisProject) -> None:
        """Receive the whole-program graphs (before :meth:`finalize`)."""
        self.project = project

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one parsed file."""
        return iter(())

    def finalize(self) -> Iterator[Finding]:
        """Yield cross-file findings after the whole tree was visited."""
        return iter(())

    def finding(
        self,
        ctx_or_path: FileContext | str,
        line: int,
        col: int,
        symbol: str,
        message: str,
        hint: str | None = None,
    ) -> Finding:
        """Build a :class:`Finding` for this rule."""
        path = (
            ctx_or_path.rel
            if isinstance(ctx_or_path, FileContext)
            else ctx_or_path
        )
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=path,
            line=line,
            col=col,
            symbol=symbol,
            message=message,
            hint=self.hint if hint is None else hint,
        )


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------
def _dotted(node: ast.expr) -> str:
    """Render a Name/Attribute chain as ``a.b.c`` (empty if dynamic)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _call_name(node: ast.Call) -> str:
    """The final identifier of the called expression (``c`` in ``a.b.c()``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _str_value(node: ast.expr, ctx: FileContext) -> str | None:
    """Resolve a string literal or module-level string constant."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return ctx.constants.get(node.id)
    return None


_FuncDef = ast.FunctionDef | ast.AsyncFunctionDef
_FuncItem = tuple[_FuncDef, str, tuple[_FuncDef, ...]]


def _iter_functions(tree: ast.Module) -> Iterator[_FuncItem]:
    """Yield ``(def_node, qualname, enclosing_def_chain)`` for every function."""

    def walk(
        node: ast.AST, prefix: str, chain: tuple[_FuncDef, ...]
    ) -> Iterator[_FuncItem]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield child, qual, chain
                yield from walk(child, f"{qual}.", chain + (child,))
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.", chain)
            else:
                yield from walk(child, prefix, chain)

    yield from walk(tree, "", ())


def _owned_nodes(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Walk ``func`` without descending into nested function defs."""
    todo: list[ast.AST] = list(ast.iter_child_nodes(func))
    while todo:
        node = todo.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            todo.extend(ast.iter_child_nodes(node))


# ----------------------------------------------------------------------
# REP001 -- observability names must round-trip through the registry
# ----------------------------------------------------------------------
class ObsNameRegistryRule(Rule):
    """Counter/gauge/timer names must exist in ``obs/names.py`` (both ways).

    A name used at a call site but absent from the registry is a typo
    about to mint an ungated counter; a registered name with no call
    site is dead vocabulary.  Names passed through module-level string
    constants (``COUNTER_HITS = "distcache.hits"``) are resolved;
    genuinely dynamic names (variables, f-strings) are outside the
    rule's reach and are ignored.
    """

    id = "REP001"
    severity = "error"
    title = "observability name not in obs/names.py registry"
    hint = (
        "declare the name in the matching set of src/repro/obs/names.py "
        "(COUNTERS/GAUGES/TIMERS) or fix the typo at the call site"
    )

    REGISTRY_REL = "obs/names.py"
    _KIND_BY_SET = {"COUNTERS": "counter", "GAUGES": "gauge", "TIMERS": "timer"}

    def start(self) -> None:
        # kind -> name -> declaration line in the registry file
        self.registry: dict[str, dict[str, int]] = {}
        self.registry_seen = False
        # (kind, name, path, line, col) usages across the tree
        self.usages: list[tuple[str, str, str, int, int]] = []

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel == self.REGISTRY_REL:
            self.registry_seen = True
            self._collect_registry(ctx)
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            called = _call_name(node)
            if called in ("counter", "gauge", "timer"):
                if node.args:
                    name = _str_value(node.args[0], ctx)
                    if name is not None:
                        self.usages.append(
                            (called, name, ctx.rel, node.lineno, node.col_offset)
                        )
            elif called == "CounterBlock":
                for arg in node.args:
                    name = _str_value(arg, ctx)
                    if name is not None:
                        self.usages.append(
                            ("counter", name, ctx.rel, node.lineno, node.col_offset)
                        )
        return
        yield  # pragma: no cover - makes this an (empty) generator

    def _collect_registry(self, ctx: FileContext) -> None:
        for node in ctx.tree.body:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            kind = self._KIND_BY_SET.get(target.id)
            if kind is None:
                continue
            names = self.registry.setdefault(kind, {})
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                    names[sub.value] = sub.lineno

    def finalize(self) -> Iterator[Finding]:
        all_registered: dict[str, tuple[str, int]] = {}
        for kind, names in self.registry.items():
            for name, line in names.items():
                all_registered[name] = (kind, line)

        used_names = set()
        for kind, name, path, line, col in self.usages:
            used_names.add(name)
            registered = all_registered.get(name)
            if registered is None:
                yield self.finding(
                    path,
                    line,
                    col,
                    name,
                    f"{kind} name {name!r} is not declared in the "
                    f"observability registry ({self.REGISTRY_REL})",
                )
            elif registered[0] != kind:
                yield self.finding(
                    path,
                    line,
                    col,
                    name,
                    f"{name!r} is registered as a {registered[0]} but used "
                    f"as a {kind} here",
                    hint="use the registered instrument kind or move the "
                    "name to the matching registry set",
                )
        if self.registry_seen:
            for name, (kind, line) in sorted(all_registered.items()):
                if name not in used_names:
                    yield self.finding(
                        self.REGISTRY_REL,
                        line,
                        0,
                        name,
                        f"registered {kind} name {name!r} has no call site "
                        f"left in the tree (dead registry entry)",
                        hint="remove the entry or restore the "
                        "instrumentation that used it",
                    )


# ----------------------------------------------------------------------
# REP002 -- solver entry points must use solver_api and be in SOLVERS
# ----------------------------------------------------------------------
class SolverRegistrationRule(Rule):
    """``def solve_*`` in ``baselines/``/``core/`` must be registered.

    Every solver entry point must carry the ``@solver_api`` decorator
    (PR 3's unified option surface -- without it, ``options=`` and the
    budget/cache scopes silently do not apply) and must be reachable as
    a value of the top-level ``SOLVERS`` dict, or the CLI, the fallback
    chains, and the bench harness cannot see it.
    """

    id = "REP002"
    severity = "error"
    title = "unregistered solver entry point"
    hint = (
        "decorate with @solver_api(<method>, ...) and add the function "
        "to SOLVERS in src/repro/__init__.py"
    )

    PREFIXES = ("baselines/", "core/")

    def start(self) -> None:
        self.defs: list[tuple[str, str, int]] = []  # (name, path, line)
        self.solvers_values: set[str] | None = None

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel == "__init__.py":
            self._collect_solvers(ctx)
        if not ctx.rel.startswith(self.PREFIXES):
            return
        for node in ctx.tree.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            if not node.name.startswith("solve_"):
                continue
            if not self._has_solver_api(node):
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    node.name,
                    f"solver entry point {node.name!r} lacks the "
                    f"@solver_api decorator",
                )
            self.defs.append((node.name, ctx.rel, node.lineno))

    @staticmethod
    def _has_solver_api(node: ast.FunctionDef) -> bool:
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = _dotted(target)
            if name == "solver_api" or name.endswith(".solver_api"):
                return True
        return False

    def _collect_solvers(self, ctx: FileContext) -> None:
        for node in ctx.tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "SOLVERS"
                and isinstance(node.value, ast.Dict)
            ) or (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.target.id == "SOLVERS"
                and isinstance(node.value, ast.Dict)
            ):
                values = set()
                for value in node.value.values:
                    name = _dotted(value)
                    if name:
                        values.add(name.rsplit(".", 1)[-1])
                self.solvers_values = values

    def finalize(self) -> Iterator[Finding]:
        if self.solvers_values is None:
            return
        for name, path, line in self.defs:
            if name not in self.solvers_values:
                yield self.finding(
                    path,
                    line,
                    0,
                    name,
                    f"solver entry point {name!r} is not reachable from "
                    f"the SOLVERS registry in __init__.py",
                )


# ----------------------------------------------------------------------
# REP003 -- wall clocks belong to runtime/ and obs/
# ----------------------------------------------------------------------
class WallClockOwnershipRule(Rule):
    """No ``time.time``/``time.monotonic``/argless ``datetime.now`` elsewhere.

    Determinism and budget ownership: solvers must observe wall time
    only through the cooperative budget (:mod:`repro.runtime.budget`)
    and the observability layer, or identical runs stop being identical
    and deadline enforcement fragments.  ``time.perf_counter`` for pure
    duration measurement is allowed.
    """

    id = "REP003"
    severity = "error"
    title = "wall-clock read outside runtime/ and obs/"
    hint = (
        "route deadlines through repro.runtime.budget and measurements "
        "through repro.obs; time.perf_counter() is fine for durations"
    )

    EXEMPT_PREFIXES = ("runtime/", "obs/", "analysis/")
    _BANNED_CALLS = {"time.time", "time.monotonic"}

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel.startswith(self.EXEMPT_PREFIXES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                banned = [
                    a.name
                    for a in node.names
                    if a.name in ("time", "monotonic")
                ]
                if banned:
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"from-time-import-{'-'.join(banned)}",
                        f"importing {', '.join(banned)} from time makes "
                        f"wall-clock reads invisible to the budget layer",
                    )
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted in self._BANNED_CALLS:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    dotted,
                    f"{dotted}() outside runtime/ and obs/ breaks "
                    f"determinism and budget ownership",
                )
            elif (
                dotted.endswith("datetime.now")
                or dotted == "datetime.now"
            ) and not node.args and not node.keywords:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "datetime.now",
                    "argless datetime.now() outside runtime/ and obs/ is "
                    "a non-deterministic wall-clock read",
                )


# ----------------------------------------------------------------------
# REP004 -- randomness must be seed-driven
# ----------------------------------------------------------------------
class SeededRandomnessRule(Rule):
    """No ``import random``, no unseeded ``default_rng()``.

    Reproducibility is a headline contract of this repo: every random
    draw flows from an explicit seed.  The stdlib ``random`` module
    (global, shared state) is allowed only in the whitelisted
    seed-driven site (``runtime/faults.py``, whose FaultPlan derives a
    private ``random.Random(seed)``); ``numpy.random.default_rng()``
    must always be given a seed.
    """

    id = "REP004"
    severity = "error"
    title = "unseeded randomness"
    hint = (
        "thread an explicit seed: np.random.default_rng(seed); the "
        "stdlib random module is whitelisted only in runtime/faults.py"
    )

    WHITELIST = {"runtime/faults.py"}

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel in self.WHITELIST:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "random."
                    ):
                        yield self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            "import-random",
                            "the stdlib random module (global shared state) "
                            "is only allowed in runtime/faults.py",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "import-random",
                    "the stdlib random module (global shared state) is "
                    "only allowed in runtime/faults.py",
                )
            elif isinstance(node, ast.Call):
                if (
                    _call_name(node) == "default_rng"
                    and not node.args
                    and not node.keywords
                ):
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        "default_rng",
                        "default_rng() without a seed is OS-entropy seeded "
                        "and breaks run-to-run reproducibility",
                    )


# ----------------------------------------------------------------------
# REP101 -- hot loops must *reach* a budget checkpoint (interprocedural)
# ----------------------------------------------------------------------
class BudgetReachabilityRule(Rule):
    """Instance-sized loops in hot-path modules must reach ``checkpoint()``.

    The deadline runtime (PR 3) is cooperative: a hot loop that never
    reaches :func:`repro.runtime.budget.checkpoint` cannot be
    interrupted, so one such loop defeats every ``--deadline`` above it.
    The rule flags functions in the hot-path modules (``network/``,
    ``flow/``, ``serve/``, ``core/wma.py``) that run data-dependent loops
    (``while``, or ``for`` over anything but a literal/constant-range
    iterable) with no checkpoint on any path.  A function is compliant
    if

    * it (or an enclosing def) calls ``*checkpoint*``/``tick``
      lexically -- the legacy REP005 scope check; or
    * any call in its body resolves, via the whole-program call graph,
      to a function that transitively reaches a checkpoint
      (``ws.run()`` checkpoints, so ``many_source_lengths`` and
      ``distance_matrix`` are clean without a local call).

    That reachability check is what retired lexical REP005's
    caller-checkpointed false positives and promoted the rule from
    warning to **error**.  Construction-time loops that genuinely run
    before any budget exists still need an explicit
    ``# reprolint: disable=REP101`` with a rationale comment.
    """

    id = "REP101"
    severity = "error"
    title = "hot loop cannot reach a budget checkpoint"
    hint = (
        "call repro.runtime.budget.checkpoint() in the loop (cheap no-op "
        "without an active budget) or call through a checkpointing "
        "kernel; suppress with '# reprolint: disable=REP101' only for "
        "construction-time loops"
    )

    HOT_PREFIXES = ("network/", "flow/", "serve/")
    HOT_FILES = {"core/wma.py"}
    _BOUNDED_CALLS = {"range", "enumerate", "zip", "reversed"}

    def start(self) -> None:
        # (rel, module.qual node id, qual, def line, def col, loop line)
        self._candidates: list[tuple[str, str, str, int, int, int]] = []

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        if not (
            ctx.rel.startswith(self.HOT_PREFIXES) or ctx.rel in self.HOT_FILES
        ):
            return iter(())
        module = module_name(ctx.rel)
        for func, qual, chain in _iter_functions(ctx.tree):
            if self._checkpoints(func) or any(
                self._checkpoints(outer, shallow=True) for outer in chain
            ):
                continue
            loop = self._first_hot_loop(func)
            if loop is not None:
                node_id = f"{module}.{qual}" if module else qual
                self._candidates.append(
                    (
                        ctx.rel,
                        node_id,
                        qual,
                        func.lineno,
                        func.col_offset,
                        loop.lineno,
                    )
                )
        return iter(())

    def finalize(self) -> Iterator[Finding]:
        calls = self.project.calls
        reaching = calls.checkpoint_reaching()
        out = calls.out_edges()
        for rel, node_id, qual, line, col, loop_line in self._candidates:
            if any(callee in reaching for callee in out.get(node_id, ())):
                continue
            yield self.finding(
                rel,
                line,
                col,
                qual,
                f"{qual}() runs an instance-sized loop (line {loop_line}) "
                f"and no call path from the function reaches a budget "
                f"checkpoint",
            )

    @classmethod
    def _checkpoints(
        cls,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        shallow: bool = False,
    ) -> bool:
        nodes: Iterable[ast.AST] = (
            _owned_nodes(func) if shallow else ast.walk(func)
        )
        for node in nodes:
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if "checkpoint" in name or name == "tick":
                    return True
        return False

    @classmethod
    def _first_hot_loop(
        cls, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> ast.While | ast.For | None:
        for node in _owned_nodes(func):
            if isinstance(node, ast.While):
                return node
            if isinstance(node, ast.For) and cls._data_dependent(node.iter):
                return node
        return None

    @classmethod
    def _data_dependent(cls, expr: ast.expr) -> bool:
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            return any(
                not isinstance(e, ast.Constant) and cls._data_dependent(e)
                for e in expr.elts
            )
        if isinstance(expr, ast.Constant):
            return False
        if isinstance(expr, ast.Call):
            if _call_name(expr) in cls._BOUNDED_CALLS:
                return any(cls._data_dependent(a) for a in expr.args)
            return True
        return True


# ----------------------------------------------------------------------
# REP006 -- no mutable defaults, no bare except
# ----------------------------------------------------------------------
class MutableDefaultAndBareExceptRule(Rule):
    """No mutable default arguments and no bare ``except:`` anywhere.

    Mutable defaults are shared across calls (the classic aliasing bug);
    bare ``except`` swallows ``KeyboardInterrupt``/``SystemExit`` and --
    in this codebase -- :class:`~repro.errors.BudgetExceeded`, which
    must always reach the runtime's fallback chain.
    """

    id = "REP006"
    severity = "error"
    title = "mutable default argument or bare except"
    hint = (
        "default to None and create the container inside the function; "
        "catch a concrete exception type instead of bare except"
    )

    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        for func, qual, _chain in _iter_functions(ctx.tree):
            defaults = list(func.args.defaults) + [
                d for d in func.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx,
                        default.lineno,
                        default.col_offset,
                        qual,
                        f"{qual}() has a mutable default argument "
                        f"(shared across calls)",
                    )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "bare-except",
                    "bare except swallows SystemExit/KeyboardInterrupt "
                    "and BudgetExceeded",
                )

    @classmethod
    def _is_mutable(cls, node: ast.expr) -> bool:
        if isinstance(
            node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                   ast.SetComp)
        ):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in cls._MUTABLE_CALLS
        )


# ----------------------------------------------------------------------
# REP102 -- the declared architecture layering holds
# ----------------------------------------------------------------------
class LayeringRule(Rule):
    """Eager imports must respect the declared layer DAG.

    The contract (rank table in :mod:`repro.analysis.graphs.layering`)
    is the roadmap's ``errors/obs -> network -> flow -> {baselines,
    core} -> runtime -> bench/cli`` DAG at module granularity: an eager
    (module-top-level) import may only reach *down* the stack.  Lazy
    imports (function-local, ``TYPE_CHECKING``, PEP 562 ``__getattr__``)
    are exempt -- they are the sanctioned way to reach up.  The rule
    also flags eager import *cycles*, and holds ``analysis/`` to its
    stdlib-only contract so the linter runs on a tree that cannot even
    import.  Violations name the offending import chain.
    """

    id = "REP102"
    severity = "error"
    title = "architecture layering violation"
    hint = (
        "import lazily (inside the function that needs it, or under "
        "TYPE_CHECKING) or move the dependency into a lower layer; the "
        "rank table lives in repro/analysis/graphs/layering.py"
    )

    def finalize(self) -> Iterator[Finding]:
        graph = self.project.imports
        for violation in check_layering(graph):
            rel = self.project.rel_of_module(violation.module)
            if not rel:
                continue
            yield self.finding(
                rel,
                violation.line,
                0,
                "->".join(violation.chain),
                violation.message,
            )


# ----------------------------------------------------------------------
# REP103 -- no shared-state mutation on parallel/cache read paths
# ----------------------------------------------------------------------
class SharedStateSafetyRule(Rule):
    """Worker/cache read paths must not mutate ``Network`` state.

    The process-parallel distance engine (PR 2) forks workers that
    share a ``Network`` via copy-on-write and shared-memory CSR blocks,
    and the distance cache keys on ``Network.fingerprint`` -- a read
    path that mutates the network (even a memo write) corrupts results
    silently or defeats fork-time page sharing.  The rule statically
    discovers worker entry points (functions passed as ``initializer=``
    or ``target=`` keywords, or as the first argument of a
    ``.map``/``.imap``/``.starmap``-style method call) plus the
    distance-cache read path, walks everything reachable in the call
    graph (including property getters), and reports every *direct*
    mutation effect whose root is typed ``Network``.

    Suppressions for this rule **require a justification**::

        # reprolint: disable=REP103 -- memo is materialized pre-fork

    A bare ``disable=REP103`` is deliberately ignored by the engine.
    """

    id = "REP103"
    severity = "error"
    title = "shared-state mutation on a parallel/cache read path"
    hint = (
        "make the write happen before the pool forks (see "
        "Network.materialize_caches) or move it off the read path; "
        "suppress only with a justification: "
        "'# reprolint: disable=REP103 -- <reason>'"
    )

    #: Class names whose instances are shared across workers/cache keys.
    PROTECTED_TYPES = ("Network",)
    #: Method names whose first positional argument is a worker function.
    _MAP_METHODS = frozenset(
        {"map", "imap", "imap_unordered", "map_async", "starmap"}
    )
    #: Keyword arguments that carry a worker entry point.
    _ENTRY_KWARGS = frozenset({"initializer", "target"})
    #: Repo-specific read paths that behave like worker entries.
    EXTRA_ENTRY_NODES = ("network.distcache.DistanceCache.lengths",)
    #: Constructor-style methods: their ``self`` is the object being
    #: built, which no other process can see yet.
    _FRESH_OBJECT_METHODS = frozenset(
        {"__init__", "__new__", "__post_init__", "__setstate__"}
    )

    def start(self) -> None:
        # (module, function name referenced at a fan-out site)
        self._entry_refs: list[tuple[str, str]] = []

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        module = module_name(ctx.rel)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            for keyword in node.keywords:
                if keyword.arg in self._ENTRY_KWARGS and isinstance(
                    keyword.value, ast.Name
                ):
                    self._entry_refs.append((module, keyword.value.id))
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self._MAP_METHODS
                and node.args
                and isinstance(node.args[0], ast.Name)
            ):
                self._entry_refs.append((module, node.args[0].id))
        return iter(())

    def _entry_nodes(self) -> list[str]:
        calls = self.project.calls
        entries: set[str] = set()
        for module, name in self._entry_refs:
            node_id = calls.lookup_function(module, name)
            if node_id is not None:
                entries.add(node_id)
        for node_id in self.EXTRA_ENTRY_NODES:
            if node_id in calls.functions:
                entries.add(node_id)
        return sorted(entries)

    def finalize(self) -> Iterator[Finding]:
        calls = self.project.calls
        effects = self.project.effects
        entries = self._entry_nodes()
        if not entries:
            return
        reachable = calls.reachable_from(entries)
        reported: set[tuple[str, int, str]] = set()
        for node_id in sorted(reachable):
            info = calls.functions.get(node_id)
            if info is None:
                continue
            fresh_self = (
                info.qualname.rsplit(".", 1)[-1] in self._FRESH_OBJECT_METHODS
            )
            for effect in effects.mutations(node_id, direct_only=True):
                if fresh_self and effect.root == "self":
                    continue
                if not self._protected_root(info, effect.root):
                    continue
                rel = self.project.rel_of_module(info.module)
                key = (rel, effect.line, effect.detail)
                if not rel or key in reported:
                    continue
                reported.add(key)
                entry = self._nearest_entry(calls, entries, node_id)
                chain = calls.path_between(entry, node_id)
                yield self.finding(
                    rel,
                    effect.line,
                    0,
                    info.qualname,
                    f"{info.qualname}() mutates shared Network state "
                    f"({effect.kind} on {effect.root}"
                    f"{'.' + effect.detail if effect.detail else ''}) but "
                    f"is reachable from the parallel/cache read path "
                    f"{' -> '.join(chain) if chain else entry}",
                )

    def _protected_root(self, info: FunctionInfo, root: str) -> bool:
        if root == "self":
            simple = info.class_key.rsplit(".", 1)[-1]
            return simple in self.PROTECTED_TYPES
        if root.startswith("param:"):
            key = info.param_types.get(root[len("param:"):], "")
            return key.rsplit(".", 1)[-1] in self.PROTECTED_TYPES
        return False

    @staticmethod
    def _nearest_entry(
        calls: CallGraph, entries: list[str], node_id: str
    ) -> str:
        best = entries[0]
        best_len = 0
        for entry in entries:
            path = calls.path_between(entry, node_id)
            if path and (best_len == 0 or len(path) < best_len):
                best, best_len = entry, len(path)
        return best


# ----------------------------------------------------------------------
# REP104 -- no dead public exports
# ----------------------------------------------------------------------
class DeadExportRule(Rule):
    """Module-level public defs must be referenced from somewhere.

    A public function or class that no code, test, example, benchmark,
    ``__all__`` list, or registry string mentions is dead API surface:
    it rots unreviewed and widens the maintenance contract for nothing.
    The rule scans every identifier occurrence (names, attributes,
    string constants, import aliases) across the linted tree *and* the
    repo's usage roots (``tests/``, ``examples/``, ``benchmarks/``,
    located via the nearest ``pyproject.toml``), and flags module-level
    public ``def``/``class`` symbols whose name appears nowhere outside
    their definition.  Modules that nobody imports are exempt (they are
    roots of their own, e.g. scripts), as are dunder names and
    ``main``-style CLI entry points referenced from packaging metadata.
    """

    id = "REP104"
    severity = "error"
    title = "dead public export"
    hint = (
        "delete the symbol, make it private (_name), or wire it into "
        "the API surface (__all__, SOLVERS, CLI, tests)"
    )

    #: Names referenced from outside Python source (pyproject entry
    #: points, docs); never flagged.
    EXEMPT_NAMES = frozenset({"main"})
    _USAGE_DIRS = ("tests", "examples", "benchmarks")
    _WORD_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

    def start(self) -> None:
        # (module, rel, name, line, col)
        self._defs: list[tuple[str, str, str, int, int]] = []
        self._used: set[str] = set()
        self._root: Path | None = None

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        if self._root is None:
            depth = ctx.rel.count("/")
            self._root = ctx.path.parents[depth]
        module = module_name(ctx.rel)
        for node in ctx.tree.body:
            self._collect_defs(module, ctx.rel, node)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                self._used.add(node.id)
            elif isinstance(node, ast.Attribute):
                self._used.add(node.attr)
            elif isinstance(node, ast.Constant) and isinstance(
                node.value, str
            ):
                if self._WORD_RE.fullmatch(node.value):
                    self._used.add(node.value)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    self._used.add(alias.name.split(".")[-1])
                    if alias.asname:
                        self._used.add(alias.asname)
        return iter(())

    def _collect_defs(self, module: str, rel: str, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            name = node.name
            if not name.startswith("_") and name not in self.EXEMPT_NAMES:
                self._defs.append(
                    (module, rel, name, node.lineno, node.col_offset)
                )
        elif isinstance(node, (ast.If, ast.Try)):
            sub: list[ast.stmt] = list(node.body)
            if isinstance(node, ast.Try):
                for handler in node.handlers:
                    sub.extend(handler.body)
                sub.extend(node.finalbody)
            sub.extend(node.orelse)
            for child in sub:
                self._collect_defs(module, rel, child)

    def _external_usage(self) -> set[str]:
        used: set[str] = set()
        if self._root is None:
            return used
        repo = None
        probe = self._root
        for _ in range(4):
            if (probe / "pyproject.toml").is_file():
                repo = probe
                break
            if probe.parent == probe:
                break
            probe = probe.parent
        if repo is None:
            return used
        for dirname in self._USAGE_DIRS:
            base = repo / dirname
            if not base.is_dir():
                continue
            for path in base.rglob("*.py"):
                try:
                    text = path.read_text(encoding="utf-8")
                except (OSError, UnicodeDecodeError):
                    continue
                used.update(self._WORD_RE.findall(text))
        return used

    def finalize(self) -> Iterator[Finding]:
        imports = self.project.imports
        imported_modules = {
            edge.dst for edge in imports.internal_edges()
        }
        used = self._used | self._external_usage()
        for module, rel, name, line, col in sorted(self._defs):
            if module and module not in imported_modules:
                continue  # nobody imports the module; it is its own root
            if name in used:
                continue
            yield self.finding(
                rel,
                line,
                col,
                name,
                f"public symbol {name!r} is referenced nowhere -- not in "
                f"the tree, __all__, registries, tests, examples, or "
                f"benchmarks",
            )


#: Rule registry in id order; ``repro lint --list-rules`` prints this.
#: The path-sensitive tier (REP105..REP108) registers itself through
#: :func:`default_rules` -- :mod:`repro.analysis.pathrules` subclasses
#: :class:`Rule`, so importing it here eagerly would be a cycle.
RULES: tuple[type[Rule], ...] = (
    ObsNameRegistryRule,
    SolverRegistrationRule,
    WallClockOwnershipRule,
    SeededRandomnessRule,
    MutableDefaultAndBareExceptRule,
    BudgetReachabilityRule,
    LayeringRule,
    SharedStateSafetyRule,
    DeadExportRule,
)


def default_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in id order."""
    from repro.analysis.pathrules import PATH_RULES
    from repro.analysis.perfrules import PERF_RULES

    return [cls() for cls in (*RULES, *PATH_RULES, *PERF_RULES)]
