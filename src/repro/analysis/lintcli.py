"""Command-line front end for reprolint.

Reachable two ways with identical semantics::

    repro lint [root] [--format text|json] [--baseline FILE] ...
    python -m repro.analysis [same flags]

Exit codes: ``0`` clean (only baselined/suppressed findings), ``1`` at
least one new finding (or stale baseline entries under ``--strict``),
``2`` usage errors.  JSON mode writes the full report (schema pinned by
``tests/test_reprolint.py``) to stdout or ``--output``, which the CI
``static-analysis`` job uploads as an artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.baseline import load_baseline, save_baseline
from repro.analysis.cache import (
    LintCache,
    default_cache_path,
    dependents_closure,
)
from repro.analysis.costmodel import (
    DEFAULT_CEILING,
    CostModel,
    find_budgets_file,
    load_budgets,
)
from repro.analysis.engine import LintEngine, default_root
from repro.analysis.reports import GRAPH_FORMATS, GRAPH_KINDS, render_graph


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``lint`` flags to ``parser``."""
    parser.add_argument(
        "root",
        nargs="?",
        default=None,
        help="directory to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json emits the machine-readable schema)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="ratchet baseline JSON (default: reprolint-baseline.json "
        "beside the source tree when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline and gate at zero findings",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to exactly the current findings "
        "(the only sanctioned way to change it)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the report to this file instead of stdout",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail (exit 1) on stale baseline entries",
    )
    parser.add_argument(
        "--graph",
        choices=GRAPH_KINDS,
        default=None,
        help="export a whole-program graph instead of linting "
        "(imports: module import graph with layer ranks; calls: "
        "interprocedural call graph; cfg: per-function control-flow "
        "graphs with exception edges)",
    )
    parser.add_argument(
        "--graph-format",
        choices=GRAPH_FORMATS,
        default="json",
        help="graph export format (json or GraphViz dot)",
    )
    parser.add_argument(
        "--graph-function",
        default="",
        metavar="SUBSTR",
        help="with --graph cfg: only render functions whose node id "
        "(module.Qual.name) contains this substring",
    )
    parser.add_argument(
        "--ratchet-check",
        metavar="OLD_BASELINE",
        default=None,
        help="compare the current baseline against an older copy (e.g. "
        "the merge base's) and fail if any key appeared or grew -- the "
        "baseline may only shrink",
    )
    parser.add_argument(
        "--cost",
        action="store_true",
        help="export the hot-path cost tree instead of linting "
        "(interprocedural loop-cost summaries; format follows "
        "--graph-format)",
    )
    parser.add_argument(
        "--cost-ratchet",
        metavar="OLD_BUDGETS",
        default=None,
        help="compare cost-budgets.toml against an older copy (e.g. the "
        "merge base's) and fail if any ceiling appeared or grew -- "
        "budget growth must ride a PR that visibly changes the file",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental result cache (.lint-cache/)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="FILE",
        help="incremental cache file (default: .lint-cache/cache.json "
        "beside pyproject.toml)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="only report findings in git-changed files (working tree "
        "vs HEAD, plus untracked) and their transitive importers",
    )
    parser.add_argument(
        "--since",
        metavar="REV",
        default=None,
        help="like --changed, diffing the working tree against REV",
    )


def _default_baseline_path(root: Path) -> Path | None:
    """Locate ``reprolint-baseline.json`` near ``root`` (repo layouts).

    Walks up a few levels from the linted root so both a repo checkout
    (``src/repro`` -> repo root) and an explicit root argument find the
    committed file without configuration.
    """
    for candidate_dir in (root, *root.parents[:3]):
        candidate = candidate_dir / "reprolint-baseline.json"
        if candidate.exists():
            return candidate
    return None


def ratchet_check(
    old_path: str | Path, new_path: str | Path
) -> list[str]:
    """Keys where ``new_path``'s baseline grew relative to ``old_path``.

    The ratchet contract: a baseline entry may disappear or shrink, never
    appear or grow.  Returns human-readable violation lines (empty when
    the ratchet holds).  A missing *new* file counts as an empty baseline
    (fully shrunk); a missing *old* file means everything new is growth.
    """
    old = load_baseline(old_path) if Path(old_path).exists() else {}
    new = load_baseline(new_path) if Path(new_path).exists() else {}
    violations: list[str] = []
    for key in sorted(new):
        before = old.get(key, 0)
        if new[key] > before:
            violations.append(
                f"{key}: {before} -> {new[key]}"
                + ("" if before else " (new baseline entry)")
            )
    return violations


def budget_ratchet_check(
    old_path: str | Path, new_path: str | Path | None
) -> list[str]:
    """Ceilings that appeared or grew between two budget files.

    Mirrors the baseline ratchet: a cost ceiling may disappear or
    shrink silently, but growth must ride a PR that changes
    ``cost-budgets.toml`` -- CI runs this check only when the file did
    *not* change, so any growth it sees slipped in unreviewed.
    """
    old = load_budgets(old_path)
    new = load_budgets(new_path) if new_path is not None else {}
    violations: list[str] = []
    for module in sorted(new):
        before = old.get(module, DEFAULT_CEILING)
        if new[module] > before:
            violations.append(
                f"{module}: depth {before} -> {new[module]}"
                + ("" if module in old else " (new budget entry)")
            )
    return violations


def _rel_import_edges_of(engine: LintEngine) -> dict[str, list[str]]:
    """Importer-path -> imported-paths of the engine's tree (no cache)."""
    from repro.analysis.engine import _rel_import_edges

    return _rel_import_edges(engine.parse_project())


def _git_changed_rels(root: Path, since: str | None) -> set[str] | None:
    """Root-relative paths of files git considers changed (or None).

    Changed = working tree vs ``since`` (default ``HEAD``), plus
    untracked files; only paths under the linted root are kept.
    Returns ``None`` when ``root`` is not inside a git checkout or git
    fails, so callers can fall back to an unfiltered report.
    """
    repo = next(
        (
            d
            for d in (root.resolve(), *root.resolve().parents)
            if (d / ".git").exists()
        ),
        None,
    )
    if repo is None:
        return None
    names: set[str] = set()
    commands = [
        ["git", "diff", "--name-only", since or "HEAD", "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ]
    for command in commands:
        try:
            proc = subprocess.run(
                command,
                cwd=repo,
                capture_output=True,
                text=True,
                check=False,
                timeout=30,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        names.update(
            line.strip() for line in proc.stdout.splitlines() if line.strip()
        )
    prefix = root.resolve().relative_to(repo).as_posix()
    prefix = "" if prefix == "." else prefix + "/"
    return {
        name[len(prefix) :]
        for name in names
        if name.startswith(prefix) or not prefix
    }


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed arguments."""
    from repro.analysis.rules import default_rules

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.id}  [{rule.severity}]  {rule.title}")
        return 0

    root = Path(args.root) if args.root else default_root()
    if not root.is_dir():
        print(f"reprolint: not a directory: {root}", file=sys.stderr)
        return 2

    if args.graph:
        project = LintEngine(root, rules=[]).parse_project()
        report = render_graph(
            project,
            args.graph,
            args.graph_format,
            function=getattr(args, "graph_function", ""),
        )
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(report + "\n")
            print(f"reprolint: wrote {args.output}")
        else:
            print(report)
        return 0

    if args.cost:
        project = LintEngine(root, rules=[]).parse_project()
        model = CostModel(project)
        budgets_file = find_budgets_file(root)
        budgets = load_budgets(budgets_file) if budgets_file else {}
        if args.graph_format == "dot":
            report = model.to_dot(budgets)
        else:
            report = json.dumps(
                model.as_dict(budgets), indent=2, sort_keys=True
            )
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(report + "\n")
            print(f"reprolint: wrote {args.output}")
        else:
            print(report)
        return 0

    if args.cost_ratchet:
        current_budgets = find_budgets_file(root)
        violations = budget_ratchet_check(args.cost_ratchet, current_budgets)
        if violations:
            print(
                "reprolint cost ratchet: budget ceilings grew without a "
                "visible cost-budgets.toml change:",
                file=sys.stderr,
            )
            for line in violations:
                print(f"  {line}", file=sys.stderr)
            return 1
        print("reprolint cost ratchet: no ceiling grew (ok)")
        return 0

    if args.ratchet_check:
        current = (
            Path(args.baseline)
            if args.baseline
            else _default_baseline_path(root)
        )
        if current is None:
            # No baseline file at all -- trivially fully shrunk.
            print("reprolint ratchet: no current baseline (ok)")
            return 0
        violations = ratchet_check(args.ratchet_check, current)
        if violations:
            print(
                "reprolint ratchet: baseline grew (it may only shrink):",
                file=sys.stderr,
            )
            for line in violations:
                print(f"  {line}", file=sys.stderr)
            return 1
        print("reprolint ratchet: baseline did not grow (ok)")
        return 0

    rules = default_rules()
    if args.rules:
        wanted = {r.strip().upper() for r in args.rules.split(",") if r.strip()}
        known = {r.id for r in rules}
        unknown = sorted(wanted - known)
        if unknown:
            print(
                f"reprolint: unknown rule id(s): {', '.join(unknown)}",
                file=sys.stderr,
            )
            return 2
        rules = [r for r in rules if r.id in wanted]

    baseline_path: Path | None
    if args.no_baseline:
        baseline_path = None
    elif args.baseline:
        baseline_path = Path(args.baseline)
    else:
        baseline_path = _default_baseline_path(root)

    cache: LintCache | None = None
    if not args.no_cache:
        cache_path = (
            Path(args.cache) if args.cache else default_cache_path(root)
        )
        cache = LintCache(cache_path)

    engine = LintEngine(root, rules=rules)
    result = engine.run(
        baseline=load_baseline(baseline_path) if baseline_path else None,
        cache=cache,
    )

    if args.changed or args.since:
        changed = _git_changed_rels(root, args.since)
        if changed is None:
            print(
                "reprolint: --changed needs a git checkout; "
                "reporting everything",
                file=sys.stderr,
            )
        else:
            edges = (
                cache.import_edges()
                if cache is not None
                else _rel_import_edges_of(engine)
            )
            affected = changed | dependents_closure(changed, edges)
            result.findings = [
                f for f in result.findings if f.path in affected
            ]

    if args.update_baseline:
        target = baseline_path or (root / "reprolint-baseline.json")
        entries = save_baseline(target, result.findings)
        print(
            f"reprolint: wrote {target} ({sum(entries.values())} "
            f"grandfathered finding(s) across {len(entries)} key(s))"
        )
        return 0

    report = (
        result.to_json() if args.format == "json" else result.format_text()
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
        print(f"reprolint: wrote {args.output}")
    else:
        print(report)

    if not result.ok:
        return 1
    if args.strict and result.stale_baseline:
        return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro.analysis``."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="repo-specific static analysis (reprolint)",
    )
    add_lint_arguments(parser)
    try:
        return run_from_args(parser.parse_args(argv))
    except BrokenPipeError:
        # Downstream pager/head closed the pipe (e.g. ``--graph ... | head``).
        # Detach stdout so the interpreter's shutdown flush does not raise too.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
