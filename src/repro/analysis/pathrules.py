"""Path-sensitive reprolint rules (REP105..REP108) over per-function CFGs.

These rules ride the third analysis tier
(:mod:`repro.analysis.graphs.cfg` + :mod:`~repro.analysis.graphs.dataflow`):
candidates are collected cheaply during per-file :meth:`Rule.visit`, and
the expensive CFG/dataflow work happens once in :meth:`Rule.finalize`,
against CFGs built on demand and shared through
``AnalysisProject.cfgs`` -- a function examined by three rules is
translated to a CFG exactly once.

All four are **error** severity and their suppressions require a
``-- <reason>`` justification (:data:`repro.analysis.engine.JUSTIFIED_RULES`):
each one guards a serving-stack invariant (leaked shared-memory under
exception, a swallowed ``BudgetExceeded``, set-order nondeterminism,
an incomplete ``ServeResult``) where a silent opt-out is itself a bug.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import FileContext
from repro.analysis.findings import Finding
from repro.analysis.graphs import (
    CFG,
    DataflowProblem,
    build_cfg,
    gen_kill,
    header_nodes,
    module_name,
    solve,
)
from repro.analysis.rules import (
    Rule,
    _call_name,
    _dotted,
    _iter_functions,
    _owned_nodes,
)

__all__ = [
    "BudgetExceptionSafetyRule",
    "MustReleaseResourceRule",
    "PATH_RULES",
    "ServeStateMachineRule",
    "SetOrderDeterminismRule",
]

_FuncDef = ast.FunctionDef | ast.AsyncFunctionDef


def _final_name(node: ast.expr | None) -> str:
    """Last identifier of a Name/Attribute chain (``c`` for ``a.b.c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _exception_names(node: ast.expr | None) -> set[str]:
    """Exception class names an ``except`` clause matches (lexically)."""
    if node is None:
        return set()
    if isinstance(node, ast.Tuple):
        names = set()
        for elt in node.elts:
            names |= _exception_names(elt)
        return names
    name = _final_name(node)
    return {name} if name else set()


def _always_raises(body: list[ast.stmt]) -> bool:
    """Whether every path through ``body`` ends in a ``raise`` (structural).

    Conservative: only straight ``raise`` statements and fully-raising
    ``if``/``else`` splits count; anything it cannot prove is treated as
    falling through.
    """
    for stmt in body:
        if isinstance(stmt, ast.Raise):
            return True
        if isinstance(stmt, ast.Return):
            return False
        if isinstance(stmt, ast.If) and stmt.orelse:
            if _always_raises(stmt.body) and _always_raises(stmt.orelse):
                return True
    return False


class _PathRule(Rule):
    """Shared plumbing: candidate functions keyed by call-graph node id."""

    def _node_id(self, rel: str, qual: str) -> str:
        module = module_name(rel)
        return f"{module}.{qual}" if module else qual

    def _cfg_for(self, node_id: str, func: _FuncDef) -> CFG:
        cfg = self.project.cfgs.get(node_id)
        if cfg is None:
            # Function unknown to the call graph (e.g. conditionally
            # defined); build privately rather than skip.
            cfg = build_cfg(func, name=node_id)
        return cfg


# ----------------------------------------------------------------------
# REP105 -- must-release resource lifecycle
# ----------------------------------------------------------------------
class MustReleaseResourceRule(_PathRule):
    """Locally-owned resources must be released on *every* path.

    A ``SharedMemory`` segment, process pool, opened file/``.npz``
    handle, or tracer span acquired into a local variable must reach a
    release call (``close``/``unlink``/``terminate``/``join``/...) on
    all paths out of the function -- including the exception edges the
    CFG threads from every raising statement.  The serving stack keeps
    these objects alive across batches, so one exception-path leak per
    request is an unbounded leak under traffic.

    The analysis is a forward **may**-outstanding dataflow: acquisition
    gens an obligation, a release (or entering the object in a ``with``
    item) kills it, and the exception edge out of the acquisition
    statement itself carries nothing (if the constructor raised, there
    is nothing to free).  An obligation that *may* reach ``exit`` or
    ``raise_exit`` is a finding.  Objects that escape the function --
    passed to a call, returned/yielded, stored on an attribute or into
    a container, aliased -- transfer ownership and are exempt, as is
    anything managed by ``with``.
    """

    id = "REP105"
    severity = "error"
    title = "resource not released on all paths"
    hint = (
        "release in a finally: or use a with-statement; if ownership "
        "moves elsewhere make the transfer explicit (store/return/pass "
        "it), or suppress with a justification: "
        "'# reprolint: disable=REP105 -- <reason>'"
    )

    #: call-name / dotted-suffix -> human resource kind.
    _ACQUIRERS = {
        "SharedMemory": "shared-memory segment",
        "Pool": "process pool",
        "open": "file handle",
        "np.load": "npz handle",
        "numpy.load": "npz handle",
        "span": "tracer span",
        "start_span": "tracer span",
    }
    _RELEASES = frozenset(
        {"close", "unlink", "terminate", "join", "shutdown", "release",
         "end", "stop", "__exit__"}
    )

    def start(self) -> None:
        # (rel, node_id, func, [(var, line, kind)])
        self._candidates: list[
            tuple[str, str, _FuncDef, list[tuple[str, int, str]]]
        ] = []

    def _acquisition_kind(self, value: ast.expr) -> str | None:
        if not isinstance(value, ast.Call):
            return None
        dotted = _dotted(value.func)
        name = _call_name(value)
        if dotted in self._ACQUIRERS:
            return self._ACQUIRERS[dotted]
        if name in ("SharedMemory", "Pool", "span", "start_span"):
            return self._ACQUIRERS[name]
        if name == "open" and isinstance(value.func, ast.Name):
            return self._ACQUIRERS["open"]
        return None

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        for func, qual, _chain in _iter_functions(ctx.tree):
            acquisitions: list[tuple[str, int, str]] = []
            for stmt in _owned_nodes(func):
                if not isinstance(stmt, ast.Assign):
                    continue
                if len(stmt.targets) != 1 or not isinstance(
                    stmt.targets[0], ast.Name
                ):
                    continue
                kind = self._acquisition_kind(stmt.value)
                if kind is not None:
                    acquisitions.append(
                        (stmt.targets[0].id, stmt.lineno, kind)
                    )
            if acquisitions:
                self._candidates.append(
                    (ctx.rel, self._node_id(ctx.rel, qual), func, acquisitions)
                )
        return iter(())

    def finalize(self) -> Iterator[Finding]:
        for rel, node_id, func, acquisitions in self._candidates:
            escaped = self._escaped_names(func)
            tracked = [
                (var, line, kind)
                for var, line, kind in acquisitions
                if var not in escaped
            ]
            if not tracked:
                continue
            cfg = self._cfg_for(node_id, func)
            facts = {
                (var, line): kind for var, line, kind in tracked
            }
            gen: dict[int, frozenset[object]] = {}
            kill: dict[int, frozenset[object]] = {}
            for stmt, block in cfg.block_of_stmt.items():
                gens = frozenset(
                    key
                    for key in facts
                    if self._acquires_here(stmt, key)
                )
                if gens:
                    gen[block] = gen.get(block, frozenset()) | gens
                kills = frozenset(
                    key for key in facts if self._releases(stmt, key[0])
                )
                if kills:
                    kill[block] = kill.get(block, frozenset()) | kills
            result = solve(
                cfg, DataflowProblem(flow=gen_kill(gen, kill))
            )
            leaked_exit = result.value_into(cfg.exit)
            leaked_raise = result.value_into(cfg.raise_exit)
            for key in sorted(facts, key=lambda k: (k[1], k[0])):
                var, line = key
                kind = facts[key]
                if key in leaked_exit:
                    where = "a normal return path"
                elif key in leaked_raise:
                    where = "an exception path"
                else:
                    continue
                yield self.finding(
                    rel,
                    line,
                    0,
                    f"{func.name}.{var}",
                    f"{kind} {var!r} acquired here may leave "
                    f"{func.name}() unreleased along {where}",
                )

    def _acquires_here(
        self, stmt: ast.stmt, key: tuple[str, int]
    ) -> bool:
        var, line = key
        return (
            isinstance(stmt, ast.Assign)
            and stmt.lineno == line
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == var
        )

    def _releases(self, stmt: ast.stmt, var: str) -> bool:
        # Only the block's own effects count: walking the whole subtree
        # of an ``if`` header would credit a release that happens on
        # just one branch to the branch point itself.
        for node in header_nodes(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == var
                and node.func.attr in self._RELEASES
            ):
                return True
        # ``with shm:`` / ``with closing(shm):`` manage the release.
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                for node in ast.walk(item.context_expr):
                    if isinstance(node, ast.Name) and node.id == var:
                        return True
        # Rebinding the name ends the tracked object's window.
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == var:
                    return True
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == var:
                    return True
        return False

    @staticmethod
    def _escaped_names(func: _FuncDef) -> set[str]:
        """Names whose object leaves the function (ownership transfer)."""
        escaped: set[str] = set()

        def note(expr: ast.expr | None) -> None:
            if expr is None:
                return
            for node in ast.walk(expr):
                if isinstance(node, ast.Name):
                    escaped.add(node.id)

        for node in _owned_nodes(func):
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                note(node.value)
            elif isinstance(node, ast.Call):
                # A bare name passed to any call (except a method call
                # *on* the name itself) hands the object over --
                # ``self._blocks.append(shm)``, ``stack.enter_context(f)``.
                for arg in [*node.args, *[k.value for k in node.keywords]]:
                    if isinstance(arg, ast.Name):
                        escaped.add(arg.id)
            elif isinstance(node, ast.Assign):
                targets_escape = any(
                    isinstance(t, (ast.Attribute, ast.Subscript, ast.Tuple,
                                   ast.List))
                    for t in node.targets
                )
                if targets_escape or isinstance(node.value, ast.Name):
                    # stored on an object / unpacked, or aliased
                    note(node.value)
                elif isinstance(
                    node.value, (ast.List, ast.Tuple, ast.Dict, ast.Set)
                ):
                    note(node.value)
        return escaped


# ----------------------------------------------------------------------
# REP106 -- exception-safety of budget paths
# ----------------------------------------------------------------------
class BudgetExceptionSafetyRule(_PathRule):
    """Budget-checkpointed regions must not swallow ``BudgetExceeded``.

    The deadline runtime is cooperative end to end: a checkpoint raises
    :class:`~repro.errors.BudgetExceeded` and *every* frame between it
    and ``solve_with_fallback`` must let it pass.  Two clauses:

    * A broad handler (``except Exception``/``BaseException``/bare)
      guarding a try body that can raise ``BudgetExceeded`` -- a lexical
      checkpoint/``tick``/``raise BudgetExceeded``, or a resolved call
      into the call graph's checkpoint-reaching set -- must be preceded
      by a handler naming ``BudgetExceeded`` (or an ancestor:
      ``SolverError``/``ReproError``) or must itself re-raise on every
      path (structural check).
    * A handler that catches ``BudgetExceeded`` *by name* and salvages
      (does not always re-raise) must mark degradation before any
      return: on every CFG path from the handler entry to a ``return``,
      either ``...["degraded"] = ...`` runs, an attribute is stored, or
      a flag read elsewhere in the function is set.  Forward
      may-analysis: the "caught, unmarked" fact is genned at the
      handler entry and killed by a marking statement; a fact reaching
      a return block is a silent salvage.
    """

    id = "REP106"
    severity = "error"
    title = "budget path swallows or silently salvages BudgetExceeded"
    hint = (
        "add 'except BudgetExceeded: raise' before the broad handler "
        "(or re-raise inside it), and set meta['degraded'] on salvage "
        "returns; suppress with a justification: "
        "'# reprolint: disable=REP106 -- <reason>'"
    )

    _BROAD = frozenset({"Exception", "BaseException"})
    #: Catching any of these intercepts BudgetExceeded explicitly.
    _BUDGET_NAMES = frozenset({"BudgetExceeded", "SolverError", "ReproError"})

    def start(self) -> None:
        # (rel, node_id, func, try_node, handler)
        self._broad: list[
            tuple[str, str, _FuncDef, ast.Try, ast.ExceptHandler]
        ] = []
        # (rel, node_id, func, handler)
        self._salvage: list[
            tuple[str, str, _FuncDef, ast.ExceptHandler]
        ] = []

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        for func, qual, _chain in _iter_functions(ctx.tree):
            node_id = self._node_id(ctx.rel, qual)
            for stmt in _owned_nodes(func):
                if not isinstance(stmt, ast.Try):
                    continue
                budget_shielded = False
                for handler in stmt.handlers:
                    names = _exception_names(handler.type)
                    if names & self._BUDGET_NAMES:
                        if "BudgetExceeded" in names and not _always_raises(
                            handler.body
                        ):
                            self._salvage.append(
                                (ctx.rel, node_id, func, handler)
                            )
                        budget_shielded = True
                        continue
                    is_broad = handler.type is None or bool(
                        names & self._BROAD
                    )
                    if not is_broad or budget_shielded:
                        continue
                    if _always_raises(handler.body):
                        continue
                    self._broad.append(
                        (ctx.rel, node_id, func, stmt, handler)
                    )
        return iter(())

    def finalize(self) -> Iterator[Finding]:
        calls = self.project.calls
        reaching = calls.checkpoint_reaching()
        for rel, node_id, func, try_node, handler in self._broad:
            if not self._budget_region(node_id, func, try_node, reaching):
                continue
            yield self.finding(
                rel,
                handler.lineno,
                handler.col_offset,
                func.name,
                f"broad handler in {func.name}() guards a "
                f"budget-checkpointed region and may swallow "
                f"BudgetExceeded without re-raising",
            )
        for rel, node_id, func, handler in self._salvage:
            line = self._unmarked_return(node_id, func, handler)
            if line is None:
                continue
            yield self.finding(
                rel,
                line,
                0,
                func.name,
                f"{func.name}() returns after catching BudgetExceeded "
                f"(handler at line {handler.lineno}) without marking "
                f"degradation (e.g. meta['degraded'] = True) on that path",
            )

    def _budget_region(
        self,
        node_id: str,
        func: _FuncDef,
        try_node: ast.Try,
        reaching: set[str],
    ) -> bool:
        first = try_node.body[0].lineno
        last = max(
            getattr(s, "end_lineno", s.lineno) or s.lineno
            for s in try_node.body
        )
        params = {
            a.arg
            for a in (*func.args.posonlyargs, *func.args.args,
                      *func.args.kwonlyargs)
        }
        for stmt in try_node.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    name = _call_name(node)
                    if "checkpoint" in name or name == "tick":
                        return True
                    # Calling an injected callable (a bare parameter,
                    # e.g. ``solver(instance)``) is budget-opaque: any
                    # registered solver checkpoints.
                    if (
                        isinstance(node.func, ast.Name)
                        and node.func.id in params
                    ):
                        return True
                elif isinstance(node, ast.Name) and node.id == "BudgetExceeded":
                    return True
        return any(
            edge.callee in reaching
            for edge in self.project.calls.calls_within(node_id, first, last)
        )

    def _unmarked_return(
        self, node_id: str, func: _FuncDef, handler: ast.ExceptHandler
    ) -> int | None:
        """Line of a return reachable from ``handler`` with no marking."""
        cfg = self._cfg_for(node_id, func)
        entry = cfg.handler_entry.get(handler)
        if entry is None:
            return None
        fact = frozenset({("caught", handler.lineno)})
        flag_names = self._observable_flags(func)
        kill: dict[int, frozenset[object]] = {}
        for stmt, block in cfg.block_of_stmt.items():
            if self._marks_degraded(stmt, flag_names):
                kill[block] = fact
        result = solve(
            cfg,
            DataflowProblem(
                flow=gen_kill({entry: fact}, kill, gen_on_exc=True)
            ),
        )
        for stmt, block in sorted(
            cfg.block_of_stmt.items(), key=lambda kv: kv[0].lineno
        ):
            if isinstance(stmt, ast.Return) and (
                result.value_into(block) & fact
            ):
                return stmt.lineno
        return None

    @staticmethod
    def _observable_flags(func: _FuncDef) -> set[str]:
        """Local names whose value is *read* somewhere in the function."""
        return {
            node.id
            for node in ast.walk(func)
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
        }

    @staticmethod
    def _marks_degraded(stmt: ast.stmt, flag_names: set[str]) -> bool:
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            return False
        targets = (
            stmt.targets
            if isinstance(stmt, ast.Assign)
            else [stmt.target]
        )
        for target in targets:
            if isinstance(target, ast.Subscript):
                key = target.slice
                if (
                    isinstance(key, ast.Constant)
                    and key.value == "degraded"
                ):
                    return True
            elif isinstance(target, ast.Attribute):
                return True
            elif isinstance(target, ast.Name) and target.id in flag_names:
                return True
        return False


# ----------------------------------------------------------------------
# REP107 -- set-iteration order must not reach order-sensitive sinks
# ----------------------------------------------------------------------
class SetOrderDeterminismRule(Rule):
    """No iterating a set into an order-sensitive sink without ``sorted``.

    Set iteration order depends on insertion history and hash seeds, so
    a ``for x in some_set`` whose body appends to a list, pushes onto a
    heap, yields, or writes to a stream makes output order
    run-dependent -- the classic silent killer of the bit-identical
    reproduction contract.  The rule infers set-typed locals
    (literals, comprehensions, ``set()``/``frozenset()`` calls, set
    operators and methods, ``set[...]`` annotations), treats
    ``sorted()`` as the laundering point, and flags both tainted
    ``for`` loops containing a sink and direct materialisations
    (``list(s)``/``tuple(s)``/comprehensions over ``s``) that are not
    immediately consumed by an order-insensitive reducer
    (``sorted``/``sum``/``len``/``min``/``max``/``any``/``all``/...).
    """

    id = "REP107"
    severity = "error"
    title = "set iteration order flows into an order-sensitive sink"
    hint = (
        "iterate 'for x in sorted(s)' (or materialise with sorted(s)); "
        "if order is provably irrelevant, suppress with a "
        "justification: '# reprolint: disable=REP107 -- <reason>'"
    )

    _SET_CALLS = frozenset({"set", "frozenset"})
    _SET_METHODS = frozenset(
        {"union", "intersection", "difference", "symmetric_difference"}
    )
    _SINK_METHODS = frozenset(
        {"append", "appendleft", "write", "writelines", "put",
         "put_nowait", "add_row", "emit", "send"}
    )
    _SINK_CALLS = frozenset({"heappush", "heappush_max", "print"})
    #: Consumers for which iteration order is immaterial.
    _ORDER_FREE = frozenset(
        {"sorted", "set", "frozenset", "sum", "len", "min", "max", "any",
         "all", "Counter", "dict", "enumerate"}
    )

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        for func, qual, _chain in _iter_functions(ctx.tree):
            set_vars = self._set_typed_names(func)
            parents: dict[ast.AST, ast.AST] = {}
            for parent in ast.walk(func):
                for child in ast.iter_child_nodes(parent):
                    parents[child] = parent
            for node in _owned_nodes(func):
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    if not self._is_set_valued(node.iter, set_vars):
                        continue
                    sink = self._first_sink(node)
                    if sink is None:
                        continue
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        qual,
                        f"{qual}() iterates a set in nondeterministic "
                        f"order into an order-sensitive sink "
                        f"(line {sink.lineno})",
                    )
                elif isinstance(node, ast.Call):
                    name = _call_name(node)
                    if (
                        name in ("list", "tuple")
                        and isinstance(node.func, ast.Name)
                        and node.args
                        and self._is_set_valued(node.args[0], set_vars)
                        and not self._order_free_context(node, parents)
                    ):
                        yield self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            qual,
                            f"{qual}() materialises a set into an "
                            f"ordered {name} without sorted()",
                        )
                elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                    if any(
                        self._is_set_valued(g.iter, set_vars)
                        for g in node.generators
                    ) and not self._order_free_context(node, parents):
                        yield self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            qual,
                            f"{qual}() builds an ordered sequence by "
                            f"iterating a set without sorted()",
                        )

    @classmethod
    def _set_typed_names(cls, func: _FuncDef) -> set[str]:
        names: set[str] = set()
        for arg in (*func.args.posonlyargs, *func.args.args,
                    *func.args.kwonlyargs):
            if cls._is_set_annotation(arg.annotation):
                names.add(arg.arg)
        changed = True
        while changed:
            changed = False
            for node in _owned_nodes(func):
                target: ast.expr | None = None
                value: ast.expr | None = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target = node.target
                    if cls._is_set_annotation(node.annotation) and isinstance(
                        target, ast.Name
                    ):
                        if target.id not in names:
                            names.add(target.id)
                            changed = True
                    value = node.value
                elif isinstance(node, ast.AugAssign) and isinstance(
                    node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
                ):
                    target, value = node.target, node.value
                if (
                    isinstance(target, ast.Name)
                    and value is not None
                    and cls._set_valued_expr(value, names)
                    and target.id not in names
                ):
                    names.add(target.id)
                    changed = True
        return names

    @classmethod
    def _is_set_annotation(cls, ann: ast.expr | None) -> bool:
        if ann is None:
            return False
        text = ann.value if (
            isinstance(ann, ast.Constant) and isinstance(ann.value, str)
        ) else ""
        if not text:
            base = ann.value if isinstance(ann, ast.Subscript) else ann
            text = _dotted(base) if isinstance(
                base, (ast.Name, ast.Attribute)
            ) else ""
        text = text.split("[", 1)[0].rsplit(".", 1)[-1]
        return text in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet",
                        "MutableSet")

    @classmethod
    def _set_valued_expr(cls, expr: ast.expr, names: set[str]) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in names
        if isinstance(expr, ast.Call):
            if _call_name(expr) in cls._SET_CALLS:
                return True
            if (
                isinstance(expr.func, ast.Attribute)
                and expr.func.attr in cls._SET_METHODS
                and cls._set_valued_expr(expr.func.value, names)
            ):
                return True
            return False
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return cls._set_valued_expr(
                expr.left, names
            ) or cls._set_valued_expr(expr.right, names)
        return False

    @classmethod
    def _is_set_valued(cls, expr: ast.expr, names: set[str]) -> bool:
        return cls._set_valued_expr(expr, names)

    @classmethod
    def _first_sink(
        cls, loop: ast.For | ast.AsyncFor
    ) -> ast.AST | None:
        for stmt in loop.body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Yield, ast.YieldFrom)):
                    return node
                if not isinstance(node, ast.Call):
                    continue
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in cls._SINK_METHODS
                ):
                    return node
                if _call_name(node) in cls._SINK_CALLS:
                    return node
        return None

    @classmethod
    def _order_free_context(
        cls, node: ast.AST, parents: dict[ast.AST, ast.AST]
    ) -> bool:
        parent = parents.get(node)
        if isinstance(parent, ast.Call) and node in (
            *parent.args,
            *[k.value for k in parent.keywords],
        ):
            return _call_name(parent) in cls._ORDER_FREE
        # ``for x in (g for ...)`` over a generator is only a hazard if
        # the loop has a sink; the loop check handles that case.
        if isinstance(parent, (ast.For, ast.AsyncFor)) and isinstance(
            node, ast.GeneratorExp
        ):
            return True
        return False


# ----------------------------------------------------------------------
# REP108 -- serve state-machine completeness
# ----------------------------------------------------------------------
class ServeStateMachineRule(_PathRule):
    """``ServeResult`` completeness and mutation-record immutability.

    Three serve-package invariants:

    * every ``ServeResult(...)`` construction passes ``staleness=``
      explicitly -- the field is the consistency contract of the online
      engine and must never ride a default;
    * every function annotated ``-> ServeResult`` constructs one (or
      delegates via ``return <call>``) on **all** paths to a normal
      return -- a must-dataflow over the CFG, so an early ``return
      None`` arm or a fall-through path is caught even when the happy
      path is fine;
    * frozen mutation records (``CustomerArrive`` & co.) are never
      attribute-assigned after construction and ``object.__setattr__``
      never appears in serve code -- replaying a mutated record breaks
      the re-solve log.
    """

    id = "REP108"
    severity = "error"
    title = "serve state-machine violation"
    hint = (
        "construct ServeResult(staleness=...) on every path; build a "
        "new mutation record instead of assigning to a frozen one; "
        "suppress with a justification: "
        "'# reprolint: disable=REP108 -- <reason>'"
    )

    PREFIX = "serve/"
    _MUTATION_TYPES = frozenset(
        {"CustomerArrive", "CustomerDepart", "CapacityChange", "EdgeRetime",
         "Mutation"}
    )
    _RESULT = "ServeResult"
    _FACT = frozenset({"constructed"})

    def start(self) -> None:
        # (rel, node_id, func) for ``-> ServeResult`` functions
        self._result_funcs: list[tuple[str, str, _FuncDef]] = []

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.rel.startswith(self.PREFIX):
            return
        for func, qual, _chain in _iter_functions(ctx.tree):
            if self._returns_serveresult(func):
                self._result_funcs.append(
                    (ctx.rel, self._node_id(ctx.rel, qual), func)
                )
            frozen_vars = self._frozen_locals(func)
            for node in _owned_nodes(func):
                if isinstance(node, ast.Call):
                    if _call_name(node) == self._RESULT:
                        kwargs = {k.arg for k in node.keywords}
                        if "staleness" not in kwargs and None not in kwargs:
                            yield self.finding(
                                ctx,
                                node.lineno,
                                node.col_offset,
                                qual,
                                f"{qual}() constructs ServeResult without "
                                f"an explicit staleness= keyword",
                            )
                    elif _dotted(node.func) == "object.__setattr__":
                        yield self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            qual,
                            f"{qual}() uses object.__setattr__ -- frozen "
                            f"records must not be mutated after "
                            f"construction",
                        )
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in frozen_vars
                        ):
                            yield self.finding(
                                ctx,
                                target.lineno,
                                target.col_offset,
                                qual,
                                f"{qual}() assigns "
                                f"{target.value.id}.{target.attr} on a "
                                f"frozen mutation record",
                            )

    def _returns_serveresult(self, func: _FuncDef) -> bool:
        ann = func.returns
        if ann is None:
            return False
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            return ann.value.split("[", 1)[0].strip() == self._RESULT
        return _final_name(ann) == self._RESULT

    def _frozen_locals(self, func: _FuncDef) -> set[str]:
        frozen: set[str] = set()
        for arg in (*func.args.posonlyargs, *func.args.args,
                    *func.args.kwonlyargs):
            ann = arg.annotation
            name = ""
            if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                name = ann.value.split("[", 1)[0].strip().rsplit(".", 1)[-1]
            elif ann is not None:
                name = _final_name(
                    ann.value if isinstance(ann, ast.Subscript) else ann
                )
            if name in self._MUTATION_TYPES:
                frozen.add(arg.arg)
        for node in _owned_nodes(func):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
                and _call_name(node.value) in self._MUTATION_TYPES
            ):
                frozen.add(node.targets[0].id)
        return frozen

    def finalize(self) -> Iterator[Finding]:
        for rel, node_id, func in self._result_funcs:
            cfg = self._cfg_for(node_id, func)
            gen: dict[int, frozenset[object]] = {}
            for stmt, block in cfg.block_of_stmt.items():
                if self._constructs_result(stmt):
                    gen[block] = self._FACT
            result = solve(
                cfg,
                DataflowProblem(
                    flow=gen_kill(gen, {}, gen_on_exc=False),
                    may=False,
                    universe=self._FACT,
                ),
            )
            at_exit = result.block_in.get(cfg.exit)
            if at_exit is not None and not at_exit >= self._FACT:
                yield self.finding(
                    rel,
                    func.lineno,
                    func.col_offset,
                    func.name,
                    f"{func.name}() is annotated -> ServeResult but some "
                    f"path reaches a normal return without constructing "
                    f"one",
                )

    def _constructs_result(self, stmt: ast.stmt) -> bool:
        # Header-only walk: an ``if`` whose *body* constructs must not
        # credit the branch point itself.
        for node in header_nodes(stmt):
            if isinstance(node, ast.Call) and _call_name(node) == self._RESULT:
                return True
        # Delegation: ``return self._other_helper(...)`` constructs the
        # result elsewhere; the callee is annotated and checked itself.
        if isinstance(stmt, ast.Return) and isinstance(stmt.value, ast.Call):
            return True
        return False


#: The path-sensitive tier, appended to the main registry by
#: :func:`repro.analysis.rules.default_rules` (lazy import -- REP102).
PATH_RULES: tuple[type[Rule], ...] = (
    MustReleaseResourceRule,
    BudgetExceptionSafetyRule,
    SetOrderDeterminismRule,
    ServeStateMachineRule,
)
