"""Symbolic loop-cost analysis: the fourth reprolint tier's engine.

The paper's solvers live or die by their asymptotic behaviour (SSPA
augmentation, lazy WMA reveals, oracle-backed streams), so this module
gives the lint a *cost model*: every loop in every function is
classified by what it ranges over -- an **instance-sized** collection
(``network.nodes``/``edges``, customers, facilities, selected sets,
parameters annotated as collections, results of calls returning
instance-sized data) or a **bounded** constant -- and per-function cost
summaries (max loop-nesting depth over instance-sized dimensions, e.g.
``n*m`` or ``k*n``) are propagated through the whole-program call graph
to an interprocedural fixpoint.  Nesting that only materialises across
function boundaries (``rebuild_rows`` looping over ``find_pair`` which
runs its own residual Dijkstra) is therefore visible to the rules in
:mod:`repro.analysis.perfrules` (REP109..REP112).

The size lattice is deliberately two-valued (``bounded < instance``):
anything the classifier cannot prove bounded is instance-sized, the
same conservatism REP101 applies.  Dimensions carry display symbols
(``n`` nodes, ``m`` customers, ``l`` candidate facilities, ``k``
selected, ``E`` edges) derived from the iterable's name so findings and
the ``repro lint --cost`` export read like the paper's complexity
claims.

Like everything under ``analysis/``, this module is stdlib-only
(REP102): it must run on a tree that cannot even import.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.graphs import AnalysisProject, CallGraph

__all__ = [
    "DEFAULT_CEILING",
    "DEPTH_CAP",
    "ENTRY_POINTS",
    "CostModel",
    "CostSummary",
    "FunctionLoops",
    "LoopInfo",
    "analyze_function",
    "find_budgets_file",
    "load_budgets",
]

#: Instance nesting depth allowed on a hot path without a budget entry.
DEFAULT_CEILING = 2

#: Summaries never exceed this depth (terminates cyclic propagation).
DEPTH_CAP = 8

#: Call-graph roots whose reachable set is "the hot path": the solver
#: registry dispatch, the online engine's mutation entry, and the
#: distance-oracle query surfaces.
ENTRY_POINTS = (
    "<SOLVERS>",
    "serve.engine.ServeEngine.apply",
    "network.oracle.AltOracle.query",
    "network.ch.ContractionHierarchy.query",
)

#: Collection names (final attribute/variable identifier, leading
#: underscores stripped) that hold instance-sized data in this codebase.
INSTANCE_COLLECTIONS = frozenset(
    {
        "nodes",
        "edges",
        "arcs",
        "customers",
        "customer_nodes",
        "facilities",
        "facility_nodes",
        "capacities",
        "candidates",
        "selected",
        "assignment",
        "assigned",
        "matched",
        "settled",
        "rows",
        "handles",
        "supply",
        "neighbors",
        "frontier",
        "heap",
        "queue",
    }
)

#: Scalar names that denote an instance size (``range(state.m)``).
INSTANCE_SCALARS = frozenset(
    {"m", "l", "n", "k", "n_nodes", "n_edges", "n_customers",
     "n_facilities", "n_candidates", "n_selected"}
)

#: Display symbol per instance-dimension name (default ``n``).
_SYMBOL_OF = {
    "customers": "m",
    "customer_nodes": "m",
    "m": "m",
    "n_customers": "m",
    "facilities": "l",
    "facility_nodes": "l",
    "capacities": "l",
    "l": "l",
    "n_facilities": "l",
    "candidates": "l",
    "n_candidates": "l",
    "selected": "k",
    "k": "k",
    "n_selected": "k",
    "edges": "E",
    "arcs": "E",
    "n_edges": "E",
}

#: Builtins whose result is only as large as their (classified) inputs.
_BOUNDED_WRAPPERS = frozenset(
    {"range", "enumerate", "zip", "reversed", "sorted", "list", "tuple",
     "set", "frozenset", "iter", "map", "filter", "len"}
)

#: ``.items()``-style methods: classify the receiver instead.
_VIEW_METHODS = frozenset({"items", "keys", "values"})

#: Annotation bases meaning "a collection scaling with the instance".
_COLLECTION_ANNOTATIONS = frozenset(
    {"list", "dict", "set", "frozenset", "deque", "ndarray", "Sequence",
     "MutableSequence", "Iterable", "Iterator", "Generator", "Mapping",
     "MutableMapping", "AbstractSet", "MutableSet", "Collection",
     "Counter", "defaultdict", "OrderedDict"}
)

_FuncDef = ast.FunctionDef | ast.AsyncFunctionDef


def _final_name(expr: ast.expr) -> str:
    """Last identifier of a Name/Attribute chain, underscores stripped."""
    if isinstance(expr, ast.Attribute):
        return expr.attr.lstrip("_")
    if isinstance(expr, ast.Name):
        return expr.id.lstrip("_")
    return ""


def _annotation_base(ann: ast.expr | None) -> str:
    """Unsubscripted final name of an annotation (``Sequence`` for
    ``Sequence[int]``, handles string annotations and ``X | None``)."""
    if ann is None:
        return ""
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            ann = ast.parse(ann.value, mode="eval").body
        except SyntaxError:
            return ""
    if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
        left = _annotation_base(ann.left)
        return left or _annotation_base(ann.right)
    if isinstance(ann, ast.Subscript):
        base = _annotation_base(ann.value)
        if base == "Optional":
            return _annotation_base(ann.slice)
        return base
    if isinstance(ann, (ast.Name, ast.Attribute)):
        name = _final_name(ann)
        return name
    return ""


def _is_collection_annotation(ann: ast.expr | None) -> bool:
    return _annotation_base(ann) in _COLLECTION_ANNOTATIONS


def _symbol_for(name: str) -> str:
    return _SYMBOL_OF.get(name, "n")


@dataclass(eq=False)
class LoopInfo:
    """One classified loop: kind, dimension symbol, and nesting depth.

    ``depth`` counts enclosing instance-sized loops *including this one*
    for instance loops; bounded loops report the enclosing instance
    depth unchanged.
    """

    node: ast.For | ast.While
    line: int
    kind: str  # "instance" | "bounded"
    symbol: str
    depth: int


@dataclass(eq=False)
class FunctionLoops:
    """Local (intraprocedural) loop-cost facts of one function."""

    loops: list[LoopInfo] = field(default_factory=list)
    #: 1-based source line -> instance-dimension symbol stack there.
    stack_by_line: dict[int, tuple[str, ...]] = field(default_factory=dict)
    local_depth: int = 0
    local_dims: tuple[str, ...] = ()
    returns_instance: bool = False
    #: local/parameter names holding instance-sized collections.
    instance_names: frozenset[str] = frozenset()

    def depth_at(self, line: int) -> int:
        """Instance-loop nesting depth at a source line (0 outside)."""
        return len(self.stack_by_line.get(line, ()))

    def stack_at(self, line: int) -> tuple[str, ...]:
        """Instance-dimension symbols enclosing a source line."""
        return self.stack_by_line.get(line, ())

    def instance_loops(self) -> list[LoopInfo]:
        """The instance-sized loops, in source order."""
        return [info for info in self.loops if info.kind == "instance"]


class _LoopClassifier:
    """Classifies the loops of one function against the size lattice."""

    def __init__(
        self,
        func: _FuncDef,
        call_oracle: object | None = None,
    ) -> None:
        self.func = func
        #: ``call_oracle(call) -> bool | None``: whether a call expression
        #: returns instance-sized data (None = unresolved).  The project
        #: level model supplies call-graph knowledge; local rules pass
        #: nothing and unresolved calls default to instance-sized.
        self.call_oracle = call_oracle
        self.instance_names = self._instance_typed_names()

    # -- name typing ---------------------------------------------------
    def _instance_typed_names(self) -> frozenset[str]:
        """Parameter/local names bound to instance-sized collections."""
        names: set[str] = set()
        args = self.func.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if _is_collection_annotation(arg.annotation) or (
                arg.arg.lstrip("_") in INSTANCE_COLLECTIONS
            ):
                names.add(arg.arg)
        changed = True
        while changed:
            changed = False
            for node in self._owned():
                target: ast.expr | None = None
                value: ast.expr | None = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                    if _is_collection_annotation(node.annotation) and isinstance(
                        target, ast.Name
                    ) and target.id not in names:
                        names.add(target.id)
                        changed = True
                if (
                    isinstance(target, ast.Name)
                    and value is not None
                    and target.id not in names
                    and self._instance_expr(value, names)
                ):
                    names.add(target.id)
                    changed = True
        return frozenset(names)

    def _owned(self) -> list[ast.AST]:
        out: list[ast.AST] = []
        todo: list[ast.AST] = list(ast.iter_child_nodes(self.func))
        while todo:
            node = todo.pop()
            out.append(node)
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                todo.extend(ast.iter_child_nodes(node))
        return out

    def _instance_expr(self, expr: ast.expr, names: set[str]) -> bool:
        """Whether an assigned expression is an instance-sized collection.

        Only *propagating* forms count here (aliases, sorted/list of an
        instance collection); literals stay bounded so ``x = [a, b]``
        never taints ``x``.
        """
        if isinstance(expr, ast.Name):
            return expr.id in names or (
                expr.id.lstrip("_") in INSTANCE_COLLECTIONS
            )
        if isinstance(expr, ast.Attribute):
            return _final_name(expr) in INSTANCE_COLLECTIONS
        if isinstance(expr, ast.Call):
            name = expr.func.id if isinstance(expr.func, ast.Name) else ""
            if name in ("sorted", "list", "tuple", "set", "frozenset"):
                return bool(expr.args) and self._instance_expr(
                    expr.args[0], names
                )
        if isinstance(
            expr, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            return any(
                self._is_instance_iterable(g.iter, names)
                for g in expr.generators
            )
        return False

    # -- iterable classification ---------------------------------------
    def _is_instance_iterable(
        self, expr: ast.expr, names: set[str] | frozenset[str]
    ) -> bool:
        """Instance-sized verdict for a ``for`` iterable expression."""
        if isinstance(expr, ast.Constant):
            return False
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            # Literal containers are bounded by their arity; only an
            # instance-sized *element* (a nested iterable) taints them.
            return any(
                self._is_instance_iterable(e, names)
                for e in expr.elts
                if not isinstance(e, ast.Constant)
            )
        if isinstance(expr, ast.Name):
            return expr.id in names or (
                expr.id.lstrip("_") in INSTANCE_COLLECTIONS
            )
        if isinstance(expr, ast.Attribute):
            final = _final_name(expr)
            return (
                final in INSTANCE_COLLECTIONS or final in INSTANCE_SCALARS
            )
        if isinstance(expr, ast.Subscript):
            # ``adj[u]`` -- a row of an instance-sized table: the row may
            # be small but iterating rows inside a node loop sums to the
            # instance; stay conservative and classify the base.
            return self._is_instance_iterable(expr.value, names)
        if isinstance(expr, ast.Call):
            return self._classify_call(expr, names)
        if isinstance(expr, ast.IfExp):
            return self._is_instance_iterable(
                expr.body, names
            ) or self._is_instance_iterable(expr.orelse, names)
        if isinstance(expr, ast.BinOp):
            return self._is_instance_iterable(
                expr.left, names
            ) or self._is_instance_iterable(expr.right, names)
        if isinstance(expr, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            return any(
                self._is_instance_iterable(g.iter, names)
                for g in expr.generators
            )
        if isinstance(expr, ast.Starred):
            return self._is_instance_iterable(expr.value, names)
        # Anything else (await, lambda results, ...) -- data dependent.
        return True

    def _classify_call(
        self, call: ast.Call, names: set[str] | frozenset[str]
    ) -> bool:
        func = call.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else ""
        )
        if name in _BOUNDED_WRAPPERS:
            return any(
                self._is_instance_iterable(arg, names) for arg in call.args
            )
        if name in _VIEW_METHODS and isinstance(func, ast.Attribute):
            return self._is_instance_iterable(func.value, names)
        if self.call_oracle is not None:
            verdict = self.call_oracle(call)  # type: ignore[operator]
            if verdict is not None:
                return bool(verdict)
        # Unresolved call: data-dependent (REP101's conservatism).
        return True

    def _symbol_of_iterable(self, expr: ast.expr) -> str:
        if isinstance(expr, ast.Call):
            func = expr.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else ""
            )
            if name in _BOUNDED_WRAPPERS and expr.args:
                return self._symbol_of_iterable(expr.args[0])
            if name in _VIEW_METHODS and isinstance(func, ast.Attribute):
                return self._symbol_of_iterable(func.value)
        final = _final_name(expr) if isinstance(
            expr, (ast.Name, ast.Attribute)
        ) else ""
        return _symbol_for(final)

    # -- the walk ------------------------------------------------------
    def run(self) -> FunctionLoops:
        self._result_stack: dict[int, tuple[str, ...]] = {}
        result = FunctionLoops(instance_names=self.instance_names)
        self._walk_body(list(self.func.body), (), result)
        result.stack_by_line = self._result_stack
        result.returns_instance = self._returns_instance()
        for info in result.loops:
            if info.depth > result.local_depth:
                result.local_depth = info.depth
        # Deepest symbol stack = the local dimension product.
        for stack in result.stack_by_line.values():
            if len(stack) == result.local_depth and not result.local_dims:
                result.local_dims = stack
        return result

    def _returns_instance(self) -> bool:
        if _is_collection_annotation(self.func.returns):
            return True
        for node in self._owned():
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
        return False

    def _walk_body(
        self,
        body: list[ast.stmt],
        stack: tuple[str, ...],
        result: FunctionLoops,
    ) -> None:
        for stmt in body:
            self._mark_lines(stmt, stack)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested defs cost on their own summaries
            if isinstance(stmt, ast.While):
                # Data-dependent trip count by construction.
                symbol = "n"
                info = LoopInfo(
                    node=stmt,
                    line=stmt.lineno,
                    kind="instance",
                    symbol=symbol,
                    depth=len(stack) + 1,
                )
                result.loops.append(info)
                self._walk_body(stmt.body, stack + (symbol,), result)
                self._walk_body(stmt.orelse, stack, result)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                if self._is_instance_iterable(stmt.iter, self.instance_names):
                    symbol = self._symbol_of_iterable(stmt.iter)
                    info = LoopInfo(
                        node=stmt,
                        line=stmt.lineno,
                        kind="instance",
                        symbol=symbol,
                        depth=len(stack) + 1,
                    )
                    result.loops.append(info)
                    self._walk_body(stmt.body, stack + (symbol,), result)
                else:
                    result.loops.append(
                        LoopInfo(
                            node=stmt,
                            line=stmt.lineno,
                            kind="bounded",
                            symbol="",
                            depth=len(stack),
                        )
                    )
                    self._walk_body(stmt.body, stack, result)
                self._walk_body(stmt.orelse, stack, result)
            else:
                sub: list[list[ast.stmt]] = []
                if isinstance(stmt, ast.If):
                    sub = [stmt.body, stmt.orelse]
                elif isinstance(stmt, ast.Try):
                    sub = [stmt.body, stmt.orelse, stmt.finalbody]
                    sub.extend(h.body for h in stmt.handlers)
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    sub = [stmt.body]
                elif isinstance(stmt, ast.Match):
                    sub = [case.body for case in stmt.cases]
                for block in sub:
                    self._walk_body(block, stack, result)

    def _mark_lines(self, stmt: ast.stmt, stack: tuple[str, ...]) -> None:
        """Record the dimension stack for every line the header spans."""
        end = getattr(stmt, "end_lineno", stmt.lineno) or stmt.lineno
        for line in range(stmt.lineno, end + 1):
            existing = self.stack_by_line_ref.get(line)
            if existing is None or len(stack) > len(existing):
                self.stack_by_line_ref[line] = stack

    @property
    def stack_by_line_ref(self) -> dict[int, tuple[str, ...]]:
        return self._result_stack


def analyze_function(
    func: _FuncDef, call_oracle: object | None = None
) -> FunctionLoops:
    """Classify one function's loops without any whole-program context.

    ``call_oracle`` may map a call expression to an instance-sized
    verdict; without one, unresolved calls are conservatively
    instance-sized (the same default REP101 uses).
    """
    classifier = _LoopClassifier(func, call_oracle)
    return classifier.run()


@dataclass(frozen=True)
class CostSummary:
    """Interprocedural cost of one function.

    ``total_depth`` is the fixpoint max over (a) the function's own
    instance-loop nesting and (b) for every resolved call site, the
    instance depth at the site plus the callee's total.  ``dims`` spells
    the worst chain's dimension symbols (``("m", "n")`` renders as
    ``m*n``); ``via``/``via_line`` name the call edge responsible when
    the worst chain crosses a function boundary.
    """

    node_id: str
    local_depth: int
    total_depth: int
    dims: tuple[str, ...]
    via: str = ""
    via_line: int = 0
    recursive: bool = False
    returns_instance: bool = False

    @property
    def cost_label(self) -> str:
        """Human form of the cost: ``O(1)``, ``O(n)``, ``O(m*n)`` ..."""
        if self.total_depth == 0:
            return "O(1)"
        dims = self.dims or ("n",) * self.total_depth
        return "O(" + "*".join(dims) + ")"


class CostModel:
    """Interprocedural loop-cost summaries over one analysis project."""

    def __init__(self, project: AnalysisProject) -> None:
        self.project = project
        calls = project.calls
        self._locals: dict[str, FunctionLoops] = {}
        for node_id in sorted(calls.functions):
            func = calls.function_ast(node_id)
            if func is None:
                continue
            oracle = self._call_oracle_for(calls, node_id)
            self._locals[node_id] = analyze_function(func, oracle)
        self.summaries: dict[str, CostSummary] = {}
        self._propagate(calls)
        self._hot: set[str] | None = None

    # -- construction --------------------------------------------------
    def _call_oracle_for(self, calls: CallGraph, node_id: str) -> object:
        """Resolve ``for x in f(...)`` through callee return summaries.

        Uses annotation-derived ``returns_instance`` (available before
        propagation); a call resolved to a scalar-returning function is
        *bounded*, which is what keeps ``range(state.m)``-style loops
        honest while ``for e in network.edges_of(u)`` stays instance.
        """
        edges_by_line: dict[int, list[str]] = {}
        for edge in calls.edges:
            if edge.caller == node_id and edge.kind in ("call", "property"):
                edges_by_line.setdefault(edge.line, []).append(edge.callee)

        def oracle(call: ast.Call) -> bool | None:
            callees = edges_by_line.get(call.lineno)
            if not callees:
                return None
            for callee in callees:
                func = calls.function_ast(callee)
                if func is None:
                    continue
                if _is_collection_annotation(func.returns):
                    return True
                for node in ast.walk(func):
                    if isinstance(node, (ast.Yield, ast.YieldFrom)):
                        return True
            # Every resolved callee returns non-collection data.
            return False

        return oracle

    def _propagate(self, calls: CallGraph) -> None:
        """Bottom-up (SCC condensation) interprocedural fixpoint."""
        order, scc_of = _tarjan_sccs(calls)
        totals: dict[str, int] = {}
        dims: dict[str, tuple[str, ...]] = {}
        via: dict[str, tuple[str, int]] = {}
        recursive: set[str] = set()
        edges_from: dict[str, list[tuple[str, int]]] = {}
        for edge in calls.edges:
            if edge.kind == "registry":
                continue
            edges_from.setdefault(edge.caller, []).append(
                (edge.callee, edge.line)
            )
        for scc in order:  # callees before callers
            if len(scc) > 1:
                recursive.update(scc)
            for node_id in sorted(scc):
                info = self._locals.get(node_id)
                if info is None:
                    continue
                best = info.local_depth
                best_dims = info.local_dims
                best_via: tuple[str, int] = ("", 0)
                for callee, line in sorted(edges_from.get(node_id, ())):
                    if callee == node_id or scc_of.get(callee) is scc:
                        recursive.add(node_id)
                        continue  # cycle edge: depth already capped
                    callee_total = totals.get(callee, 0)
                    if callee_total == 0:
                        continue
                    here = info.stack_at(line)
                    cand = min(len(here) + callee_total, DEPTH_CAP)
                    if cand > best:
                        best = cand
                        best_dims = (here + dims.get(callee, ()))[:cand]
                        best_via = (callee, line)
                totals[node_id] = min(best, DEPTH_CAP)
                dims[node_id] = best_dims
                if best_via[0]:
                    via[node_id] = best_via
        for node_id, info in self._locals.items():
            v, v_line = via.get(node_id, ("", 0))
            self.summaries[node_id] = CostSummary(
                node_id=node_id,
                local_depth=info.local_depth,
                total_depth=totals.get(node_id, info.local_depth),
                dims=dims.get(node_id, info.local_dims),
                via=v,
                via_line=v_line,
                recursive=node_id in recursive,
                returns_instance=info.returns_instance,
            )

    # -- queries -------------------------------------------------------
    def summary(self, node_id: str) -> CostSummary | None:
        """The interprocedural summary of one function, if known."""
        return self.summaries.get(node_id)

    def loops_of(self, node_id: str) -> FunctionLoops | None:
        """Local classified-loop facts of one function, if known."""
        return self._locals.get(node_id)

    def depth_at(self, node_id: str, line: int) -> int:
        info = self._locals.get(node_id)
        return info.depth_at(line) if info is not None else 0

    def hot_nodes(self) -> set[str]:
        """Functions reachable from the hot-path entry points."""
        if self._hot is None:
            calls = self.project.calls
            roots = [
                node
                for node in ENTRY_POINTS
                if node in calls.functions or node == "<SOLVERS>"
            ]
            self._hot = calls.reachable_from(roots) & set(self.summaries)
        return self._hot

    def module_costs(self) -> dict[str, tuple[int, str]]:
        """Per-module worst hot-function cost: ``module -> (depth, node)``."""
        worst: dict[str, tuple[int, str]] = {}
        hot = self.hot_nodes()
        for node_id in sorted(hot):
            summary = self.summaries[node_id]
            module = self.project.calls.functions[node_id].module
            depth, _holder = worst.get(module, (-1, ""))
            if summary.total_depth > depth:
                worst[module] = (summary.total_depth, node_id)
        return worst

    # -- export --------------------------------------------------------
    def as_dict(self, budgets: dict[str, int] | None = None) -> dict[str, object]:
        """JSON-ready cost tree (the ``repro lint --cost`` artifact)."""
        budgets = budgets or {}
        hot = self.hot_nodes()
        functions: dict[str, dict[str, object]] = {}
        for node_id in sorted(self.summaries):
            summary = self.summaries[node_id]
            if summary.total_depth == 0 and node_id not in hot:
                continue  # flat cold functions add nothing but bytes
            info = self.project.calls.functions.get(node_id)
            functions[node_id] = {
                "module": info.module if info else "",
                "local_depth": summary.local_depth,
                "total_depth": summary.total_depth,
                "cost": summary.cost_label,
                "dims": list(summary.dims),
                "hot": node_id in hot,
                "recursive": summary.recursive,
                "via": summary.via,
                "via_line": summary.via_line,
            }
        modules = {
            module: {
                "max_depth": depth,
                "worst": node_id,
                "ceiling": budgets.get(module, DEFAULT_CEILING),
            }
            for module, (depth, node_id) in sorted(
                self.module_costs().items()
            )
        }
        return {
            "kind": "cost",
            "default_ceiling": DEFAULT_CEILING,
            "entry_points": list(ENTRY_POINTS),
            "functions": functions,
            "modules": modules,
        }

    def to_dot(self, budgets: dict[str, int] | None = None) -> str:
        """GraphViz rendering of the hot-path cost tree.

        Nodes are hot functions labelled with their cost; edges are the
        ``via`` links explaining where cross-function depth comes from.
        Functions over their module ceiling render red.
        """
        budgets = budgets or {}
        hot = self.hot_nodes()
        lines = ["digraph cost {", "  rankdir=LR;", "  node [shape=box];"]
        for node_id in sorted(hot):
            summary = self.summaries[node_id]
            if summary.total_depth == 0:
                continue
            info = self.project.calls.functions.get(node_id)
            module = info.module if info else ""
            ceiling = budgets.get(module, DEFAULT_CEILING)
            color = ' color=red' if summary.total_depth > ceiling else ""
            lines.append(
                f'  "{node_id}" [label="{node_id}\\n'
                f'{summary.cost_label}"{color}];'
            )
        for node_id in sorted(hot):
            summary = self.summaries[node_id]
            if summary.via and summary.via in self.summaries:
                lines.append(f'  "{node_id}" -> "{summary.via}";')
        lines.append("}")
        return "\n".join(lines)


def _tarjan_sccs(
    calls: CallGraph,
) -> tuple[list[frozenset[str]], dict[str, frozenset[str]]]:
    """Tarjan SCCs of the call graph, callees-first (reverse topological).

    Iterative (the call graph is deeper than Python's recursion limit
    would like) and deterministic: neighbours are visited in sorted
    order.
    """
    out: dict[str, list[str]] = {}
    for edge in calls.edges:
        if edge.kind == "registry":
            continue
        out.setdefault(edge.caller, []).append(edge.callee)
    for key in out:
        out[key] = sorted(set(out[key]))
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[frozenset[str]] = []
    counter = 0
    for root in sorted(calls.functions):
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_idx = work.pop()
            if child_idx == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            children = out.get(node, ())
            advanced = False
            for i in range(child_idx, len(children)):
                child = children[i]
                if child not in index:
                    work.append((node, i + 1))
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                sccs.append(frozenset(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    scc_of = {member: scc for scc in sccs for member in scc}
    return sccs, scc_of


# ----------------------------------------------------------------------
# Budget file (cost-budgets.toml)
# ----------------------------------------------------------------------
_BUDGET_LINE = re.compile(
    r'^\s*(?:"(?P<quoted>[^"]+)"|(?P<bare>[A-Za-z0-9_.\-]+))\s*=\s*'
    r"(?P<value>\d+)\s*(?:#.*)?$"
)


def load_budgets(path: str | Path) -> dict[str, int]:
    """Parse ``cost-budgets.toml``: ``module -> ceiling`` under ``[budgets]``.

    Uses :mod:`tomllib` when available (3.11+) and falls back to a
    restricted line parser (quoted or bare keys, integer values) so the
    3.10 floor needs no third-party TOML dependency.  A missing file is
    an empty budget set (every module at :data:`DEFAULT_CEILING`).
    """
    path = Path(path)
    if not path.is_file():
        return {}
    text = path.read_text(encoding="utf-8")
    try:
        import tomllib

        doc = tomllib.loads(text)
        table = doc.get("budgets", {})
        return {
            str(key): int(value)
            for key, value in table.items()
            if isinstance(value, int)
        }
    except ModuleNotFoundError:
        pass
    budgets: dict[str, int] = {}
    in_table = False
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("["):
            in_table = stripped == "[budgets]"
            continue
        if not in_table:
            continue
        match = _BUDGET_LINE.match(line)
        if match:
            key = match.group("quoted") or match.group("bare")
            budgets[key] = int(match.group("value"))
    return budgets


def find_budgets_file(root: str | Path) -> Path | None:
    """Locate ``cost-budgets.toml`` near the linted root (repo layouts)."""
    root = Path(root)
    for candidate_dir in (root, *root.parents[:3]):
        candidate = candidate_dir / "cost-budgets.toml"
        if candidate.is_file():
            return candidate
    return None
