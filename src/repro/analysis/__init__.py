"""Post-hoc analysis of MCFS solutions and solver runs."""

from repro.analysis.reports import (
    SolutionStats,
    compare_solutions,
    convergence_report,
    solution_stats,
)
from repro.analysis.robustness import (
    DriftPoint,
    drift_study,
    reassignment_cost,
    selection_regret,
)

__all__ = [
    "SolutionStats",
    "solution_stats",
    "compare_solutions",
    "convergence_report",
    "DriftPoint",
    "drift_study",
    "reassignment_cost",
    "selection_regret",
]
