"""reprolint -- the repo-specific static-analysis pass.

This package hosts the lint engine (``repro lint`` /
``python -m repro.analysis``): per-file AST rules in
:mod:`repro.analysis.rules`, the whole-program graph layer in
:mod:`repro.analysis.graphs` (import graph, call graph, effect
inference, layering contract), the ratchet baseline, and the CLI.  See
``docs/dev.md`` for the rule catalogue and workflow.

Layering contract (enforced by REP102 on itself): ``analysis`` imports
nothing but the standard library at import time, so the linter runs
even on a tree that cannot import.  The *solution* analysis helpers
that used to live here (solution stats, demand-drift robustness) live
in :mod:`repro.bench.solution_stats` and :mod:`repro.bench.robustness`
(the deprecation shims that once forwarded the old names were removed
after two release cycles).
"""

from repro.analysis.baseline import load_baseline, save_baseline
from repro.analysis.engine import LintEngine, default_root
from repro.analysis.findings import Finding, LintResult
from repro.analysis.graphs import AnalysisProject

__all__ = [
    "AnalysisProject",
    "Finding",
    "LintEngine",
    "LintResult",
    "default_root",
    "load_baseline",
    "save_baseline",
]
