"""reprolint -- the repo-specific static-analysis pass.

This package hosts the lint engine (``repro lint`` /
``python -m repro.analysis``): per-file AST rules in
:mod:`repro.analysis.rules`, the whole-program graph layer in
:mod:`repro.analysis.graphs` (import graph, call graph, effect
inference, layering contract), the ratchet baseline, and the CLI.  See
``docs/dev.md`` for the rule catalogue and workflow.

Layering contract (enforced by REP102 on itself): ``analysis`` imports
nothing but the standard library at import time, so the linter runs
even on a tree that cannot import.  The *solution* analysis helpers
that used to live here (solution stats, demand-drift robustness) moved
to :mod:`repro.bench.solution_stats` and :mod:`repro.bench.robustness`;
the lazy forwards below keep ``from repro.analysis import
compare_solutions`` working.
"""

from repro.analysis.baseline import load_baseline, save_baseline
from repro.analysis.engine import LintEngine, default_root
from repro.analysis.findings import Finding, LintResult
from repro.analysis.graphs import AnalysisProject

#: Names lazily forwarded to their new homes in ``repro.bench`` (PEP 562).
_SOLUTION_EXPORTS = (
    "SolutionStats",
    "solution_stats",
    "compare_solutions",
    "convergence_report",
)
_ROBUSTNESS_EXPORTS = (
    "DriftPoint",
    "drift_study",
    "reassignment_cost",
    "selection_regret",
)

__all__ = [
    "AnalysisProject",
    "Finding",
    "LintEngine",
    "LintResult",
    "default_root",
    "load_baseline",
    "save_baseline",
    *_SOLUTION_EXPORTS,
    *_ROBUSTNESS_EXPORTS,
]


def __getattr__(name: str) -> object:
    if name in _SOLUTION_EXPORTS:
        from repro.bench import solution_stats

        return getattr(solution_stats, name)
    if name in _ROBUSTNESS_EXPORTS:
        from repro.bench import robustness

        return getattr(robustness, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
