"""Post-hoc analysis of MCFS solutions, solver runs, and the codebase.

Besides the solution/robustness reports, this package hosts
**reprolint** -- the repo-specific static-analysis pass (``repro lint``
/ ``python -m repro.analysis``); see :mod:`repro.analysis.rules` for the
REP rule catalogue and ``docs/dev.md`` for the workflow.
"""

from repro.analysis.baseline import load_baseline, save_baseline
from repro.analysis.engine import LintEngine, default_root
from repro.analysis.findings import Finding, LintResult
from repro.analysis.reports import (
    SolutionStats,
    compare_solutions,
    convergence_report,
    solution_stats,
)
from repro.analysis.robustness import (
    DriftPoint,
    drift_study,
    reassignment_cost,
    selection_regret,
)

__all__ = [
    "Finding",
    "LintEngine",
    "LintResult",
    "default_root",
    "load_baseline",
    "save_baseline",
    "SolutionStats",
    "solution_stats",
    "compare_solutions",
    "convergence_report",
    "DriftPoint",
    "drift_study",
    "reassignment_cost",
    "selection_regret",
]
