"""``python -m repro.analysis`` -- run reprolint (see lintcli)."""

from repro.analysis.lintcli import main

if __name__ == "__main__":
    raise SystemExit(main())
