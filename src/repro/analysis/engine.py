"""The reprolint engine: tree walking, suppressions, rule dispatch.

The engine parses every ``*.py`` file under one root with :mod:`ast`,
hands each file to every rule (:class:`~repro.analysis.rules.Rule`), and
runs a project-wide ``finalize`` pass for cross-file rules (REP001's
registry reconciliation, REP002's ``SOLVERS`` reachability).  Findings
then flow through per-file/per-line suppressions and the committed
ratchet baseline (:mod:`repro.analysis.baseline`).

Suppression syntax (checked by ``tests/test_reprolint.py``):

* a standalone comment line ``# reprolint: disable=REP101`` disables the
  named rule(s) for the whole file (comma-separate ids; ``all`` disables
  everything);
* the same comment trailing a code line disables the rule(s) for
  findings reported on exactly that line;
* a trailing ``-- <reason>`` attaches a justification:
  ``# reprolint: disable=REP103 -- memo write, materialized pre-fork``.
  Rules in :data:`JUSTIFIED_RULES` *require* one -- an unjustified
  directive for them is ignored and the finding still fires.

Cross-file rules that need the whole-program graphs
(:mod:`repro.analysis.graphs`) receive an :class:`AnalysisProject`
through an optional ``set_project`` hook, called after every file has
parsed and before ``finalize``.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.analysis.baseline import apply_baseline, load_baseline
from repro.analysis.cache import (
    LintCache,
    dependents_closure,
    digest_source,
    run_signature,
)
from repro.analysis.findings import Finding, LintResult
from repro.analysis.graphs import AnalysisProject

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+?)(?:--\s*(\S.*))?$"
)

#: Rules whose suppression directives must carry a ``-- <reason>``
#: justification; without one the directive is ignored.  The
#: path-sensitive tier (REP105..REP108) guards serving-stack invariants
#: where a silent opt-out is itself a bug, so it is justification-only
#: like REP103; the cost tier (REP109..REP112) guards hot-path
#: asymptotics, where an unexplained opt-out is a future regression.
JUSTIFIED_RULES = frozenset(
    {
        "REP103",
        "REP105",
        "REP106",
        "REP107",
        "REP108",
        "REP109",
        "REP110",
        "REP111",
        "REP112",
    }
)

#: Directories never linted (caches, VCS internals).
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist", ".lint-cache"}


class FileContext:
    """Everything a rule may inspect about one parsed source file."""

    def __init__(self, path: Path, rel: str, source: str) -> None:
        self.path = path
        #: POSIX path relative to the linted root (baseline-stable).
        self.rel = rel
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=rel)
        #: Rule ids disabled for the whole file (may contain ``"all"``).
        self.file_disabled: set[str] = set()
        #: Rule ids disabled per 1-based line number.
        self.line_disabled: dict[int, set[str]] = {}
        #: Subset of the above whose directive carried a justification.
        self.file_justified: set[str] = set()
        self.line_justified: dict[int, set[str]] = {}
        self._scan_suppressions()
        #: Module-level ``NAME = "literal"`` string constants, used to
        #: resolve counter names passed via constants (REP001).
        self.constants = _module_str_constants(self.tree)

    def _scan_suppressions(self) -> None:
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if not match:
                continue
            rules = {
                part.strip()
                for part in match.group(1).split(",")
                if part.strip()
            }
            justified = bool(match.group(2))
            if text.strip().startswith("#"):
                self.file_disabled |= rules
                if justified:
                    self.file_justified |= rules
            else:
                self.line_disabled.setdefault(lineno, set()).update(rules)
                if justified:
                    self.line_justified.setdefault(lineno, set()).update(rules)

    def is_suppressed(
        self, rule: str, line: int, require_justification: bool = False
    ) -> bool:
        """Whether ``rule`` is disabled for a finding on ``line``.

        With ``require_justification`` (rules in
        :data:`JUSTIFIED_RULES`), only directives that carried a
        ``-- <reason>`` count; a bare directive is ignored so the
        finding still fires.
        """
        disabled = (
            self.file_justified if require_justification else self.file_disabled
        )
        if "all" in disabled or rule in disabled:
            return True
        at_line = (
            self.line_justified if require_justification else self.line_disabled
        ).get(line, ())
        return "all" in at_line or rule in at_line


def _module_str_constants(tree: ast.Module) -> dict[str, str]:
    constants: dict[str, str] = {}
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            constants[node.targets[0].id] = node.value.value
    return constants


class LintEngine:
    """Run a set of rules over every Python file under ``root``.

    Parameters
    ----------
    root:
        Directory treated as the package root; finding paths and the
        module-layout conventions the rules use (``obs/names.py``,
        ``baselines/``, ...) are relative to it.
    rules:
        Rule instances to run; defaults to the full registered set
        (:func:`repro.analysis.rules.default_rules`).
    """

    def __init__(
        self,
        root: str | Path,
        rules: Sequence[object] | None = None,
    ) -> None:
        self.root = Path(root)
        if rules is None:
            # Local import: rules import the Finding model from this
            # package, so the registry is resolved lazily.
            from repro.analysis.rules import default_rules

            rules = default_rules()
        self.rules = list(rules)

    def _iter_files(self) -> Iterable[Path]:
        for path in sorted(self.root.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in path.parts):
                continue
            yield path

    def parse_project(self) -> AnalysisProject:
        """Parse every file and return the whole-program graph bundle.

        Used by ``repro lint --graph`` to export the import/call graphs
        without running any rules; unparseable files are skipped (the
        lint path reports them as REP000).
        """
        contexts: list[FileContext] = []
        for path in self._iter_files():
            rel = path.relative_to(self.root).as_posix()
            try:
                source = path.read_text(encoding="utf-8")
                contexts.append(FileContext(path, rel, source))
            except (SyntaxError, UnicodeDecodeError):
                continue
        return AnalysisProject(contexts, package=self.root.name)

    def run(
        self,
        baseline: dict[str, int] | str | Path | None = None,
        cache: LintCache | None = None,
    ) -> LintResult:
        """Lint the tree and return a :class:`LintResult`.

        ``baseline`` may be a pre-loaded mapping, a path to a baseline
        file, or ``None`` (gate at zero).

        With a ``cache`` (:class:`~repro.analysis.cache.LintCache`), the
        run is incremental: when no file changed since the cached run
        (same rule set, same baseline), the stored result is replayed
        without parsing anything; otherwise unchanged files replay their
        cached *local*-rule findings while changed files -- and, through
        the whole-program graphs, every cross-file rule -- are analysed
        fresh.  Findings are byte-identical to a cold run either way;
        :attr:`LintResult.relinted_files` records which files were
        actually re-analysed.
        """
        if isinstance(baseline, (str, Path)):
            baseline = load_baseline(baseline)
        baseline = dict(baseline or {})

        # Phase 0: read sources and fingerprint them.
        sources: list[tuple[Path, str, str]] = []
        read_errors: list[Finding] = []
        for path in self._iter_files():
            rel = path.relative_to(self.root).as_posix()
            try:
                sources.append((path, rel, path.read_text(encoding="utf-8")))
            except (OSError, UnicodeDecodeError) as exc:
                read_errors.append(_parse_error(rel, exc))
        digests = {rel: digest_source(source) for _, rel, source in sources}

        signature = run_signature(
            [getattr(rule, "id", "?") for rule in self.rules], baseline
        )
        root_key = str(self.root.resolve())
        reusable = cache is not None and cache.usable_for(
            signature, root_key
        )

        # Fast path: nothing changed at all -- replay the stored result.
        if (
            reusable
            and not read_errors
            and cache.file_digests() == digests
        ):
            replayed = _result_from_dump(cache.full_result())
            if replayed is not None:
                replayed.relinted_files = []
                return replayed

        cached_digests = cache.file_digests() if reusable else {}
        changed = {
            rel
            for rel in digests
            if cached_digests.get(rel) != digests[rel]
        }
        deleted = set(cached_digests) - set(digests)

        for rule in self.rules:
            rule.start()

        # Phase 1: parse every file (cross-file rules need the whole
        # tree before any finalize runs).
        contexts: list[FileContext] = []
        findings: list[Finding] = []
        suppressed = 0
        for path, rel, source in sources:
            try:
                contexts.append(FileContext(path, rel, source))
            except SyntaxError as exc:
                findings.append(_parse_error(rel, exc))
        findings.extend(read_errors)

        def _keep(ctx: FileContext | None, finding: Finding) -> bool:
            nonlocal suppressed
            if ctx is not None and ctx.is_suppressed(
                finding.rule,
                finding.line,
                require_justification=finding.rule in JUSTIFIED_RULES,
            ):
                suppressed += 1
                return False
            return True

        # Phase 2: per-file visits.  Local rules (``Rule.local``) carry
        # no cross-file state, so unchanged files replay their cached
        # findings; global rules always see every file.
        local_rules = [
            rule for rule in self.rules if getattr(rule, "local", False)
        ]
        global_rules = [
            rule for rule in self.rules if not getattr(rule, "local", False)
        ]
        file_entries: dict[str, dict[str, object]] = {}
        for ctx in contexts:
            for rule in global_rules:
                findings.extend(
                    f for f in rule.visit(ctx) if _keep(ctx, f)
                )
            replay = (
                reusable
                and ctx.rel not in changed
                and cache.has_entry(ctx.rel)
            )
            if replay:
                cached = cache.local_findings(ctx.rel)
                replay = cached is not None
            if replay:
                findings.extend(cached)
                n_suppressed = cache.local_suppressed(ctx.rel)
                suppressed += n_suppressed
                file_entries[ctx.rel] = {
                    "findings": [f.as_dict() for f in cached],
                    "suppressed": n_suppressed,
                }
            else:
                kept: list[Finding] = []
                n_suppressed = 0
                for rule in local_rules:
                    for finding in rule.visit(ctx):
                        if ctx.is_suppressed(
                            finding.rule,
                            finding.line,
                            require_justification=finding.rule
                            in JUSTIFIED_RULES,
                        ):
                            n_suppressed += 1
                        else:
                            kept.append(finding)
                findings.extend(kept)
                suppressed += n_suppressed
                file_entries[ctx.rel] = {
                    "findings": [f.as_dict() for f in kept],
                    "suppressed": n_suppressed,
                }

        # Phase 3: hand the whole-program graphs to rules that want
        # them, then finalize.
        project = AnalysisProject(contexts, package=self.root.name)
        for rule in self.rules:
            set_project = getattr(rule, "set_project", None)
            if set_project is not None:
                set_project(project)
        by_rel = {ctx.rel: ctx for ctx in contexts}
        for rule in self.rules:
            findings.extend(
                f
                for f in rule.finalize()
                if _keep(by_rel.get(f.path), f)
            )

        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        stale = apply_baseline(findings, baseline)

        import_edges = _rel_import_edges(project)
        relinted: list[str] | None = None
        if reusable:
            seeds = changed | deleted
            closure_edges = dict(cache.import_edges())
            closure_edges.update(import_edges)
            affected = seeds | dependents_closure(seeds, closure_edges)
            relinted = sorted(affected & set(digests))

        result = LintResult(
            root=str(self.root),
            files_scanned=len(contexts),
            findings=findings,
            suppressed=suppressed,
            stale_baseline=stale,
            relinted_files=relinted,
        )
        if cache is not None:
            cache.store(
                signature=signature,
                root=root_key,
                digests=digests,
                files=file_entries,
                result=_result_dump(result),
                imports=import_edges,
            )
        return result


def _parse_error(rel: str, exc: Exception) -> Finding:
    """The REP000 finding for a file that could not be read or parsed."""
    return Finding(
        rule="REP000",
        severity="error",
        path=rel,
        line=getattr(exc, "lineno", 1) or 1,
        col=0,
        symbol="parse",
        message=f"file could not be parsed: {exc}",
        hint="reprolint needs every file to parse",
    )


def _rel_import_edges(project: AnalysisProject) -> dict[str, list[str]]:
    """Internal import edges as importer-path -> imported-paths."""
    imports = project.imports
    edges: dict[str, set[str]] = {}
    for edge in imports.internal_edges():
        src_rel = imports.modules.get(edge.src)
        dst_rel = imports.modules.get(edge.dst)
        if src_rel and dst_rel and src_rel != dst_rel:
            edges.setdefault(src_rel, set()).add(dst_rel)
    return {src: sorted(dsts) for src, dsts in edges.items()}


def _result_dump(result: LintResult) -> dict[str, object]:
    """JSON-ready form of a result for the cache's full-replay path."""
    return {
        "root": result.root,
        "files_scanned": result.files_scanned,
        "suppressed": result.suppressed,
        "stale_baseline": sorted(result.stale_baseline),
        "findings": [f.as_dict() for f in result.findings],
    }


def _result_from_dump(dump: dict[str, object] | None) -> LintResult | None:
    """Rebuild a :class:`LintResult` stored by :func:`_result_dump`."""
    if dump is None:
        return None
    try:
        findings = [
            Finding(**{k: v for k, v in row.items() if k != "key"})
            for row in dump["findings"]  # type: ignore[union-attr]
        ]
        return LintResult(
            root=str(dump["root"]),
            files_scanned=int(dump["files_scanned"]),  # type: ignore[arg-type]
            findings=findings,
            suppressed=int(dump["suppressed"]),  # type: ignore[arg-type]
            stale_baseline=list(dump["stale_baseline"]),  # type: ignore[arg-type]
        )
    except (KeyError, TypeError, ValueError):
        return None


def default_root() -> Path:
    """The installed :mod:`repro` package directory (the default target)."""
    import repro

    return Path(repro.__file__).resolve().parent
