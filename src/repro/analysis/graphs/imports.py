"""Whole-program import graph over one package tree.

The graph records, per module, which other modules it imports, at which
line, and -- crucially for the layering contract (**REP102**) -- whether
the import is *eager* (executed at module import time) or *lazy*
(function-local, inside an ``if TYPE_CHECKING:`` block, or behind a
PEP 562 module ``__getattr__``).  Layering and cycle checks apply to
eager edges only: a lazy import cannot participate in an import-time
cycle and deliberately defers a dependency (the repo's established idiom
for cross-layer conveniences, e.g. the lazy ``profile`` export in
``repro/obs/__init__.py``).

Resolution handles the package's absolute-import style:

* ``import repro.network.graph`` / ``from repro.network import graph``
  resolve to the internal module ``network.graph`` (module names are
  kept relative to the linted root, matching finding paths);
* ``from repro.network.dijkstra import distance_matrix`` resolves to a
  *symbol* import: an edge to ``network.dijkstra`` carrying the name;
* re-exports chase through package ``__init__`` bindings
  (:meth:`ImportGraph.resolve_symbol`), including lazy PEP 562
  ``__getattr__`` forwards declared via a module-level name tuple
  (the ``_PROFILE_EXPORTS`` pattern);
* imports that do not resolve inside the tree are kept as *external*
  edges (``numpy``, stdlib, ...), which the layering rule uses to hold
  ``analysis/`` to its stdlib-only contract.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from typing import Protocol


class SourceModule(Protocol):
    """What the graph builders need to know about one parsed file."""

    rel: str
    tree: ast.Module


def module_name(rel: str) -> str:
    """Dotted module name of a root-relative path (``""`` = root package).

    >>> module_name("network/graph.py")
    'network.graph'
    >>> module_name("obs/__init__.py")
    'obs'
    >>> module_name("__init__.py")
    ''
    """
    parts = rel[: -len(".py")].split("/") if rel.endswith(".py") else rel.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass(frozen=True)
class ImportEdge:
    """One import statement, resolved.

    ``dst`` is an internal module name when ``external`` is False, else
    the external module's dotted name as written.  ``names`` lists the
    symbols a ``from``-import binds (empty for plain ``import m``).
    """

    src: str
    dst: str
    line: int
    eager: bool
    external: bool
    names: tuple[str, ...] = ()


@dataclass(frozen=True)
class Binding:
    """What one module-level name is bound to by an import.

    ``kind`` is ``"module"`` (the name is a module object) or
    ``"symbol"`` (the name was from-imported out of ``module``).
    """

    kind: str
    module: str
    symbol: str = ""


#: Tagged resolution result of :meth:`ImportGraph.resolve_symbol`:
#: ``("mod", module, "")`` for a module object, ``("def", module, name)``
#: for a name the module binds locally.
Resolved = tuple[str, str, str]


class _ImportVisitor(ast.NodeVisitor):
    """Collect imports of one module with eager/lazy classification."""

    def __init__(self, graph: ImportGraph, module: str) -> None:
        self.graph = graph
        self.module = module
        self.depth = 0  # enclosing function defs
        self.type_checking = 0  # enclosing `if TYPE_CHECKING:` blocks
        self.in_getattr = False  # inside a module-level PEP 562 __getattr__

    @property
    def eager(self) -> bool:
        return self.depth == 0 and self.type_checking == 0

    # -- scope tracking -------------------------------------------------
    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        was_getattr = self.in_getattr
        if self.depth == 0 and node.name == "__getattr__":
            self.in_getattr = True
        self.depth += 1
        self.generic_visit(node)
        self.depth -= 1
        self.in_getattr = was_getattr

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_If(self, node: ast.If) -> None:
        if _is_type_checking(node.test):
            self.type_checking += 1
            for child in node.body:
                self.visit(child)
            self.type_checking -= 1
            for child in node.orelse:
                self.visit(child)
        else:
            self.generic_visit(node)

    # -- imports --------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.graph._add_plain_import(
                self.module, alias, node.lineno, self.eager
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.graph._add_from_import(
            self.module, node, self.eager, self.in_getattr
        )


def _is_type_checking(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _module_level_names(tree: ast.Module) -> set[str]:
    """Names a module binds at top level by definition or assignment."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            names.add(elt.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            names.add(node.target.id)
    return names


def _str_tuple_constants(tree: ast.Module) -> dict[str, tuple[str, ...]]:
    """Module-level ``NAME = ("a", "b", ...)`` string-collection constants."""
    out: dict[str, tuple[str, ...]] = {}
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            values: list[str] = []
            ok = False
            for sub in ast.walk(node.value):
                if isinstance(sub, (ast.Tuple, ast.List, ast.Set)):
                    ok = True
                if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                    values.append(sub.value)
            if ok and values:
                out[node.targets[0].id] = tuple(values)
    return out


class ImportGraph:
    """Import structure of every module under one root.

    Parameters
    ----------
    sources:
        Parsed modules (objects with ``rel`` and ``tree``), typically
        :class:`~repro.analysis.engine.FileContext` instances.
    package:
        Importable name of the root package (``"repro"``); absolute
        imports starting with it resolve into the tree.  Imports whose
        first segment directly matches a tree module (the style the test
        fixtures use) resolve without the prefix.
    """

    def __init__(
        self, sources: Sequence[SourceModule], package: str = "repro"
    ) -> None:
        self.package = package
        #: module name -> root-relative path
        self.modules: dict[str, str] = {}
        self.edges: list[ImportEdge] = []
        self._defs: dict[str, set[str]] = {}
        self._bindings: dict[str, dict[str, Binding]] = {}
        self._lazy_exports: dict[str, dict[str, Binding]] = {}
        trees: dict[str, ast.Module] = {}
        for source in sources:
            mod = module_name(source.rel)
            self.modules[mod] = source.rel
            trees[mod] = source.tree
        for mod, tree in trees.items():
            self._defs[mod] = _module_level_names(tree)
            self._bindings.setdefault(mod, {})
            self._lazy_exports.setdefault(mod, {})
            self._collect_getattr_exports(mod, tree)
            _ImportVisitor(self, mod).visit(tree)

    # ------------------------------------------------------------------
    # Construction helpers (called by the visitor)
    # ------------------------------------------------------------------
    def _internal(self, dotted: str) -> str | None:
        """Resolve an absolute dotted name to an internal module name."""
        candidates = [dotted]
        if dotted == self.package:
            candidates.insert(0, "")
        elif dotted.startswith(self.package + "."):
            candidates.insert(0, dotted[len(self.package) + 1 :])
        for candidate in candidates:
            if candidate in self.modules:
                return candidate
        return None

    def _add_plain_import(
        self, src: str, alias: ast.alias, line: int, eager: bool
    ) -> None:
        target = self._internal(alias.name)
        if target is None:
            self.edges.append(
                ImportEdge(src, alias.name, line, eager, external=True)
            )
            return
        self.edges.append(ImportEdge(src, target, line, eager, external=False))
        bound = alias.asname or alias.name.split(".")[0]
        if alias.asname is not None:
            bound_target = target
        else:
            # `import repro.network.graph` binds `repro` (the root).
            bound_target = self._internal(alias.name.split(".")[0]) or target
        self._bindings[src][bound] = Binding("module", bound_target)

    def _add_from_import(
        self, src: str, node: ast.ImportFrom, eager: bool, in_getattr: bool
    ) -> None:
        if node.level:
            # Relative import: resolve against the source package.
            base_parts = src.split(".") if src else []
            if self.modules.get(src, "").endswith("__init__.py") or src == "":
                anchor = base_parts
            else:
                anchor = base_parts[:-1]
            hops = node.level - 1
            anchor = anchor[: len(anchor) - hops] if hops else anchor
            dotted = ".".join(anchor + ([node.module] if node.module else []))
            target = dotted if dotted in self.modules else None
        else:
            dotted = node.module or ""
            target = self._internal(dotted)
        if target is None:
            self.edges.append(
                ImportEdge(
                    src,
                    dotted,
                    node.lineno,
                    eager,
                    external=True,
                    names=tuple(a.name for a in node.names),
                )
            )
            return
        submodule_names: list[str] = []
        symbol_names: list[str] = []
        for alias in node.names:
            bound = alias.asname or alias.name
            child = f"{target}.{alias.name}" if target else alias.name
            if child in self.modules:
                submodule_names.append(alias.name)
                binding = Binding("module", child)
            else:
                symbol_names.append(alias.name)
                binding = Binding("symbol", target, alias.name)
            if in_getattr:
                self._lazy_exports[src][bound] = binding
            else:
                self._bindings[src][bound] = binding
        # One edge per imported submodule, one for the symbol imports.
        for name in submodule_names:
            child = f"{target}.{name}" if target else name
            self.edges.append(
                ImportEdge(src, child, node.lineno, eager, external=False)
            )
        if symbol_names or not node.names:
            self.edges.append(
                ImportEdge(
                    src,
                    target,
                    node.lineno,
                    eager,
                    external=False,
                    names=tuple(symbol_names),
                )
            )

    def _collect_getattr_exports(self, mod: str, tree: ast.Module) -> None:
        """Resolve the PEP 562 lazy-export pattern.

        A module-level ``__getattr__`` that gates on membership in a
        module-level string tuple and forwards to an imported module::

            _EXPORTS = ("ProfileReport", ...)

            def __getattr__(name):
                if name in _EXPORTS:
                    from repro.obs import profile
                    return getattr(profile, name)

        exports each listed name as a lazy re-export of that module.
        """
        constants = _str_tuple_constants(tree)
        for node in tree.body:
            if not (
                isinstance(node, ast.FunctionDef) and node.name == "__getattr__"
            ):
                continue
            for stmt in ast.walk(node):
                if not isinstance(stmt, ast.If):
                    continue
                names = self._membership_names(stmt.test, constants)
                if not names:
                    continue
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.ImportFrom) and not sub.level:
                        target = self._internal(sub.module or "")
                        if target is None:
                            continue
                        for alias in sub.names:
                            child = (
                                f"{target}.{alias.name}"
                                if target
                                else alias.name
                            )
                            fwd = child if child in self.modules else target
                            for exported in names:
                                self._lazy_exports[mod].setdefault(
                                    exported,
                                    Binding(
                                        "symbol",
                                        fwd,
                                        exported,
                                    ),
                                )

    @staticmethod
    def _membership_names(
        test: ast.expr, constants: dict[str, tuple[str, ...]]
    ) -> tuple[str, ...]:
        """Names matched by an ``if name in <collection>:`` test."""
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.In)
        ):
            return ()
        comparator = test.comparators[0]
        if isinstance(comparator, ast.Name):
            return constants.get(comparator.id, ())
        names: list[str] = []
        for sub in ast.walk(comparator):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                names.append(sub.value)
        return tuple(names)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def internal_edges(self, eager_only: bool = False) -> list[ImportEdge]:
        """Edges into the tree (optionally restricted to eager ones)."""
        return [
            e
            for e in self.edges
            if not e.external and (e.eager or not eager_only)
        ]

    def external_imports(self, module: str) -> list[ImportEdge]:
        """External (out-of-tree) imports of ``module``."""
        return [e for e in self.edges if e.external and e.src == module]

    def defines(self, module: str, name: str) -> bool:
        """Whether ``module`` binds ``name`` by def/class/assignment."""
        return name in self._defs.get(module, ())

    def binding_of(self, module: str, name: str) -> Binding | None:
        """The import binding of ``name`` in ``module`` (eager or lazy)."""
        bound = self._bindings.get(module, {}).get(name)
        if bound is None:
            bound = self._lazy_exports.get(module, {}).get(name)
        return bound

    def resolve_symbol(
        self, module: str, name: str, _seen: frozenset[tuple[str, str]] = frozenset()
    ) -> Resolved | None:
        """Chase ``module.name`` through re-exports to its definition.

        Returns ``("def", def_module, name)`` when a module binds the
        name itself, ``("mod", module, "")`` when the name is a module,
        and ``None`` when the chain leaves the tree or does not resolve.
        """
        if (module, name) in _seen:
            return None
        seen = _seen | {(module, name)}
        binding = self._bindings.get(module, {}).get(name)
        if binding is None:
            binding = self._lazy_exports.get(module, {}).get(name)
        if binding is not None:
            if binding.kind == "module":
                return ("mod", binding.module, "")
            resolved = self.resolve_symbol(binding.module, binding.symbol, seen)
            if resolved is not None:
                return resolved
            if self.defines(binding.module, binding.symbol):
                return ("def", binding.module, binding.symbol)
            return None
        if self.defines(module, name):
            return ("def", module, name)
        child = f"{module}.{name}" if module else name
        if child in self.modules:
            return ("mod", child, "")
        return None

    def eager_cycles(self) -> list[list[str]]:
        """Strongly connected components of size > 1 over eager edges.

        Any such component is an import-time cycle waiting for the wrong
        import order; returns each cycle as a module list in a stable
        order, smallest module name first.
        """
        adjacency: dict[str, set[str]] = {m: set() for m in self.modules}
        for edge in self.internal_edges(eager_only=True):
            if edge.src != edge.dst:
                adjacency.setdefault(edge.src, set()).add(edge.dst)
        # Iterative Tarjan SCC.
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = 0
        cycles: list[list[str]] = []

        for start in sorted(adjacency):
            if start in index:
                continue
            work: list[tuple[str, Iterator[str]]] = [
                (start, iter(sorted(adjacency.get(start, ()))))
            ]
            index[start] = low[start] = counter
            counter += 1
            stack.append(start)
            on_stack.add(start)
            while work:
                node, neighbors = work[-1]
                advanced = False
                for nxt in neighbors:
                    if nxt not in index:
                        index[nxt] = low[nxt] = counter
                        counter += 1
                        stack.append(nxt)
                        on_stack.add(nxt)
                        work.append((nxt, iter(sorted(adjacency.get(nxt, ())))))
                        advanced = True
                        break
                    if nxt in on_stack:
                        low[node] = min(low[node], index[nxt])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        pivot = component.index(min(component))
                        cycles.append(
                            component[pivot:] + component[:pivot]
                        )
        return sorted(cycles)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, object]:
        """JSON-ready node/edge form of the graph."""
        return {
            "kind": "imports",
            "package": self.package,
            "modules": dict(sorted(self.modules.items())),
            "edges": [
                {
                    "src": e.src,
                    "dst": e.dst,
                    "line": e.line,
                    "eager": e.eager,
                    "external": e.external,
                    "names": list(e.names),
                }
                for e in sorted(
                    self.edges, key=lambda e: (e.src, e.dst, e.line)
                )
            ],
        }

    def to_dot(self, include_external: bool = False) -> str:
        """GraphViz DOT rendering (eager edges solid, lazy dashed)."""
        lines = ["digraph imports {", "  rankdir=BT;", '  node [shape=box];']
        seen: set[tuple[str, str, bool]] = set()
        for edge in sorted(self.edges, key=lambda e: (e.src, e.dst)):
            if edge.external and not include_external:
                continue
            key = (edge.src, edge.dst, edge.eager)
            if key in seen or edge.src == edge.dst:
                continue
            seen.add(key)
            style = "solid" if edge.eager else "dashed"
            src = edge.src or "<root>"
            dst = edge.dst or "<root>"
            lines.append(f'  "{src}" -> "{dst}" [style={style}];')
        lines.append("}")
        return "\n".join(lines)


def build_import_graph(
    sources: Iterable[SourceModule], package: str = "repro"
) -> ImportGraph:
    """Build an :class:`ImportGraph` over parsed sources."""
    return ImportGraph(list(sources), package=package)
