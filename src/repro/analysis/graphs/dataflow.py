"""Generic monotone dataflow solver over reprolint CFGs.

A :class:`DataflowProblem` describes one analysis: its direction
(forward or backward), its join (may = union, must = intersection), the
initial value at the boundary, and a transfer function.  The transfer
function is *edge-sensitive*: ``flow(block, value, kind)`` receives the
kind of the out-edge being followed, so an exception edge can carry a
different value than the fallthrough edge out of the same block (the
classic example: an exception raised *during* an acquisition statement
means the resource was never acquired, so the ``"exc"`` edge must not
carry the gen set).

:func:`solve` runs chaotic worklist iteration to the least (may) /
greatest (must) fixpoint and reports the iteration count, which the
hypothesis soundness suite uses to check monotonicity.

Values are ``frozenset`` instances throughout -- small, hashable, and
cheap to join.  Rules that need richer lattices can encode tuples into
set elements.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Callable

from .cfg import CFG

__all__ = [
    "DataflowProblem",
    "DataflowResult",
    "Transfer",
    "gen_kill",
    "solve",
]

Value = frozenset
Transfer = Callable[[int, "Value[object]", str], "Value[object]"]


@dataclass(frozen=True)
class DataflowProblem:
    """One monotone analysis over a CFG.

    ``direction``
        ``"forward"`` propagates from ``entry`` along edges;
        ``"backward"`` propagates from ``exit``/``raise_exit`` against
        them.
    ``may``
        ``True`` joins with union (fact holds on *some* path),
        ``False`` with intersection (fact holds on *all* paths).
    ``universe``
        The full fact set; required for must-analyses, where unvisited
        predecessors must start at top (= the universe) so that the
        intersection does not leak optimism from unreachable code.
    ``flow``
        Edge-sensitive transfer ``(block_index, in_value, edge_kind) ->
        out_value``.  Must be monotone in ``in_value``.
    ``boundary``
        Value entering the graph (at ``entry`` forward, at the exit
        blocks backward).
    """

    flow: Transfer
    direction: str = "forward"
    may: bool = True
    boundary: Value[object] = frozenset()
    universe: Value[object] = frozenset()

    def join(self, values: Iterable[Value[object]]) -> Value[object]:
        """Combine predecessor values per ``may``."""
        result: Value[object] | None = None
        for value in values:
            if result is None:
                result = value
            elif self.may:
                result = result | value
            else:
                result = result & value
        if result is None:
            return frozenset() if self.may else self.universe
        return result


@dataclass
class DataflowResult:
    """Fixpoint: per-block IN values plus solver statistics."""

    block_in: dict[int, Value[object]] = field(default_factory=dict)
    #: Value flowing along each (src, dst, kind) edge at the fixpoint.
    edge_out: dict[tuple[int, int, str], Value[object]] = field(
        default_factory=dict
    )
    iterations: int = 0

    def value_into(self, block: int) -> Value[object]:
        """IN value of ``block`` (bottom if never reached)."""
        return self.block_in.get(block, frozenset())


def gen_kill(
    gen: dict[int, frozenset[object]],
    kill: dict[int, frozenset[object]],
    *,
    gen_on_exc: bool = False,
) -> Transfer:
    """Build a classic gen/kill transfer from per-block sets.

    With ``gen_on_exc`` false (the default), exception edges carry
    ``IN - kill`` only: the block's effect is assumed *not yet complete*
    when the exception fires, but an attempted release still discharges
    the obligation (kills survive).  Normal edges carry the usual
    ``(IN - kill) | gen``.
    """
    empty: frozenset[object] = frozenset()

    def flow(block: int, value: Value[object], kind: str) -> Value[object]:
        out = value - kill.get(block, empty)
        if kind != "exc" or gen_on_exc:
            out = out | gen.get(block, empty)
        return out

    return flow


def solve(cfg: CFG, problem: DataflowProblem) -> DataflowResult:
    """Run worklist iteration on ``problem`` over ``cfg`` to fixpoint."""
    forward = problem.direction == "forward"
    # Adjacency in the direction of propagation, with edge kinds.
    succ: dict[int, list[tuple[int, str]]] = {
        b.index: [] for b in cfg.blocks
    }
    pred: dict[int, list[tuple[int, str]]] = {
        b.index: [] for b in cfg.blocks
    }
    for edge in cfg.edges:
        src, dst = (edge.src, edge.dst) if forward else (edge.dst, edge.src)
        succ[src].append((dst, edge.kind))
        pred[dst].append((src, edge.kind))

    roots = [cfg.entry] if forward else [cfg.exit, cfg.raise_exit]
    block_in: dict[int, Value[object]] = {r: problem.boundary for r in roots}
    edge_out: dict[tuple[int, int, str], Value[object]] = {}

    work: deque[int] = deque(roots)
    queued = set(work)
    iterations = 0
    while work:
        block = work.popleft()
        queued.discard(block)
        iterations += 1
        if block not in roots:
            incoming = [
                edge_out[(p, block, kind)]
                for p, kind in pred[block]
                if (p, block, kind) in edge_out
            ]
            new_in = problem.join(incoming)
            if block in block_in and new_in == block_in[block]:
                continue
            block_in[block] = new_in
        value = block_in[block]
        for nxt, kind in succ[block]:
            out = problem.flow(block, value, kind)
            key = (block, nxt, kind)
            if edge_out.get(key) != out:
                edge_out[key] = out
                if nxt not in queued:
                    queued.add(nxt)
                    work.append(nxt)
    return DataflowResult(
        block_in=block_in, edge_out=edge_out, iterations=iterations
    )
