"""Whole-program graphs for reprolint's cross-file rules.

This subpackage is the interprocedural layer under
:mod:`repro.analysis.engine`: an import graph (:mod:`.imports`), a
name-resolution call graph (:mod:`.callgraph`), conservative effect
inference (:mod:`.effects`), and the declared architecture layering
(:mod:`.layering`).  Everything here is stdlib-only -- the linter must
run on a tree that does not even import.

:class:`AnalysisProject` bundles the parsed files of one engine run and
builds each graph lazily, exactly once; rules receive it through
``Rule.set_project`` before ``finalize``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.graphs.callgraph import (
    SOLVERS_NODE,
    CallEdge,
    CallGraph,
    ClassInfo,
    FunctionInfo,
    build_call_graph,
)
from repro.analysis.graphs.effects import (
    MUTATION_KINDS,
    MUTATOR_METHODS,
    Effect,
    EffectAnalysis,
    build_effects,
)
from repro.analysis.graphs.imports import (
    ImportEdge,
    ImportGraph,
    SourceModule,
    build_import_graph,
    module_name,
)
from repro.analysis.graphs.layering import (
    DEFAULT_RANK,
    LAYER_RANKS,
    LayerViolation,
    check_layering,
    layer_table,
    rank_of,
)

__all__ = [
    "DEFAULT_RANK",
    "LAYER_RANKS",
    "MUTATION_KINDS",
    "MUTATOR_METHODS",
    "SOLVERS_NODE",
    "AnalysisProject",
    "CallEdge",
    "CallGraph",
    "ClassInfo",
    "Effect",
    "EffectAnalysis",
    "FunctionInfo",
    "ImportEdge",
    "ImportGraph",
    "LayerViolation",
    "SourceModule",
    "build_call_graph",
    "build_effects",
    "build_import_graph",
    "check_layering",
    "layer_table",
    "module_name",
    "rank_of",
]


class AnalysisProject:
    """Parsed files of one lint run plus lazily-built program graphs.

    The engine constructs one per run after every file has parsed and
    hands it to rules that define ``set_project``; each graph is built
    on first access and shared by every rule that asks.
    """

    def __init__(
        self, sources: Sequence[SourceModule], package: str = "repro"
    ) -> None:
        self.sources = list(sources)
        self.package = package
        self._imports: ImportGraph | None = None
        self._calls: CallGraph | None = None
        self._effects: EffectAnalysis | None = None

    @property
    def imports(self) -> ImportGraph:
        """The import graph (built on first access)."""
        if self._imports is None:
            self._imports = build_import_graph(
                self.sources, package=self.package
            )
        return self._imports

    @property
    def calls(self) -> CallGraph:
        """The call graph (built on first access)."""
        if self._calls is None:
            self._calls = build_call_graph(self.sources, self.imports)
        return self._calls

    @property
    def effects(self) -> EffectAnalysis:
        """Effect inference over the call graph (built on first access)."""
        if self._effects is None:
            self._effects = build_effects(self.calls)
        return self._effects

    def rel_of_module(self, module: str) -> str:
        """Root-relative path of an internal module name."""
        return self.imports.modules.get(module, "")
