"""Whole-program graphs for reprolint's cross-file rules.

This subpackage is the interprocedural layer under
:mod:`repro.analysis.engine`: an import graph (:mod:`.imports`), a
name-resolution call graph (:mod:`.callgraph`), conservative effect
inference (:mod:`.effects`), and the declared architecture layering
(:mod:`.layering`).  Everything here is stdlib-only -- the linter must
run on a tree that does not even import.

:class:`AnalysisProject` bundles the parsed files of one engine run and
builds each graph lazily, exactly once; rules receive it through
``Rule.set_project`` before ``finalize``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.graphs.callgraph import (
    SOLVERS_NODE,
    CallEdge,
    CallGraph,
    ClassInfo,
    FunctionInfo,
    build_call_graph,
)
from repro.analysis.graphs.cfg import (
    CFG,
    BasicBlock,
    CFGEdge,
    build_cfg,
    can_raise,
    header_nodes,
)
from repro.analysis.graphs.dataflow import (
    DataflowProblem,
    DataflowResult,
    gen_kill,
    solve,
)
from repro.analysis.graphs.effects import (
    MUTATION_KINDS,
    MUTATOR_METHODS,
    Effect,
    EffectAnalysis,
    build_effects,
)
from repro.analysis.graphs.imports import (
    ImportEdge,
    ImportGraph,
    SourceModule,
    build_import_graph,
    module_name,
)
from repro.analysis.graphs.layering import (
    DEFAULT_RANK,
    LAYER_RANKS,
    LayerViolation,
    check_layering,
    layer_table,
    rank_of,
)

__all__ = [
    "CFG",
    "DEFAULT_RANK",
    "LAYER_RANKS",
    "MUTATION_KINDS",
    "MUTATOR_METHODS",
    "SOLVERS_NODE",
    "AnalysisProject",
    "BasicBlock",
    "CFGEdge",
    "CFGIndex",
    "CallEdge",
    "CallGraph",
    "ClassInfo",
    "DataflowProblem",
    "DataflowResult",
    "Effect",
    "EffectAnalysis",
    "FunctionInfo",
    "ImportEdge",
    "ImportGraph",
    "LayerViolation",
    "SourceModule",
    "build_call_graph",
    "build_cfg",
    "build_effects",
    "build_import_graph",
    "can_raise",
    "header_nodes",
    "check_layering",
    "gen_kill",
    "layer_table",
    "module_name",
    "rank_of",
    "solve",
]


class CFGIndex:
    """Lazy per-function CFG cache shared by every path-sensitive rule.

    Keys are call-graph node ids (``module.Qual.name``); each CFG is
    built from the AST the call graph already holds, on first request,
    so N rules asking about the same function share one build.
    """

    def __init__(self, calls: CallGraph) -> None:
        self._calls = calls
        self._cfgs: dict[str, CFG] = {}

    def get(self, node_id: str) -> CFG | None:
        """The CFG of ``node_id``, or ``None`` for unknown functions."""
        cached = self._cfgs.get(node_id)
        if cached is not None:
            return cached
        func = self._calls.function_ast(node_id)
        if func is None:
            return None
        cfg = build_cfg(func, name=node_id)
        self._cfgs[node_id] = cfg
        return cfg

    def node_ids(self) -> list[str]:
        """Every known function node id (sorted, deterministic)."""
        return sorted(self._calls.functions)

    def in_module(self, module: str) -> list[str]:
        """Function node ids defined in ``module`` (sorted)."""
        return sorted(
            node_id
            for node_id, info in self._calls.functions.items()
            if info.module == module
        )

    def built(self) -> int:
        """How many CFGs have actually been constructed (for stats)."""
        return len(self._cfgs)


class AnalysisProject:
    """Parsed files of one lint run plus lazily-built program graphs.

    The engine constructs one per run after every file has parsed and
    hands it to rules that define ``set_project``; each graph is built
    on first access and shared by every rule that asks.
    """

    def __init__(
        self, sources: Sequence[SourceModule], package: str = "repro"
    ) -> None:
        self.sources = list(sources)
        self.package = package
        self._imports: ImportGraph | None = None
        self._calls: CallGraph | None = None
        self._effects: EffectAnalysis | None = None
        self._cfgs: CFGIndex | None = None

    @property
    def imports(self) -> ImportGraph:
        """The import graph (built on first access)."""
        if self._imports is None:
            self._imports = build_import_graph(
                self.sources, package=self.package
            )
        return self._imports

    @property
    def calls(self) -> CallGraph:
        """The call graph (built on first access)."""
        if self._calls is None:
            self._calls = build_call_graph(self.sources, self.imports)
        return self._calls

    @property
    def effects(self) -> EffectAnalysis:
        """Effect inference over the call graph (built on first access)."""
        if self._effects is None:
            self._effects = build_effects(self.calls)
        return self._effects

    @property
    def cfgs(self) -> CFGIndex:
        """Per-function CFG index (lazy; CFGs built once, shared)."""
        if self._cfgs is None:
            self._cfgs = CFGIndex(self.calls)
        return self._cfgs

    def rel_of_module(self, module: str) -> str:
        """Root-relative path of an internal module name."""
        return self.imports.modules.get(module, "")
