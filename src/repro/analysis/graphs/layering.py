"""The declared architecture layering of :mod:`repro` (REP102's data).

The contract is a rank table over module prefixes: an *eager* import is
legal iff the imported module's rank is less than or equal to the
importing module's rank (lower rank = deeper foundation).  Lazy imports
(function-local, ``if TYPE_CHECKING:``, PEP 562 ``__getattr__``) are
exempt -- they cannot create import-time cycles and are the sanctioned
way to reach *up* the stack (e.g. ``runtime.runner`` lazily importing
the solver registry).

The ranks encode the DAG from the roadmap,
``errors/obs -> network -> flow -> {baselines, core} -> runtime ->
bench/cli``, refined to module granularity where one package straddles
layers:

* ``runtime.budget`` sits *below* ``network`` (hot kernels call
  ``budget.checkpoint()`` eagerly), while the rest of ``runtime``
  (options/runner/faults) sits above the solvers it orchestrates;
* ``obs`` is foundational, except ``obs.profile`` which drives whole
  solver runs and therefore ranks with the harness layers;
* ``analysis`` (this linter) is rank-topmost as a *target* and, as a
  *source*, may eagerly import *nothing but the standard library* and
  its own subpackage -- it must stay runnable on a tree that does not
  even import.

Most-specific prefix wins: ``obs.profile`` matches before ``obs``.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from repro.analysis.graphs.imports import ImportEdge, ImportGraph

#: (module-name prefix, rank).  Matched most-specific-first; a module
#: with no matching prefix gets :data:`DEFAULT_RANK`.
LAYER_RANKS: tuple[tuple[str, int], ...] = (
    ("errors", 0),
    ("obs.profile", 7),
    ("obs", 0),
    ("runtime.budget", 1),
    ("geometry", 1),
    ("network", 2),
    ("flow", 3),
    ("runtime", 4),
    ("core", 5),
    ("baselines", 6),
    ("datagen", 6),
    ("io", 6),
    ("serve", 6),
    ("", 8),  # the root package __init__ assembles everything
    ("__main__", 9),
    ("bench", 9),
    ("cli", 9),
    ("analysis", 9),
)

#: Rank of modules not matched by any prefix (top: may import anything).
DEFAULT_RANK = 9

#: Modules whose *source side* is restricted to stdlib + their own
#: subpackage, regardless of rank.
STDLIB_ONLY_PREFIXES: tuple[str, ...] = ("analysis",)


def rank_of(module: str) -> int:
    """Layer rank of a module name (most-specific prefix match)."""
    best_len = -1
    best_rank = DEFAULT_RANK
    for prefix, rank in LAYER_RANKS:
        if module == prefix or (prefix and module.startswith(prefix + ".")):
            if len(prefix) > best_len:
                best_len = len(prefix)
                best_rank = rank
    return best_rank


def layer_table() -> list[tuple[str, int]]:
    """The rank table sorted by rank then prefix (for docs/export)."""
    return sorted(LAYER_RANKS, key=lambda item: (item[1], item[0]))


def _stdlib_names() -> frozenset[str]:
    return frozenset(sys.stdlib_module_names)


@dataclass(frozen=True)
class LayerViolation:
    """One layering violation, with the offending import chain."""

    #: ``"rank"`` (upward eager import), ``"stdlib"`` (analysis importing
    #: a third-party or in-tree module), or ``"cycle"``.
    kind: str
    module: str
    line: int
    chain: tuple[str, ...]
    message: str


def check_layering(
    graph: ImportGraph,
    stdlib_extra: frozenset[str] = frozenset(),
) -> list[LayerViolation]:
    """All layering violations of an import graph.

    ``stdlib_extra`` names additional modules the stdlib-only contract
    tolerates (tests inject fakes through it).
    """
    violations: list[LayerViolation] = []
    stdlib = _stdlib_names() | stdlib_extra

    for edge in graph.edges:
        if edge.src.startswith(STDLIB_ONLY_PREFIXES) and edge.eager:
            violations.extend(_check_stdlib_only(edge, stdlib))
        if edge.external or not edge.eager:
            continue
        src_rank = rank_of(edge.src)
        dst_rank = rank_of(edge.dst)
        if dst_rank > src_rank:
            chain = (edge.src, edge.dst)
            violations.append(
                LayerViolation(
                    kind="rank",
                    module=edge.src,
                    line=edge.line,
                    chain=chain,
                    message=(
                        f"eager import chain {' -> '.join(chain)} climbs "
                        f"from layer {src_rank} to layer {dst_rank}; "
                        f"import lazily (inside the function or under "
                        f"TYPE_CHECKING) or move the dependency down"
                    ),
                )
            )

    for cycle in graph.eager_cycles():
        chain = (*cycle, cycle[0])
        violations.append(
            LayerViolation(
                kind="cycle",
                module=cycle[0],
                line=_cycle_line(graph, cycle),
                chain=chain,
                message=(
                    f"eager import cycle {' -> '.join(chain)}; break it "
                    f"with a lazy (function-local) import"
                ),
            )
        )
    violations.sort(key=lambda v: (v.module, v.line, v.kind))
    return violations


def _check_stdlib_only(
    edge: ImportEdge, stdlib: frozenset[str]
) -> list[LayerViolation]:
    """The analysis-side contract: eager imports are stdlib or own-tree."""
    if edge.external:
        top = edge.dst.split(".")[0]
        if top in stdlib:
            return []
        what = f"third-party module {edge.dst!r}"
    else:
        if edge.dst.startswith(STDLIB_ONLY_PREFIXES):
            return []
        what = f"in-tree module {edge.dst!r}"
    return [
        LayerViolation(
            kind="stdlib",
            module=edge.src,
            line=edge.line,
            chain=(edge.src, edge.dst),
            message=(
                f"analysis module {edge.src} eagerly imports {what}; "
                f"the linter must run from a pure stdlib environment -- "
                f"import lazily or move the code out of analysis/"
            ),
        )
    ]


def _cycle_line(graph: ImportGraph, cycle: list[str]) -> int:
    members = set(cycle)
    for edge in graph.internal_edges(eager_only=True):
        if edge.src == cycle[0] and edge.dst in members:
            return edge.line
    return 1
