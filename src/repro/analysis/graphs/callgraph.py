"""Name-resolution call graph over one package tree.

Static, conservative, stdlib-only.  Nodes are function definitions
(module functions, methods, nested functions), identified as
``module.Qual.name`` (e.g. ``network.kernels.DijkstraWorkspace.run``).
Edges are direct calls resolved by name:

* module-level functions, through the module's import bindings and
  re-export chains (:meth:`~repro.analysis.graphs.imports.ImportGraph.resolve_symbol`);
* methods, through a light local type inference: ``self`` (including
  base classes), parameter annotations (plain, string, ``X | None``,
  ``Optional[X]``), ``x = ClassName(...)`` constructor assignments, and
  return annotations of already-resolved calls
  (``ws = workspace_for(net)`` types ``ws`` when ``workspace_for`` is
  annotated ``-> DijkstraWorkspace``);
* property getters, for attribute *loads* on a typed base
  (``network.csr_lists`` creates an edge into the ``csr_lists``
  property, which is how cache-mutating getters become reachable);
* registry edges: a virtual ``<SOLVERS>`` caller with edges to every
  value of the top-level ``SOLVERS`` dict and to every
  ``@solver_api``-decorated function (the ``MethodSpec`` registry),
  modelling the dynamic ``SOLVERS[method](...)`` dispatch.

Unresolvable calls (dynamic dispatch, out-of-tree callees) produce no
edge -- the graph under-approximates, and every rule built on it is
worded accordingly (REP101 additionally honours a *lexical* checkpoint
call, so an unresolved ``checkpoint()`` still counts).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.analysis.graphs.imports import ImportGraph, SourceModule, module_name

#: Virtual caller node modelling ``SOLVERS[method](...)`` dispatch.
SOLVERS_NODE = "<SOLVERS>"


def _dotted(node: ast.expr) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _is_checkpoint_name(name: str) -> bool:
    """The lexical checkpoint heuristic shared with REP101."""
    return "checkpoint" in name or name == "tick"


def _annotation_names(annotation: ast.expr | None) -> list[str]:
    """Candidate class names inside an annotation expression.

    Handles plain names, dotted names, string annotations, ``X | None``
    unions, ``Optional[X]``, and the first argument of other subscripts.
    """
    if annotation is None:
        return []
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return []
    names: list[str] = []
    stack: list[ast.expr] = [annotation]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted:
                names.append(dotted)
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            stack.extend([node.left, node.right])
        elif isinstance(node, ast.Subscript):
            base = node.value
            base_name = _dotted(base) if not isinstance(base, ast.Name) else base.id
            if base_name.rsplit(".", 1)[-1] == "Optional":
                stack.append(node.slice)
            # Other generics (list[Network], ...) are containers, not
            # the instance type itself -- skip.
    return [n for n in names if n not in ("None", "NoneType")]


@dataclass
class FunctionInfo:
    """One function definition node in the graph."""

    node_id: str
    module: str
    qualname: str
    line: int
    #: ``module.Class`` key when this is a method, else ``""``.
    class_key: str
    is_property: bool
    is_public: bool
    #: parameter name -> resolved ``module.Class`` key (annotation-based).
    param_types: dict[str, str] = field(default_factory=dict)
    #: resolved ``module.Class`` return type key, if annotated.
    return_type: str = ""
    #: body contains a lexical ``*checkpoint*``/``tick`` call.
    direct_checkpoint: bool = False
    #: decorated with ``@solver_api`` (MethodSpec registry entry).
    solver_api: bool = False


@dataclass
class ClassInfo:
    """One class definition: methods, properties, base-class keys."""

    class_key: str
    module: str
    name: str
    line: int
    methods: dict[str, str] = field(default_factory=dict)
    properties: dict[str, str] = field(default_factory=dict)
    bases: list[str] = field(default_factory=list)
    #: instance attribute name -> class key (from class-body annotations
    #: and ``self.x = <typed>`` assignments in ``__init__``).
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class CallEdge:
    """A resolved call (or property access) site.

    ``kind`` is ``"call"``, ``"property"`` (attribute load of a property
    getter), or ``"registry"`` (virtual dispatch edge).  ``binding``
    maps the callee's parameter names to the caller-side *roots* of the
    arguments that are plain name/attribute chains (``self``, a
    parameter name, or a module-global name) -- the effect engine uses
    it to translate callee effects into caller terms.
    """

    caller: str
    callee: str
    line: int
    kind: str = "call"
    binding: tuple[tuple[str, str], ...] = ()


class CallGraph:
    """Whole-program call graph built over an :class:`ImportGraph`."""

    def __init__(
        self, sources: Sequence[SourceModule], imports: ImportGraph
    ) -> None:
        self.imports = imports
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.edges: list[CallEdge] = []
        #: function node id -> its AST, for the effect engine.
        self._defs: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        #: module -> name -> node id of module-level functions.
        self._module_funcs: dict[str, dict[str, str]] = {}
        #: module -> name -> class key of module-level classes.
        self._module_classes: dict[str, dict[str, str]] = {}
        self._out: dict[str, set[str]] | None = None
        trees = {module_name(s.rel): s.tree for s in sources}
        for module, tree in trees.items():
            self._index_module(module, tree)
        self._collect_attr_types()
        #: module -> global name -> class key (module-level AnnAssign).
        self._global_types: dict[str, dict[str, str]] = {}
        for module, tree in trees.items():
            table: dict[str, str] = {}
            for node in tree.body:
                if isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    key = self._annotation_class(module, node.annotation)
                    if key:
                        table[node.target.id] = key
            self._global_types[module] = table
        # Signature typing for every function FIRST, so cross-module
        # return-annotation inference does not depend on module order.
        for node_id, func in self._defs.items():
            self._type_signature(self.functions[node_id], func)
        for node_id, func in self._defs.items():
            self._resolve_function(self.functions[node_id], func)
        self._add_registry_edges(trees)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def _index_module(self, module: str, tree: ast.Module) -> None:
        self._module_funcs.setdefault(module, {})
        self._module_classes.setdefault(module, {})
        self._index_body(module, tree.body, prefix="", class_info=None)

    def _index_body(
        self,
        module: str,
        body: Iterable[ast.stmt],
        prefix: str,
        class_info: ClassInfo | None,
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(module, node, prefix, class_info)
            elif isinstance(node, ast.ClassDef):
                qual = f"{prefix}{node.name}"
                key = f"{module}.{qual}" if module else qual
                info = ClassInfo(
                    class_key=key,
                    module=module,
                    name=qual,
                    line=node.lineno,
                    bases=[b for b in (_dotted(base) for base in node.bases) if b],
                )
                self.classes[key] = info
                if not prefix:
                    self._module_classes[module][node.name] = key
                self._index_body(
                    module, node.body, prefix=f"{qual}.", class_info=info
                )
            elif isinstance(node, (ast.If, ast.Try, ast.With)):
                # Conditionally-defined module-level functions still count.
                sub: list[ast.stmt] = list(node.body)
                if isinstance(node, ast.Try):
                    for handler in node.handlers:
                        sub.extend(handler.body)
                    sub.extend(node.finalbody)
                sub.extend(getattr(node, "orelse", []))
                self._index_body(module, sub, prefix, class_info)

    def _index_function(
        self,
        module: str,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        prefix: str,
        class_info: ClassInfo | None,
    ) -> None:
        qual = f"{prefix}{node.name}"
        node_id = f"{module}.{qual}" if module else qual
        is_property = False
        is_solver_api = False
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = _dotted(target)
            simple = name.rsplit(".", 1)[-1]
            if simple in ("property", "cached_property"):
                is_property = True
            if simple == "solver_api":
                is_solver_api = True
        direct = any(
            isinstance(sub, ast.Call) and _is_checkpoint_name(_call_name(sub))
            for sub in ast.walk(node)
        )
        info = FunctionInfo(
            node_id=node_id,
            module=module,
            qualname=qual,
            line=node.lineno,
            class_key=class_info.class_key if class_info else "",
            is_property=is_property,
            is_public=not node.name.startswith("_"),
            direct_checkpoint=direct,
            solver_api=is_solver_api,
        )
        self.functions[node_id] = info
        self._defs[node_id] = node
        if class_info is not None and prefix == f"{class_info.name}.":
            class_info.methods[node.name] = node_id
            if is_property:
                class_info.properties[node.name] = node_id
        elif not prefix:
            self._module_funcs[module][node.name] = node_id
        # Nested defs are indexed too (their calls get attributed to
        # them), but are not name-resolvable from the outside.
        self._index_body(module, node.body, prefix=f"{qual}.", class_info=None)

    # ------------------------------------------------------------------
    # Resolution helpers
    # ------------------------------------------------------------------
    def lookup_function(self, module: str, name: str) -> str | None:
        """Resolve ``name`` in ``module`` to a function node id."""
        direct = self._module_funcs.get(module, {}).get(name)
        if direct is not None:
            return direct
        resolved = self.imports.resolve_symbol(module, name)
        if resolved is not None and resolved[0] == "def":
            return self._module_funcs.get(resolved[1], {}).get(resolved[2])
        return None

    def lookup_class(self, module: str, name: str) -> str | None:
        """Resolve ``name`` in ``module`` to a class key."""
        simple = name.rsplit(".", 1)[-1] if "." in name else name
        direct = self._module_classes.get(module, {}).get(name)
        if direct is not None:
            return direct
        resolved = self.imports.resolve_symbol(module, simple)
        if resolved is not None and resolved[0] == "def":
            return self._module_classes.get(resolved[1], {}).get(resolved[2])
        return None

    def _class_attr(self, class_key: str, attr: str) -> str | None:
        """A method/property node id on ``class_key`` or its bases."""
        seen: set[str] = set()
        stack = [class_key]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            info = self.classes.get(key)
            if info is None:
                continue
            node_id = info.methods.get(attr)
            if node_id is not None:
                return node_id
            for base in info.bases:
                base_key = self.lookup_class(info.module, base)
                if base_key is not None:
                    stack.append(base_key)
        return None

    def _is_property_node(self, node_id: str) -> bool:
        info = self.functions.get(node_id)
        return info is not None and info.is_property

    def _annotation_class(self, module: str, annotation: ast.expr | None) -> str:
        for name in _annotation_names(annotation):
            key = self.lookup_class(module, name)
            if key is not None:
                return key
        return ""

    def _collect_attr_types(self) -> None:
        """Type instance attributes from class-body annotations and
        ``self.x = <param>``/``self.x = ClassName(...)`` in ``__init__``."""
        for info in self.classes.values():
            init_id = info.methods.get("__init__")
            if init_id is None:
                continue
            func = self._defs[init_id]
            types: dict[str, str] = {"self": info.class_key}
            for arg in (*func.args.posonlyargs, *func.args.args,
                        *func.args.kwonlyargs):
                key = self._annotation_class(info.module, arg.annotation)
                if key:
                    types[arg.arg] = key
            for node in ast.walk(func):
                target: ast.expr | None = None
                value: ast.expr | None = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                if isinstance(node, ast.AnnAssign):
                    key = self._annotation_class(info.module, node.annotation)
                elif isinstance(value, ast.Name):
                    key = types.get(value.id, "")
                elif isinstance(value, ast.Call):
                    inferred = self._callee_of(info.module, value, types)
                    key = (
                        inferred[1]
                        if inferred is not None and inferred[0] == "class"
                        else ""
                    )
                else:
                    key = ""
                if key:
                    info.attr_types.setdefault(target.attr, key)

    # ------------------------------------------------------------------
    # Per-function resolution
    # ------------------------------------------------------------------
    def _type_signature(
        self, info: FunctionInfo, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        module = info.module
        args = func.args
        all_args = [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
        ]
        for index, arg in enumerate(all_args):
            if index == 0 and arg.arg in ("self", "cls") and info.class_key:
                continue
            info.param_types[arg.arg] = self._annotation_class(
                module, arg.annotation
            )
        info.return_type = self._annotation_class(module, func.returns)

    def _resolve_function(
        self, info: FunctionInfo, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        module = info.module
        types: dict[str, str] = {}
        args = func.args
        all_args = [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
        ]
        for index, arg in enumerate(all_args):
            if index == 0 and arg.arg in ("self", "cls") and info.class_key:
                types[arg.arg] = info.class_key
                continue
            key = info.param_types.get(arg.arg, "")
            if key:
                types[arg.arg] = key

        own: list[ast.stmt] = list(func.body)
        # Single forward pass: assignments refine `types`, every call /
        # property access becomes an edge.  Nested defs are resolved on
        # their own (they appear in self._defs), so don't descend.
        stack: list[ast.AST] = list(func.body)
        ordered: list[ast.AST] = []
        while stack:
            node = stack.pop(0)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            ordered.append(node)
            stack[0:0] = list(ast.iter_child_nodes(node))
        del own
        for node in ordered:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    inferred = self._infer_expr_type(module, node.value, types)
                    if inferred:
                        types[target.id] = inferred
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                key = self._annotation_class(module, node.annotation)
                if key:
                    types[node.target.id] = key
            if isinstance(node, ast.Call):
                self._resolve_call(info, node, types)
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                self._resolve_property_access(info, node, types)

    def _infer_expr_type(
        self, module: str, value: ast.expr, types: dict[str, str]
    ) -> str:
        """Static type of an assigned expression, as a class key."""
        if isinstance(value, ast.IfExp):
            return self._infer_expr_type(
                module, value.body, types
            ) or self._infer_expr_type(module, value.orelse, types)
        if isinstance(value, ast.Name):
            local = types.get(value.id, "")
            if local:
                return local
            return self._global_types.get(module, {}).get(value.id, "")
        if not isinstance(value, ast.Call):
            return ""
        target = self._callee_of(module, value, types)
        if target is None:
            return ""
        kind, node_id = target
        if kind == "class":
            return node_id
        if kind == "func":
            return self.functions[node_id].return_type
        return ""

    def _root_of_chain(self, expr: ast.expr, types: dict[str, str]) -> str:
        """Caller-side effect root of a name/attribute chain argument."""
        while isinstance(expr, ast.Attribute):
            expr = expr.value
        if isinstance(expr, ast.Name):
            return expr.id
        return ""

    def _callee_of(
        self, module: str, call: ast.Call, types: dict[str, str]
    ) -> tuple[str, str] | None:
        """Resolve a call expression to ``("func", node_id)`` or
        ``("class", class_key)`` (constructor), or ``None``."""
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in types:
                return None  # calling a local instance -- dynamic
            node_id = self.lookup_function(module, name)
            if node_id is not None:
                return ("func", node_id)
            class_key = self.lookup_class(module, name)
            if class_key is not None:
                return ("class", class_key)
            return None
        if not isinstance(func, ast.Attribute):
            return None
        base = func.value
        attr = func.attr
        # self.method() / typed_param.method()
        if isinstance(base, ast.Name) and base.id in types:
            node_id = self._class_attr(types[base.id], attr)
            if node_id is not None:
                return ("func", node_id)
            return None
        # chain through a property: self.network.method()
        base_type = self._chain_type(module, base, types)
        if base_type:
            node_id = self._class_attr(base_type, attr)
            if node_id is not None:
                return ("func", node_id)
        # module attr: budget.checkpoint(), kernels.workspace_for()
        dotted = _dotted(func)
        if dotted:
            owner, _, last = dotted.rpartition(".")
            target_module = self._module_of_chain(module, owner)
            if target_module is not None:
                node_id = self._module_funcs.get(target_module, {}).get(last)
                if node_id is not None:
                    return ("func", node_id)
                class_key = self._module_classes.get(target_module, {}).get(last)
                if class_key is not None:
                    return ("class", class_key)
        return None

    def _chain_type(
        self, module: str, expr: ast.expr, types: dict[str, str]
    ) -> str:
        """Type of a name/attribute chain, following typed attributes."""
        if isinstance(expr, ast.Name):
            return types.get(expr.id, "")
        if isinstance(expr, ast.Attribute):
            base_type = self._chain_type(module, expr.value, types)
            if not base_type:
                return ""
            node_id = self._class_attr(base_type, expr.attr)
            if node_id is not None:
                return self.functions[node_id].return_type
            info = self.classes.get(base_type)
            if info is not None:
                return info.attr_types.get(expr.attr, "")
            return ""
        return ""

    def _module_of_chain(self, module: str, dotted: str) -> str | None:
        """Resolve ``a.b`` to an internal module via import bindings."""
        if not dotted:
            return None
        first, _, rest = dotted.partition(".")
        binding = self.imports.binding_of(module, first)
        if binding is None or binding.kind != "module":
            return None
        current = binding.module
        while rest:
            head, _, rest = rest.partition(".")
            child = f"{current}.{head}" if current else head
            if child in self.imports.modules:
                current = child
            else:
                return None
        return current

    def _resolve_call(
        self, info: FunctionInfo, call: ast.Call, types: dict[str, str]
    ) -> None:
        target = self._callee_of(info.module, call, types)
        if target is None:
            return
        kind, node_id = target
        if kind == "class":
            ctor = self._class_attr(node_id, "__init__")
            if ctor is None:
                return
            callee_id = ctor
        else:
            callee_id = node_id
        binding = self._bind_args(callee_id, call, types)
        if kind == "func" and isinstance(call.func, ast.Attribute):
            base = call.func.value
            root = self._root_of_chain(base, types)
            callee_info = self.functions.get(callee_id)
            if (
                root
                and callee_info is not None
                and callee_info.class_key
                and isinstance(base, ast.Name)
            ):
                binding = (("self", root), *binding)
        elif kind == "class":
            pass  # constructor self is a fresh object, not a caller root
        self.edges.append(
            CallEdge(
                caller=info.node_id,
                callee=callee_id,
                line=call.lineno,
                kind="call",
                binding=binding,
            )
        )
        self._out = None

    def _bind_args(
        self, callee_id: str, call: ast.Call, types: dict[str, str]
    ) -> tuple[tuple[str, str], ...]:
        func = self._defs.get(callee_id)
        if func is None:
            return ()
        params = [a.arg for a in (*func.args.posonlyargs, *func.args.args)]
        callee_info = self.functions.get(callee_id)
        if callee_info is not None and callee_info.class_key and params:
            params = params[1:]  # drop self/cls for method-style binding
        pairs: list[tuple[str, str]] = []
        for param, arg in zip(params, call.args):
            if isinstance(arg, ast.Starred):
                break
            root = self._root_of_chain(arg, types)
            if root:
                pairs.append((param, root))
        kwnames = {a.arg for a in (*func.args.posonlyargs, *func.args.args,
                                   *func.args.kwonlyargs)}
        for keyword in call.keywords:
            if keyword.arg and keyword.arg in kwnames:
                root = self._root_of_chain(keyword.value, types)
                if root:
                    pairs.append((keyword.arg, root))
        return tuple(pairs)

    def _resolve_property_access(
        self, info: FunctionInfo, node: ast.Attribute, types: dict[str, str]
    ) -> None:
        base_type = self._chain_type(info.module, node.value, types)
        if not base_type:
            return
        target = self._class_attr(base_type, node.attr)
        if target is None or not self._is_property_node(target):
            return
        root = self._root_of_chain(node.value, types)
        binding = (("self", root),) if root else ()
        self.edges.append(
            CallEdge(
                caller=info.node_id,
                callee=target,
                line=node.lineno,
                kind="property",
                binding=binding,
            )
        )
        self._out = None

    # ------------------------------------------------------------------
    # Registry edges
    # ------------------------------------------------------------------
    def _add_registry_edges(self, trees: dict[str, ast.Module]) -> None:
        root_tree = trees.get("")
        targets: set[str] = set()
        if root_tree is not None:
            for node in ast.walk(root_tree):
                value: ast.expr | None = None
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id == "SOLVERS"
                ):
                    value = node.value
                elif (
                    isinstance(node, ast.AnnAssign)
                    and isinstance(node.target, ast.Name)
                    and node.target.id == "SOLVERS"
                ):
                    value = node.value
                if not isinstance(value, ast.Dict):
                    continue
                for entry in value.values:
                    dotted = _dotted(entry)
                    if not dotted:
                        continue
                    node_id = self.lookup_function("", dotted.rsplit(".", 1)[-1])
                    if node_id is not None:
                        targets.add(node_id)
        for info in self.functions.values():
            if info.solver_api:
                targets.add(info.node_id)
        for node_id in sorted(targets):
            self.edges.append(
                CallEdge(
                    caller=SOLVERS_NODE,
                    callee=node_id,
                    line=0,
                    kind="registry",
                )
            )
        self._out = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def function_ast(
        self, node_id: str
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """The AST of a function node (for the effect engine)."""
        return self._defs.get(node_id)

    def out_edges(self) -> dict[str, set[str]]:
        """Adjacency ``caller -> {callee}`` (cached)."""
        if self._out is None:
            out: dict[str, set[str]] = {}
            for edge in self.edges:
                out.setdefault(edge.caller, set()).add(edge.callee)
            self._out = out
        return self._out

    def reachable_from(self, roots: Iterable[str]) -> set[str]:
        """Transitive closure of callees from ``roots`` (roots included)."""
        out = self.out_edges()
        seen: set[str] = set()
        stack = [r for r in roots]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(out.get(node, ()))
        return seen

    def checkpoint_reaching(self) -> set[str]:
        """Function nodes from which some call path hits a checkpoint.

        A node qualifies if its own body contains a lexical
        ``*checkpoint*``/``tick`` call or any resolved callee does,
        transitively.
        """
        reaching = {
            node_id
            for node_id, info in self.functions.items()
            if info.direct_checkpoint
        }
        # Reverse propagation to fixpoint.
        incoming: dict[str, set[str]] = {}
        for edge in self.edges:
            incoming.setdefault(edge.callee, set()).add(edge.caller)
        stack = sorted(reaching)
        while stack:
            node = stack.pop()
            for caller in incoming.get(node, ()):
                if caller not in reaching and caller in self.functions:
                    reaching.add(caller)
                    stack.append(caller)
        return reaching

    def calls_within(
        self, node_id: str, first_line: int, last_line: int
    ) -> list[CallEdge]:
        """Resolved edges from ``node_id`` whose site is in a line range."""
        return [
            e
            for e in self.edges
            if e.caller == node_id and first_line <= e.line <= last_line
        ]

    def path_between(self, src: str, dst: str) -> list[str]:
        """One shortest call path from ``src`` to ``dst`` (BFS), or []."""
        if src == dst:
            return [src]
        out = self.out_edges()
        prev: dict[str, str] = {src: ""}
        queue = [src]
        while queue:
            node = queue.pop(0)
            for nxt in sorted(out.get(node, ())):
                if nxt in prev:
                    continue
                prev[nxt] = node
                if nxt == dst:
                    path = [dst]
                    while prev[path[-1]]:
                        path.append(prev[path[-1]])
                    return list(reversed(path))
                queue.append(nxt)
        return []

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, object]:
        """JSON-ready node/edge form of the graph."""
        return {
            "kind": "calls",
            "functions": {
                node_id: {
                    "module": info.module,
                    "qualname": info.qualname,
                    "line": info.line,
                    "class": info.class_key,
                    "property": info.is_property,
                    "checkpoint": info.direct_checkpoint,
                }
                for node_id, info in sorted(self.functions.items())
            },
            "edges": [
                {
                    "caller": e.caller,
                    "callee": e.callee,
                    "line": e.line,
                    "kind": e.kind,
                }
                for e in sorted(
                    self.edges, key=lambda e: (e.caller, e.callee, e.line)
                )
            ],
        }

    def to_dot(self) -> str:
        """GraphViz DOT rendering (property edges dotted, registry bold)."""
        styles = {"call": "solid", "property": "dotted", "registry": "bold"}
        lines = ["digraph calls {", "  rankdir=LR;", "  node [shape=box];"]
        seen: set[tuple[str, str, str]] = set()
        for edge in sorted(self.edges, key=lambda e: (e.caller, e.callee)):
            key = (edge.caller, edge.callee, edge.kind)
            if key in seen:
                continue
            seen.add(key)
            style = styles.get(edge.kind, "solid")
            lines.append(
                f'  "{edge.caller}" -> "{edge.callee}" [style={style}];'
            )
        lines.append("}")
        return "\n".join(lines)


def build_call_graph(
    sources: Sequence[SourceModule], imports: ImportGraph
) -> CallGraph:
    """Build a :class:`CallGraph` over parsed sources."""
    return CallGraph(sources, imports)
