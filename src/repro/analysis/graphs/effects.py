"""Conservative per-function effect inference over the call graph.

For every function in a :class:`~repro.analysis.graphs.callgraph.CallGraph`
this pass computes a set of :class:`Effect` records:

* ``attr-write`` -- ``x.attr = ...`` / ``x.attr += ...`` / ``del x.attr``;
* ``item-write`` -- ``x[i] = ...`` / ``del x[i]``;
* ``mutate-call`` -- ``x.append(...)`` and friends (a fixed vocabulary
  of well-known in-place mutators);
* ``global-write`` -- assignment to a ``global``-declared name;
* ``io`` -- ``open()`` / ``print()`` calls.

Each effect is anchored to a *root*: ``self``, ``param:<name>``,
``global:<name>`` (a module-level binding written through an attribute
or item), or ``local`` for objects created inside the function.  Local
roots are kept at the definition site (REP103 does not care about them,
but tests do) and **dropped during propagation** -- mutating an object
you created is not an effect visible to your caller.

Propagation walks call edges to a fixpoint: a callee's ``self``/param
effects are translated through the call site's argument binding
(:attr:`~repro.analysis.graphs.callgraph.CallEdge.binding`) into the
caller's own roots; unresolved calls contribute nothing (deliberate
under-approximation -- rules that consume the result say so).  The
translation is monotone over a finite lattice (root set x effect kinds
x functions), so the iteration terminates.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.graphs.callgraph import CallEdge, CallGraph, _call_name

#: Method names treated as in-place container/array mutation.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "discard",
        "remove",
        "pop",
        "popitem",
        "popleft",
        "appendleft",
        "clear",
        "update",
        "setdefault",
        "move_to_end",
        "sort",
        "reverse",
        "setflags",
        "fill",
        "resize",
        "put",
    }
)

#: Effect kinds that mutate state (everything but ``io``).
MUTATION_KINDS = frozenset(
    {"attr-write", "item-write", "mutate-call", "global-write"}
)


@dataclass(frozen=True)
class Effect:
    """One side effect of a function, anchored to a root object.

    ``origin`` is the function node id where the effect syntactically
    occurs (stable across propagation, so a rule can report the actual
    mutation site); ``line`` is the source line inside that function.
    """

    kind: str
    root: str
    detail: str
    origin: str
    line: int

    def rebased(self, root: str) -> Effect:
        """The same effect seen from a caller through ``root``."""
        return Effect(self.kind, root, self.detail, self.origin, self.line)


class EffectAnalysis:
    """Direct effect extraction plus interprocedural propagation."""

    def __init__(self, callgraph: CallGraph) -> None:
        self.callgraph = callgraph
        #: function node id -> effects syntactically in its body.
        self.direct: dict[str, frozenset[Effect]] = {}
        #: function node id -> effects including propagated callee effects.
        self.summary: dict[str, frozenset[Effect]] = {}
        self._current = ""
        self._extract_direct()
        self._propagate()

    # ------------------------------------------------------------------
    # Direct extraction
    # ------------------------------------------------------------------
    def _root_of(self, expr: ast.expr, params: set[str],
                 globals_declared: set[str]) -> tuple[str, str]:
        """``(root, detail)`` of the base of a write-target chain."""
        detail_parts: list[str] = []
        node = expr
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            if isinstance(node, ast.Attribute):
                detail_parts.append(node.attr)
            node = node.value
        detail = ".".join(reversed(detail_parts))
        if isinstance(node, ast.Name):
            name = node.id
            if name == "self":
                return "self", detail
            if name in params:
                return f"param:{name}", detail
            if name in globals_declared:
                return f"global:{name}", detail
            module = self.callgraph.functions[self._current].module
            if self.callgraph.imports.defines(module, name) or (
                self.callgraph.imports.binding_of(module, name) is not None
            ):
                return f"global:{name}", detail
            return "local", detail
        return "unknown", detail

    def _extract_direct(self) -> None:
        for node_id, info in self.callgraph.functions.items():
            func = self.callgraph.function_ast(node_id)
            if func is None:
                continue
            self._current = node_id
            params = {
                a.arg
                for a in (
                    *func.args.posonlyargs,
                    *func.args.args,
                    *func.args.kwonlyargs,
                )
            }
            params.discard("self")
            globals_declared: set[str] = set()
            effects: set[Effect] = set()
            for node in self._owned(func):
                if isinstance(node, ast.Global):
                    globals_declared.update(node.names)
            for node in self._owned(func):
                self._effects_of_node(
                    node, params, globals_declared, effects
                )
            self.direct[node_id] = frozenset(effects)

    @staticmethod
    def _owned(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.AST]:
        """Walk ``func`` without descending into nested defs."""
        out: list[ast.AST] = []
        todo: list[ast.AST] = list(ast.iter_child_nodes(func))
        while todo:
            node = todo.pop()
            out.append(node)
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                todo.extend(ast.iter_child_nodes(node))
        return out

    def _effects_of_node(
        self,
        node: ast.AST,
        params: set[str],
        globals_declared: set[str],
        effects: set[Effect],
    ) -> None:
        node_id = self._current
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        elif isinstance(node, ast.For):
            targets = [node.target]
        for target in targets:
            for sub in self._flatten_targets(target):
                if isinstance(sub, ast.Attribute):
                    root, detail = self._root_of(
                        sub.value, params, globals_declared
                    )
                    effects.add(
                        Effect(
                            "attr-write",
                            root,
                            f"{detail + '.' if detail else ''}{sub.attr}",
                            node_id,
                            sub.lineno,
                        )
                    )
                elif isinstance(sub, ast.Subscript):
                    root, detail = self._root_of(
                        sub.value, params, globals_declared
                    )
                    effects.add(
                        Effect("item-write", root, detail, node_id, sub.lineno)
                    )
                elif isinstance(sub, ast.Name) and sub.id in globals_declared:
                    effects.add(
                        Effect(
                            "global-write", "global", sub.id, node_id,
                            sub.lineno,
                        )
                    )
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name in ("open", "print") and isinstance(node.func, ast.Name):
                effects.add(
                    Effect("io", "unknown", name, node_id, node.lineno)
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and name in MUTATOR_METHODS
            ):
                root, detail = self._root_of(
                    node.func.value, params, globals_declared
                )
                effects.add(
                    Effect(
                        "mutate-call",
                        root,
                        f"{detail + '.' if detail else ''}{name}",
                        node_id,
                        node.lineno,
                    )
                )

    @staticmethod
    def _flatten_targets(target: ast.expr) -> list[ast.expr]:
        if isinstance(target, (ast.Tuple, ast.List)):
            out: list[ast.expr] = []
            for elt in target.elts:
                out.extend(EffectAnalysis._flatten_targets(elt))
            return out
        if isinstance(target, ast.Starred):
            return EffectAnalysis._flatten_targets(target.value)
        return [target]

    # ------------------------------------------------------------------
    # Interprocedural propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> None:
        summaries: dict[str, set[Effect]] = {
            node_id: set(effects) for node_id, effects in self.direct.items()
        }
        edges_by_caller: dict[str, list[CallEdge]] = {}
        for edge in self.callgraph.edges:
            if edge.caller in summaries and edge.callee in summaries:
                edges_by_caller.setdefault(edge.caller, []).append(edge)

        changed = True
        while changed:
            changed = False
            for caller, edges in edges_by_caller.items():
                current = summaries[caller]
                for edge in edges:
                    binding = dict(edge.binding)
                    for effect in summaries[edge.callee]:
                        mapped = self._map_effect(
                            effect, binding, caller
                        )
                        if mapped is not None and mapped not in current:
                            current.add(mapped)
                            changed = True
        self.summary = {
            node_id: frozenset(effects)
            for node_id, effects in summaries.items()
        }

    def _map_effect(
        self, effect: Effect, binding: dict[str, str], caller: str
    ) -> Effect | None:
        """Translate a callee effect into the caller's frame, or drop it."""
        root = effect.root
        if root.startswith("global:") or root == "global":
            return effect  # module state is visible from anywhere
        if root == "local":
            return None  # callee-private object
        if root == "unknown":
            return None
        name = root[len("param:"):] if root.startswith("param:") else root
        mapped = binding.get(name if root != "self" else "self")
        if mapped is None:
            return None
        caller_info = self.callgraph.functions[caller]
        func = self.callgraph.function_ast(caller)
        caller_params: set[str] = set()
        if func is not None:
            caller_params = {
                a.arg
                for a in (
                    *func.args.posonlyargs,
                    *func.args.args,
                    *func.args.kwonlyargs,
                )
            }
        if mapped == "self" and caller_info.class_key:
            return effect.rebased("self")
        if mapped in caller_params and mapped != "self":
            return effect.rebased(f"param:{mapped}")
        module = caller_info.module
        if self.callgraph.imports.defines(module, mapped) or (
            self.callgraph.imports.binding_of(module, mapped) is not None
        ):
            return effect.rebased(f"global:{mapped}")
        return None  # caller-local object

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def mutations(
        self, node_id: str, direct_only: bool = False
    ) -> list[Effect]:
        """Mutation effects of one function, sorted by site."""
        table = self.direct if direct_only else self.summary
        return sorted(
            (
                e
                for e in table.get(node_id, frozenset())
                if e.kind in MUTATION_KINDS
            ),
            key=lambda e: (e.origin, e.line, e.kind, e.root, e.detail),
        )

    def rooted_in(
        self, node_id: str, root: str, direct_only: bool = False
    ) -> list[Effect]:
        """Mutation effects of ``node_id`` anchored at ``root``."""
        return [e for e in self.mutations(node_id, direct_only)
                if e.root == root]


def build_effects(callgraph: CallGraph) -> EffectAnalysis:
    """Run effect inference over a call graph."""
    return EffectAnalysis(callgraph)
