"""Per-function control-flow graphs for reprolint's path-sensitive rules.

This is the third analysis tier (after the per-file AST rules and the
whole-program graphs): :func:`build_cfg` turns one function definition
into a :class:`CFG` whose blocks and edges model *paths within the
function* -- branches, loops, ``try``/``except``/``finally``, ``with``,
``return``/``raise``/``break``/``continue``, and exception edges from
every statement that can raise into the enclosing handlers.  The
:mod:`~repro.analysis.graphs.dataflow` solver then runs monotone
may/must analyses over it (REP105-REP108).

Model
-----
* Every executable statement of the function body lands in **exactly
  one** basic block (pinned by the hypothesis soundness suite in
  ``tests/test_cfg.py``) -- simple statements get one block each, and a
  compound statement's node anchors its *header* block (the ``if``/
  ``while``/``for`` test, the ``with`` enter, the ``try`` entry) while
  its nested statements get blocks of their own.  Statements of nested
  ``def``/``class`` bodies belong to *their* CFGs, not the enclosing
  one (the ``def`` statement itself is an executable statement of the
  outer function and does get a block).
* Three virtual blocks carry no statements: ``entry``, ``exit`` (normal
  return) and ``raise_exit`` (an exception leaves the function).  Each
  ``except`` clause also gets an empty *handler-entry* block
  (:attr:`CFG.handler_entry`) so rules can anchor facts at the moment
  an exception is caught.
* Edge kinds: ``"next"`` (fallthrough/jump), ``"true"``/``"false"``
  (branch outcomes; loop headers use ``true`` into the body and
  ``false`` past the loop), and ``"exc"`` (the statement raised).  An
  exception edge is attributed to the *innermost* enclosing ``try``'s
  handlers; because handler matching is not modelled, the edge set
  over-approximates -- every handler of that ``try`` receives an edge,
  and the unmatched-propagation path (through any ``finally`` blocks,
  then outward, ultimately ``raise_exit``) is always present.
* ``finally`` bodies are built **once** (preserving the
  one-block-per-statement invariant) and act as a merge point: every
  abnormal exit that crosses the ``try`` -- a ``break``, ``return``, or
  propagating exception -- is routed *through* the ``finally`` blocks,
  which then fan out to every continuation that was actually requested.
  Distinct exits therefore share path suffixes inside ``finally``; the
  merge over-approximates the feasible paths, which keeps every
  must-analysis built on top conservative (it can only *lose* facts at
  the merge, never invent them).

The builder is purely syntactic and stdlib-only, like everything in
``analysis/``.
"""

from __future__ import annotations

import ast
import json
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

__all__ = [
    "CFG",
    "BasicBlock",
    "CFGEdge",
    "build_cfg",
    "can_raise",
]

FuncDef = ast.FunctionDef | ast.AsyncFunctionDef

#: Edge kinds a :class:`CFGEdge` may carry.
EDGE_KINDS = ("next", "true", "false", "exc")


@dataclass
class BasicBlock:
    """One basic block: an index, a label, and its anchored statements."""

    index: int
    #: ``"entry"``, ``"exit"``, ``"raise"``, ``"except"``, or ``""``.
    label: str = ""
    stmts: list[ast.stmt] = field(default_factory=list)

    @property
    def line(self) -> int:
        """Source line of the first anchored statement (0 for virtual)."""
        return self.stmts[0].lineno if self.stmts else 0


@dataclass(frozen=True)
class CFGEdge:
    """A directed edge between two blocks."""

    src: int
    dst: int
    kind: str = "next"


class CFG:
    """The control-flow graph of one function definition."""

    def __init__(self, func: FuncDef, name: str = "") -> None:
        self.func = func
        self.name = name or func.name
        self.blocks: list[BasicBlock] = []
        self._edges: set[CFGEdge] = set()
        #: ``ast.ExceptHandler`` -> its (virtual) handler-entry block.
        self.handler_entry: dict[ast.excepthandler, int] = {}
        #: ``ast.stmt`` -> index of the block anchoring it.
        self.block_of_stmt: dict[ast.stmt, int] = {}
        self.entry = self._new_block("entry")
        self.exit = self._new_block("exit")
        self.raise_exit = self._new_block("raise")

    # -- construction helpers (used by the builder) --------------------
    def _new_block(self, label: str = "") -> int:
        block = BasicBlock(index=len(self.blocks), label=label)
        self.blocks.append(block)
        return block.index

    def _add_edge(self, src: int, dst: int, kind: str = "next") -> None:
        self._edges.add(CFGEdge(src, dst, kind))

    def _anchor(self, stmt: ast.stmt, block: int) -> None:
        self.blocks[block].stmts.append(stmt)
        self.block_of_stmt[stmt] = block

    # -- queries --------------------------------------------------------
    @property
    def edges(self) -> list[CFGEdge]:
        """All edges, deterministically ordered."""
        return sorted(self._edges, key=lambda e: (e.src, e.dst, e.kind))

    def successors(self, block: int) -> list[CFGEdge]:
        """Out-edges of ``block`` (deterministic order)."""
        return [e for e in self.edges if e.src == block]

    def predecessors(self, block: int) -> list[CFGEdge]:
        """In-edges of ``block`` (deterministic order)."""
        return [e for e in self.edges if e.dst == block]

    def exit_blocks(self) -> tuple[int, int]:
        """The ``(exit, raise_exit)`` virtual block pair."""
        return (self.exit, self.raise_exit)

    def reachable(self) -> set[int]:
        """Blocks reachable from ``entry`` along any edge kind."""
        out: dict[int, list[int]] = {}
        for edge in self._edges:
            out.setdefault(edge.src, []).append(edge.dst)
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            node = stack.pop()
            for nxt in out.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def statements(self) -> Iterator[ast.stmt]:
        """Every statement anchored to some block (document order)."""
        for block in self.blocks:
            yield from block.stmts

    # -- export ---------------------------------------------------------
    def as_dict(self) -> dict[str, object]:
        """JSON-ready node/edge form (schema pinned by tests)."""
        return {
            "name": self.name,
            "entry": self.entry,
            "exit": self.exit,
            "raise_exit": self.raise_exit,
            "blocks": [
                {
                    "index": b.index,
                    "label": b.label,
                    "lines": [s.lineno for s in b.stmts],
                    "stmts": [type(s).__name__ for s in b.stmts],
                }
                for b in self.blocks
            ],
            "edges": [
                {"src": e.src, "dst": e.dst, "kind": e.kind}
                for e in self.edges
            ],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize :meth:`as_dict` to JSON."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def to_dot(self) -> str:
        """GraphViz DOT rendering (exception edges dashed red)."""
        styles = {
            "next": "",
            "true": ' [label="T"]',
            "false": ' [label="F"]',
            "exc": ' [style=dashed, color=red, label="exc"]',
        }
        lines = [f'digraph "{self.name}" {{', "  node [shape=box];"]
        for block in self.blocks:
            if block.label in ("entry", "exit", "raise"):
                text = block.label
                shape = "oval"
            elif block.label == "except":
                text = "except"
                shape = "diamond"
            else:
                text = "\\n".join(
                    f"{s.lineno}: {_stmt_text(s)}" for s in block.stmts
                ) or "(empty)"
                shape = "box"
            lines.append(
                f'  b{block.index} [shape={shape}, label="{text}"];'
            )
        for edge in self.edges:
            lines.append(
                f"  b{edge.src} -> b{edge.dst}{styles.get(edge.kind, '')};"
            )
        lines.append("}")
        return "\n".join(lines)


def _stmt_text(stmt: ast.stmt) -> str:
    """A short, dot-safe one-line rendering of a statement."""
    try:
        text = ast.unparse(stmt).splitlines()[0]
    except Exception:  # pragma: no cover - unparse is total on parse output
        text = type(stmt).__name__
    if len(text) > 48:
        text = text[:45] + "..."
    return text.replace("\\", "\\\\").replace('"', '\\"')


# ----------------------------------------------------------------------
# can-raise classification
# ----------------------------------------------------------------------
_SAFE_STMTS = (
    ast.Pass,
    ast.Break,
    ast.Continue,
    ast.Global,
    ast.Nonlocal,
)

_RAISING_EXPRS = (
    ast.Call,
    ast.Attribute,
    ast.Subscript,
    ast.BinOp,
    ast.UnaryOp,
    ast.Compare,
    ast.BoolOp,
    ast.Await,
    ast.Yield,
    ast.YieldFrom,
    ast.Starred,
    ast.FormattedValue,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
    ast.IfExp,
)


def _expr_raises(node: ast.AST | None) -> bool:
    if node is None:
        return False
    return any(isinstance(n, _RAISING_EXPRS) for n in ast.walk(node))


def can_raise(stmt: ast.stmt) -> bool:
    """Whether *executing this statement's block* can raise (conservative).

    For compound statements only the header counts -- the ``if`` test,
    the ``for`` iterator, the ``with`` enter; their bodies carry their
    own blocks and edges.  ``try:`` headers execute nothing and never
    raise.  ``pass``/``break``/``continue``/``global``/``nonlocal``
    cannot raise; ``raise``/``assert``/``del``/``import`` always can;
    any other simple statement raises iff some contained expression has
    an operation that can fail (a call, attribute/subscript access, an
    arithmetic or comparison operator, an await/yield, ...).  Name
    loads alone are treated as safe -- a ``NameError`` in straight-line
    code is a bug class the rules on top do not chase.
    """
    if isinstance(stmt, _SAFE_STMTS):
        return False
    if isinstance(stmt, ast.Try):
        return False
    if isinstance(
        stmt,
        (ast.Raise, ast.Assert, ast.Delete, ast.Import, ast.ImportFrom,
         ast.With, ast.AsyncWith, ast.For, ast.AsyncFor),
    ):
        return True
    if isinstance(stmt, (ast.If, ast.While)):
        return _expr_raises(stmt.test)
    if isinstance(stmt, ast.Match):
        return _expr_raises(stmt.subject)
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        # Defining a function runs decorators and default expressions,
        # not the body.
        args = stmt.args
        header = [*stmt.decorator_list, *args.defaults,
                  *[d for d in args.kw_defaults if d is not None]]
        return any(_expr_raises(n) for n in header)
    if isinstance(stmt, ast.ClassDef):
        return True  # creating a class executes its body
    return _expr_raises(stmt)


def header_nodes(stmt: ast.stmt) -> Iterator[ast.AST]:
    """AST nodes evaluated by *this statement's own block*.

    A compound statement's block runs only its header -- the ``if``
    test, the ``for`` target/iterator, the ``with`` context
    expressions; its body statements live in their own blocks.  Rules
    matching "does this block do X" must walk these nodes, not
    ``ast.walk(stmt)``, or an ``if`` header would absorb effects that
    only happen on one branch.  Simple statements yield their full
    subtree.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        yield from ast.walk(stmt.test)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield from ast.walk(stmt.target)
        yield from ast.walk(stmt.iter)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield from ast.walk(item.context_expr)
            if item.optional_vars is not None:
                yield from ast.walk(item.optional_vars)
    elif isinstance(stmt, ast.Match):
        yield from ast.walk(stmt.subject)
    elif isinstance(stmt, ast.Try):
        return
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = stmt.args
        for node in (*stmt.decorator_list, *args.defaults,
                     *[d for d in args.kw_defaults if d is not None]):
            yield from ast.walk(node)
    elif isinstance(stmt, ast.ClassDef):
        for node in (*stmt.decorator_list, *stmt.bases,
                     *[k.value for k in stmt.keywords]):
            yield from ast.walk(node)
    else:
        yield from ast.walk(stmt)


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------
@dataclass
class _LoopFrame:
    """An enclosing loop: where ``break``/``continue`` jump."""

    break_target: int
    continue_target: int


@dataclass
class _TryFrame:
    """An enclosing ``try``: handler entries, finally routing state."""

    #: Handler-entry block per ``except`` clause (empty while the
    #: handlers themselves execute -- see ``phase``).
    handler_entries: list[int]
    #: Entry block of the ``finally`` body, or ``None``.
    finally_entry: int | None
    #: Which part of the ``try`` is being built: ``"body"`` (handlers
    #: intercept), ``"handler"``/``"else"`` (they do not), ``"finally"``
    #: (the frame is transparent).
    phase: str = "body"
    #: Continuation blocks the single finally instance must fan out to.
    finally_continuations: set[int] = field(default_factory=set)


class _Builder:
    """Stack-driven statement walker producing a :class:`CFG`."""

    def __init__(self, func: FuncDef, name: str = "") -> None:
        self.cfg = CFG(func, name)
        self.frames: list[_LoopFrame | _TryFrame] = []

    def build(self) -> CFG:
        cfg = self.cfg
        first = cfg._new_block()
        cfg._add_edge(cfg.entry, first)
        last = self._build_body(self.cfg.func.body, first)
        if last is not None:
            cfg._add_edge(last, cfg.exit)  # implicit ``return None``
        return cfg

    # -- frame helpers --------------------------------------------------
    def _route_abnormal(self, target: int, *, stop_at_loop: bool) -> int:
        """First block on the way to ``target``, honouring ``finally``.

        Walks the frame stack inner to outer; the first ``try`` frame
        with a ``finally`` intercepts the jump (registering the onward
        continuation with that frame), and with ``stop_at_loop`` the
        walk ends at the innermost loop (``break``/``continue`` never
        run finallies *outside* their loop).
        """
        intercepting: list[_TryFrame] = []
        for frame in reversed(self.frames):
            if isinstance(frame, _LoopFrame):
                if stop_at_loop:
                    break
                continue
            if frame.phase != "finally" and frame.finally_entry is not None:
                intercepting.append(frame)
        # Chain finallies inner to outer: each one's continuation is the
        # next finally's entry; the last one continues to the target.
        for frame in reversed(intercepting):  # outermost first
            frame.finally_continuations.add(target)
            target = frame.finally_entry  # type: ignore[assignment]
        return target

    def _exception_targets(
        self, outside: _TryFrame | None = None
    ) -> list[int]:
        """Blocks an exception raised *here* may reach (inner to outer).

        Exception matching is not modelled, so the result is an
        over-approximation: every handler entry of each enclosing
        ``try`` (body phase only -- handler and ``else`` bodies are not
        protected by their own ``try``), plus the first intercepting
        ``finally`` if one exists (the unmatched path runs through it,
        and the finally's onward continuations -- computed by recursing
        from *outside* that frame -- are registered with it), plus
        ``raise_exit`` when nothing intercepts.

        ``outside`` restricts the walk to frames enclosing that frame,
        which is how a finally's outward-propagation continuations are
        computed.
        """
        frames = self.frames
        if outside is not None:
            frames = frames[: frames.index(outside)]
        targets: list[int] = []
        for frame in reversed(frames):
            if isinstance(frame, _LoopFrame):
                continue
            if frame.phase == "body" and frame.handler_entries:
                targets.extend(frame.handler_entries)
            if frame.phase != "finally" and frame.finally_entry is not None:
                for onward in self._exception_targets(outside=frame):
                    frame.finally_continuations.add(onward)
                targets.append(frame.finally_entry)
                return targets
        targets.append(self.cfg.raise_exit)
        return targets

    def _add_exception_edges(self, block: int) -> None:
        for target in self._exception_targets():
            self.cfg._add_edge(block, target, "exc")

    # -- statement dispatch ---------------------------------------------
    def _build_body(
        self, stmts: Sequence[ast.stmt], current: int | None
    ) -> int | None:
        """Build blocks for a statement sequence; returns the live tail.

        ``current`` is the block control flows in through (``None``
        after a terminator -- remaining statements still get blocks, so
        dead code keeps the one-block-per-statement invariant, just with
        no incoming edges).
        """
        for stmt in stmts:
            if current is None:
                current = self.cfg._new_block()
            current = self._build_stmt(stmt, current)
        return current

    def _build_stmt(self, stmt: ast.stmt, current: int) -> int | None:
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, current)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._build_loop(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._build_with(stmt, current)
        if isinstance(stmt, ast.Match):
            return self._build_match(stmt, current)
        return self._build_simple(stmt, current)

    def _build_simple(self, stmt: ast.stmt, current: int) -> int | None:
        cfg = self.cfg
        # One simple statement per block: exception edges then carry the
        # state *between* statements, which is what the dataflow rules
        # need (an exception during `x = open(...)` has not acquired).
        if cfg.blocks[current].stmts:
            nxt = cfg._new_block()
            cfg._add_edge(current, nxt)
            current = nxt
        cfg._anchor(stmt, current)
        if can_raise(stmt):
            self._add_exception_edges(current)
        if isinstance(stmt, ast.Return):
            cfg._add_edge(
                current,
                self._route_abnormal(cfg.exit, stop_at_loop=False),
            )
            return None
        if isinstance(stmt, ast.Raise):
            # ``can_raise`` already added the handler/raise-exit edges.
            return None
        if isinstance(stmt, ast.Break):
            target = cfg.exit
            for frame in reversed(self.frames):
                if isinstance(frame, _LoopFrame):
                    target = frame.break_target
                    break
            cfg._add_edge(
                current, self._route_abnormal(target, stop_at_loop=True)
            )
            return None
        if isinstance(stmt, ast.Continue):
            target = cfg.exit
            for frame in reversed(self.frames):
                if isinstance(frame, _LoopFrame):
                    target = frame.continue_target
                    break
            cfg._add_edge(
                current, self._route_abnormal(target, stop_at_loop=True)
            )
            return None
        return current

    def _header(self, stmt: ast.stmt, current: int) -> int:
        """Anchor a compound statement's node as its own header block."""
        cfg = self.cfg
        if cfg.blocks[current].stmts:
            nxt = cfg._new_block()
            cfg._add_edge(current, nxt)
            current = nxt
        cfg._anchor(stmt, current)
        if can_raise(stmt):
            self._add_exception_edges(current)
        return current

    def _build_if(self, stmt: ast.If, current: int) -> int | None:
        cfg = self.cfg
        header = self._header(stmt, current)
        after: int | None = None

        then_entry = cfg._new_block()
        cfg._add_edge(header, then_entry, "true")
        then_tail = self._build_body(stmt.body, then_entry)

        if stmt.orelse:
            else_entry = cfg._new_block()
            cfg._add_edge(header, else_entry, "false")
            else_tail = self._build_body(stmt.orelse, else_entry)
        else:
            else_tail = header  # the false edge goes straight on

        if then_tail is None and else_tail is None:
            return None
        after = cfg._new_block()
        if then_tail is not None:
            cfg._add_edge(then_tail, after)
        if else_tail is not None:
            kind = "false" if else_tail is header else "next"
            cfg._add_edge(else_tail, after, kind)
        return after

    def _build_loop(
        self, stmt: ast.While | ast.For | ast.AsyncFor, current: int
    ) -> int:
        cfg = self.cfg
        header = self._header(stmt, current)
        after = cfg._new_block()

        body_entry = cfg._new_block()
        cfg._add_edge(header, body_entry, "true")
        self.frames.append(_LoopFrame(break_target=after, continue_target=header))
        body_tail = self._build_body(stmt.body, body_entry)
        self.frames.pop()
        if body_tail is not None:
            cfg._add_edge(body_tail, header)  # back edge

        if stmt.orelse:
            else_entry = cfg._new_block()
            cfg._add_edge(header, else_entry, "false")
            else_tail = self._build_body(stmt.orelse, else_entry)
            if else_tail is not None:
                cfg._add_edge(else_tail, after)
        else:
            cfg._add_edge(header, after, "false")
        return after

    def _build_with(
        self, stmt: ast.With | ast.AsyncWith, current: int
    ) -> int | None:
        cfg = self.cfg
        header = self._header(stmt, current)
        body_entry = cfg._new_block()
        cfg._add_edge(header, body_entry)
        # Exceptions in the body propagate normally (suppression by
        # __exit__ is not modelled); the body's own statements add their
        # exception edges as usual.
        body_tail = self._build_body(stmt.body, body_entry)
        if body_tail is None:
            return None
        after = cfg._new_block()
        cfg._add_edge(body_tail, after)
        return after

    def _build_match(self, stmt: ast.Match, current: int) -> int | None:
        cfg = self.cfg
        header = self._header(stmt, current)
        after = cfg._new_block()
        fell_through = False
        for case in stmt.cases:
            case_entry = cfg._new_block()
            cfg._add_edge(header, case_entry, "true")
            tail = self._build_body(case.body, case_entry)
            if tail is not None:
                cfg._add_edge(tail, after)
                fell_through = True
        cfg._add_edge(header, after, "false")  # no case matched
        return after if (fell_through or stmt.cases) else after

    def _build_try(self, stmt: ast.Try, current: int) -> int | None:
        cfg = self.cfg
        header = self._header(stmt, current)

        handler_entries = [
            cfg._new_block("except") for _ in stmt.handlers
        ]
        for handler, block in zip(stmt.handlers, handler_entries):
            cfg.handler_entry[handler] = block
        finally_entry = cfg._new_block() if stmt.finalbody else None
        frame = _TryFrame(
            handler_entries=handler_entries, finally_entry=finally_entry
        )
        self.frames.append(frame)

        # --- try body ---
        body_entry = cfg._new_block()
        cfg._add_edge(header, body_entry)
        body_tail = self._build_body(stmt.body, body_entry)

        # --- else ---
        frame.phase = "else"
        if stmt.orelse:
            if body_tail is not None:
                else_entry = cfg._new_block()
                cfg._add_edge(body_tail, else_entry)
                body_tail = self._build_body(stmt.orelse, else_entry)

        # --- handlers ---
        frame.phase = "handler"
        handler_tails: list[int | None] = []
        for handler, entry in zip(stmt.handlers, handler_entries):
            first = cfg._new_block()
            cfg._add_edge(entry, first)
            handler_tails.append(self._build_body(handler.body, first))

        # --- finally ---
        after: int | None = None
        if finally_entry is not None:
            frame.phase = "finally"
            first = cfg._new_block()
            cfg._add_edge(finally_entry, first)
            finally_tail = self._build_body(stmt.finalbody, first)
            self.frames.pop()
            # Normal completion of body/handlers runs the finally too,
            # continuing to the after-block.
            normal_tails = [
                t for t in [body_tail, *handler_tails] if t is not None
            ]
            for tail in normal_tails:
                cfg._add_edge(tail, finally_entry)
            if finally_tail is not None:
                continuations = set(frame.finally_continuations)
                if normal_tails:
                    after = cfg._new_block()
                    continuations.add(after)
                if not continuations:
                    # Finally reached only by falling in with no
                    # registered abnormal exits: dead try body; keep the
                    # graph connected via the after block.
                    after = cfg._new_block()
                    continuations.add(after)
                for target in sorted(continuations):
                    cfg._add_edge(finally_tail, target)
            return after
        self.frames.pop()
        live_tails = [t for t in [body_tail, *handler_tails] if t is not None]
        if not live_tails:
            return None
        after = cfg._new_block()
        for tail in live_tails:
            cfg._add_edge(tail, after)
        return after


def build_cfg(func: FuncDef, name: str = "") -> CFG:
    """Build the :class:`CFG` of one function definition."""
    return _Builder(func, name).build()
