"""Report rendering for the whole-program graphs (``repro lint --graph``).

This module turns an :class:`~repro.analysis.graphs.AnalysisProject`
into machine-readable (JSON) or GraphViz (DOT) exports of the import
graph and the call graph, plus the layering table the docs render.

Historical note: the *solution* statistics and robustness reports that
used to live here moved to :mod:`repro.bench.solution_stats` and
:mod:`repro.bench.robustness` when ``analysis/`` adopted its
stdlib-only layering contract (REP102); the lazy forwards that kept the
old names importable were removed after two release cycles.
"""

from __future__ import annotations

import json

from repro.analysis.graphs import AnalysisProject, layer_table, rank_of

#: Graph selectors accepted by ``repro lint --graph``.
GRAPH_KINDS = ("imports", "calls", "cfg")

#: Formats accepted by ``repro lint --graph-format``.
GRAPH_FORMATS = ("json", "dot")


def render_cfgs(
    project: AnalysisProject, fmt: str = "json", function: str = ""
) -> str:
    """Render per-function control-flow graphs.

    ``function`` filters by substring match on the call-graph node id
    (``module.Qual.name``); empty renders every function.  JSON emits a
    ``{"functions": [cfg-dict, ...]}`` envelope; DOT concatenates one
    digraph per function (GraphViz accepts multiple graphs per file).
    """
    index = project.cfgs
    node_ids = [
        node_id
        for node_id in index.node_ids()
        if not function or function in node_id
    ]
    if fmt == "dot":
        parts = []
        for node_id in node_ids:
            cfg = index.get(node_id)
            if cfg is not None:
                parts.append(cfg.to_dot())
        return "\n\n".join(parts)
    payload = {
        "functions": [
            cfg.as_dict()
            for node_id in node_ids
            if (cfg := index.get(node_id)) is not None
        ]
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_graph(
    project: AnalysisProject,
    which: str,
    fmt: str = "json",
    function: str = "",
) -> str:
    """Render one program graph as a string.

    ``which`` selects ``"imports"``, ``"calls"``, or ``"cfg"``; ``fmt``
    selects ``"json"`` (node/edge dict, schema-stable) or ``"dot"``
    (GraphViz).  ``function`` applies only to ``"cfg"`` and filters the
    rendered functions by node-id substring.
    """
    if which not in GRAPH_KINDS:
        raise ValueError(
            f"unknown graph {which!r}; choose from {GRAPH_KINDS}"
        )
    if fmt not in GRAPH_FORMATS:
        raise ValueError(
            f"unknown graph format {fmt!r}; choose from {GRAPH_FORMATS}"
        )
    if which == "cfg":
        return render_cfgs(project, fmt, function)
    if which == "imports":
        graph = project.imports
        if fmt == "dot":
            return graph.to_dot()
        payload = graph.as_dict()
        payload["layers"] = {
            module: rank_of(module) for module in sorted(graph.modules)
        }
        return json.dumps(payload, indent=2, sort_keys=True)
    calls = project.calls
    if fmt == "dot":
        return calls.to_dot()
    return json.dumps(calls.as_dict(), indent=2, sort_keys=True)


def render_layer_table() -> str:
    """The declared layering as an aligned text table (docs helper)."""
    rows = [("rank", "module prefix")] + [
        (str(rank), prefix or "<root __init__>")
        for prefix, rank in layer_table()
    ]
    width = max(len(r[0]) for r in rows)
    return "\n".join(f"{r[0]:>{width}}  {r[1]}" for r in rows)
