"""Performance (cost-model) reprolint rules (REP109..REP112).

The fourth analysis tier: :mod:`repro.analysis.costmodel` classifies
every loop against a two-valued size lattice (bounded < instance) and
propagates per-function nesting-depth summaries through the call graph;
these rules turn the summaries into findings.

All four are **error** severity and justification-only
(:data:`repro.analysis.engine.JUSTIFIED_RULES`): an accidentally
quadratic loop on a hot path is a silent regression the test suite will
not catch at test-sized instances, so opting out must leave a reviewed
reason behind.

- **REP109** -- hot-path complexity budget: functions reachable from the
  solver registry / ``ServeEngine.apply`` / oracle query entry points
  must not exceed their module's declared cost ceiling
  (``cost-budgets.toml``; default depth 2).
- **REP110** -- loop-invariant allocation: container construction,
  comprehension, or str-concat inside an instance-sized loop whose
  operands never change across iterations must be hoisted.
- **REP111** -- repeated linear membership: ``x in <list/tuple>`` inside
  an instance-sized loop demands a set/dict.
- **REP112** -- hidden-rescan calls: calling a function whose own
  summary is instance-sized from inside an instance-sized loop is how
  quadratic blowups actually ship; each such hot-path site needs an
  explicit justification.

REP110/REP111 are *local* (pure per-file) and therefore cacheable by the
incremental engine; REP109/REP112 are whole-program and re-run on every
lint.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import Path

from repro.analysis.costmodel import (
    DEFAULT_CEILING,
    CostModel,
    FunctionLoops,
    analyze_function,
    find_budgets_file,
    load_budgets,
)
from repro.analysis.engine import FileContext
from repro.analysis.findings import Finding
from repro.analysis.graphs import AnalysisProject, module_name
from repro.analysis.rules import (
    BudgetReachabilityRule,
    Rule,
    _call_name,
    _iter_functions,
)

__all__ = [
    "PERF_RULES",
    "HiddenRescanRule",
    "HotPathBudgetRule",
    "LinearMembershipRule",
    "LoopInvariantAllocRule",
    "cost_model_for",
]

_FuncDef = ast.FunctionDef | ast.AsyncFunctionDef


def cost_model_for(project: AnalysisProject) -> CostModel:
    """The (memoised) cost model of one analysis project.

    Several rules consult the same summaries; the model is built once
    per project and stashed on it, mirroring how CFGs are shared through
    ``project.cfgs``.
    """
    model = getattr(project, "_cost_model", None)
    if not isinstance(model, CostModel) or model.project is not project:
        model = CostModel(project)
        project._cost_model = model  # type: ignore[attr-defined]
    return model


def _assigned_names(loop: ast.For | ast.While) -> set[str]:
    """Names (re)bound anywhere inside ``loop`` -- the LICM kill set.

    This is the binding criterion of the reaching-definitions solver
    specialised to a natural loop: an operand is loop-invariant iff no
    definition of it lies on the back edge, i.e. no statement in the
    loop body assigns it.
    """
    assigned: set[str] = set()

    def bind(target: ast.expr) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                assigned.add(node.id)

    for node in ast.walk(loop):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                bind(target)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            bind(node.target)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    bind(item.optional_vars)
        elif isinstance(node, ast.NamedExpr):
            bind(node.target)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            assigned.add(node.name)
    return assigned


def _mutated_names(node: ast.AST) -> set[str]:
    """Names possibly mutated *in place* inside ``node``.

    Any method call on a name (``acc.append(...)``), subscript or
    attribute store/delete through it (``caps[pos] += d``,
    ``obj.field = v``), counts: after such an operation the name's value
    may differ even though the binding never changed.
    """
    mutated: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            base = sub.func.value
            if isinstance(base, ast.Name):
                mutated.add(base.id)
        elif isinstance(sub, (ast.Subscript, ast.Attribute)) and isinstance(
            sub.ctx, (ast.Store, ast.Del)
        ):
            base = sub.value
            if isinstance(base, ast.Name):
                mutated.add(base.id)
    return mutated


def _closure_effects(func: _FuncDef) -> dict[str, set[str]]:
    """Per nested function: names it rebinds or mutates when called.

    A loop that calls a locally-defined helper inherits that helper's
    effects -- ``_grow()`` bumping ``comp_caps`` makes any expression
    over ``comp_caps`` loop-variant even though the loop body never
    touches it directly.
    """
    effects: dict[str, set[str]] = {}
    for child in ast.walk(func):
        if (
            isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            and child is not func
        ):
            names = _mutated_names(child)
            for sub in ast.walk(child):
                if isinstance(sub, ast.Name) and isinstance(
                    sub.ctx, (ast.Store, ast.Del)
                ):
                    names.add(sub.id)
            effects[child.name] = names
    return effects


def _loop_variant_names(
    loop: ast.For | ast.While, closure_effects: dict[str, set[str]]
) -> set[str]:
    """Every name whose value may change across iterations of ``loop``."""
    variant = _assigned_names(loop) | _mutated_names(loop)
    for node in ast.walk(loop):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            variant |= closure_effects.get(node.func.id, set())
    return variant


def _comp_targets(expr: ast.expr) -> set[str]:
    """Comprehension-scoped target names inside ``expr`` (not free)."""
    scoped: set[str] = set()
    for node in ast.walk(expr):
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for gen in node.generators:
                for name in ast.walk(gen.target):
                    if isinstance(name, ast.Name):
                        scoped.add(name.id)
    return scoped


def _free_names(expr: ast.expr) -> set[str]:
    """Name loads ``expr`` depends on (comprehension targets excluded)."""
    scoped = _comp_targets(expr)
    return {
        node.id
        for node in ast.walk(expr)
        if isinstance(node, ast.Name)
        and isinstance(node.ctx, ast.Load)
        and node.id not in scoped
    }


def _has_call(expr: ast.expr) -> bool:
    return any(
        isinstance(node, (ast.Call, ast.Await, ast.Yield, ast.YieldFrom))
        for node in ast.walk(expr)
    )


def _is_invariant(
    expr: ast.expr, assigned: set[str], *, allow_calls: bool = False
) -> bool:
    """Whether ``expr`` provably computes the same value every iteration.

    Requires every free name to be un-rebound in the loop and (unless
    ``allow_calls``) the expression to be call-free -- a call may read
    mutable state the loop changes.
    """
    if not allow_calls and _has_call(expr):
        return False
    return not (_free_names(expr) & assigned)


def _mutated_in(loop: ast.For | ast.While, name: str) -> bool:
    """Whether ``name`` is mutated in place inside ``loop``.

    Catches the fresh-container idiom: ``acc = dict(seed)`` followed by
    ``acc[k] = v`` or ``acc.update(...)`` per iteration is a deliberate
    per-iteration copy, not a hoistable invariant.
    """
    for node in ast.walk(loop):
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            base = node.func.value
            if isinstance(base, ast.Name) and base.id == name:
                return True
        elif isinstance(node, (ast.Subscript, ast.Attribute)) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            base = node.value
            if isinstance(base, ast.Name) and base.id == name:
                return True
    return False


#: Constructor names whose call allocates a fresh container (REP110).
_ALLOC_CALLS = frozenset(
    {
        "list",
        "dict",
        "set",
        "frozenset",
        "tuple",
        "sorted",
        "zeros",
        "ones",
        "empty",
        "full",
        "arange",
        "array",
        "deque",
        "Counter",
        "defaultdict",
        "OrderedDict",
    }
)


# ----------------------------------------------------------------------
# REP109 -- hot-path complexity budget
# ----------------------------------------------------------------------
class HotPathBudgetRule(Rule):
    """Hot-path functions must respect their module's cost ceiling.

    Every function reachable from the solver registry,
    ``ServeEngine.apply``, or an oracle query entry point gets an
    interprocedural cost summary; a summary deeper than the module's
    ceiling in ``cost-budgets.toml`` (default depth 2 -- e.g. ``n*m``)
    is an error.  Raising a ceiling requires editing the committed
    budget file, which the CI ratchet watches: budgets may only grow in
    a PR that visibly changes the file.
    """

    id = "REP109"
    severity = "error"
    title = "hot-path cost over module budget"
    hint = (
        "restructure the loop nest, or raise the module ceiling in "
        "cost-budgets.toml with a reviewed justification"
    )

    #: Test override: explicit budgets path (else found near the root).
    budgets_path: str | Path | None = None

    def start(self) -> None:
        self._root: Path | None = None

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        if self._root is None:
            path = str(ctx.path).replace("\\", "/")
            if path.endswith(ctx.rel):
                self._root = Path(path[: -len(ctx.rel)].rstrip("/") or "/")
        return iter(())

    def _budgets(self) -> dict[str, int]:
        path = self.budgets_path
        if path is None and self._root is not None:
            path = find_budgets_file(self._root)
        return load_budgets(path) if path is not None else {}

    def finalize(self) -> Iterator[Finding]:
        model = cost_model_for(self.project)
        budgets = self._budgets()
        calls = self.project.calls
        for node_id in sorted(model.hot_nodes()):
            summary = model.summaries[node_id]
            info = calls.functions[node_id]
            ceiling = budgets.get(info.module, DEFAULT_CEILING)
            if summary.total_depth <= ceiling:
                continue
            rel = self.project.rel_of_module(info.module) or ""
            via = (
                f" (via {summary.via} at line {summary.via_line})"
                if summary.via
                else ""
            )
            yield self.finding(
                rel,
                info.line,
                0,
                info.qualname,
                f"hot-path function costs {summary.cost_label}{via}, over "
                f"the '{info.module}' ceiling of depth {ceiling}",
            )


# ----------------------------------------------------------------------
# REP110 -- loop-invariant allocation in instance-sized loops
# ----------------------------------------------------------------------
class LoopInvariantAllocRule(Rule):
    """Hoist allocations that cannot change across loop iterations.

    Inside an instance-sized loop, building a non-empty container
    (literal, constructor call, comprehension) or concatenating strings
    into a local whose operands are all loop-invariant does O(size)
    allocation work per iteration for a value that could be computed
    once before the loop.  Empty-container seeds (``acc = []``) and
    containers mutated in the loop (the fresh-copy idiom) are exempt.
    """

    id = "REP110"
    severity = "error"
    title = "loop-invariant allocation in instance-sized loop"
    hint = "hoist the allocation above the loop (it never changes)"
    local = True

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        for func, qual, _chain in _iter_functions(ctx.tree):
            info = analyze_function(func)
            if not info.instance_loops():
                continue
            effects = _closure_effects(func)
            seen: set[tuple[int, int]] = set()
            for loop_info in info.instance_loops():
                loop = loop_info.node
                assigned = _loop_variant_names(loop, effects)
                for stmt in ast.walk(loop):
                    if not isinstance(stmt, ast.Assign):
                        continue
                    if len(stmt.targets) != 1 or not isinstance(
                        stmt.targets[0], ast.Name
                    ):
                        continue
                    target = stmt.targets[0].id
                    verdict = self._invariant_alloc(
                        stmt.value, assigned
                    )
                    if verdict is None:
                        continue
                    if _mutated_in(loop, target):
                        continue
                    key = (stmt.lineno, stmt.col_offset)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield self.finding(
                        ctx,
                        stmt.lineno,
                        stmt.col_offset,
                        f"{qual}.{target}",
                        f"{verdict} assigned to '{target}' inside an "
                        "instance-sized loop is loop-invariant",
                    )

    def _invariant_alloc(
        self, value: ast.expr, assigned: set[str]
    ) -> str | None:
        """Classify ``value``; a description when it is an invariant
        allocation, else ``None``."""
        if isinstance(value, (ast.List, ast.Set, ast.Tuple)):
            if not value.elts:
                return None  # empty seed: the fresh-container idiom
            if all(_is_invariant(e, assigned) for e in value.elts):
                return "container literal"
            return None
        if isinstance(value, ast.Dict):
            if not value.keys:
                return None
            parts = [k for k in value.keys if k is not None] + list(
                value.values
            )
            if all(_is_invariant(p, assigned) for p in parts):
                return "dict literal"
            return None
        if isinstance(
            value, (ast.ListComp, ast.SetComp, ast.DictComp)
        ):
            if _is_invariant(value, assigned):
                return "comprehension"
            return None
        if isinstance(value, ast.Call):
            name = _call_name(value)
            if name not in _ALLOC_CALLS or not (
                value.args or value.keywords
            ):
                return None
            operands = list(value.args) + [kw.value for kw in value.keywords]
            if all(_is_invariant(arg, assigned) for arg in operands):
                return f"'{name}(...)' construction"
            return None
        if isinstance(value, ast.BinOp) and isinstance(value.op, ast.Add):
            has_str = any(
                isinstance(side, ast.Constant) and isinstance(side.value, str)
                for side in (value.left, value.right)
            )
            if has_str and _is_invariant(value, assigned):
                return "string concatenation"
            return None
        return None


# ----------------------------------------------------------------------
# REP111 -- repeated linear membership in instance-sized loops
# ----------------------------------------------------------------------
class LinearMembershipRule(Rule):
    """``x in <list/tuple>`` inside an instance-sized loop is O(n*k).

    A membership probe against a list or tuple scans linearly on every
    iteration; over an instance-sized loop that multiplies into the
    very quadratic the cost tier exists to stop.  The probe target must
    become a ``set``/``dict`` (built once, O(1) lookups).  Constant
    tuple literals (``kind in ("a", "b")``) are idiomatic enum checks
    and exempt.
    """

    id = "REP111"
    severity = "error"
    title = "linear membership test in instance-sized loop"
    hint = "convert the probed list/tuple to a set/dict before the loop"
    local = True

    _LINEAR_ANNOTATIONS = frozenset(
        {"list", "List", "tuple", "Tuple", "Sequence", "MutableSequence"}
    )
    _LINEAR_CALLS = frozenset({"list", "tuple", "sorted"})

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        for func, qual, _chain in _iter_functions(ctx.tree):
            info = analyze_function(func)
            if not any(
                li.kind == "instance" for li in info.loops
            ):
                continue
            linear = self._linear_names(func)
            seen: set[tuple[int, int]] = set()
            for loop_info in info.instance_loops():
                loop = loop_info.node
                assigned = _assigned_names(loop)
                for node in ast.walk(loop):
                    if not isinstance(node, ast.Compare):
                        continue
                    for op, comparator in zip(
                        node.ops, node.comparators
                    ):
                        if not isinstance(op, (ast.In, ast.NotIn)):
                            continue
                        name = self._linear_comparator(
                            comparator, linear, assigned
                        )
                        if name is None:
                            continue
                        key = (node.lineno, node.col_offset)
                        if key in seen:
                            continue
                        seen.add(key)
                        yield self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            f"{qual}.{name}",
                            f"membership test against list/tuple '{name}' "
                            "inside an instance-sized loop scans linearly "
                            "every iteration",
                        )

    def _linear_names(self, func: _FuncDef) -> set[str]:
        """Local names provably bound to a list/tuple in ``func``."""
        linear: set[str] = set()
        nonlinear: set[str] = set()
        args = func.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            ann = arg.annotation
            base = ""
            if isinstance(ann, ast.Subscript):
                ann = ann.value
            if isinstance(ann, (ast.Name, ast.Attribute)):
                base = ann.id if isinstance(ann, ast.Name) else ann.attr
            if base in self._LINEAR_ANNOTATIONS:
                linear.add(arg.arg)
        for node in ast.walk(func):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
            if not isinstance(target, ast.Name) or value is None:
                continue
            if isinstance(value, (ast.List, ast.Tuple, ast.ListComp)) or (
                isinstance(value, ast.Call)
                and _call_name(value) in self._LINEAR_CALLS
            ):
                linear.add(target.id)
            else:
                nonlinear.add(target.id)  # re-bound to something else
        return linear - nonlinear

    def _linear_comparator(
        self,
        comparator: ast.expr,
        linear: set[str],
        assigned: set[str],
    ) -> str | None:
        """Name/description when the comparator scans linearly."""
        if isinstance(comparator, ast.List):
            return "[...]" if comparator.elts else None
        if isinstance(comparator, ast.Name):
            if comparator.id in linear and comparator.id not in assigned:
                return comparator.id
        return None


# ----------------------------------------------------------------------
# REP112 -- hidden-rescan calls on hot paths
# ----------------------------------------------------------------------
class HiddenRescanRule(Rule):
    """Instance-sized calls inside instance-sized hot loops multiply.

    A call site sitting inside an instance-sized loop of a hot-path
    function, whose callee's own summary is instance-sized, composes
    to at least quadratic work -- invisible to any per-function reading
    of the code.  Some such sites are the algorithm (SSPA re-runs
    Dijkstra per augmentation); each one must carry a justification
    naming why the composition is intended.

    Scoped to the hot-path modules REP101 already polices
    (``network/``/``flow/``/``serve/`` + ``core/wma.py``): that is
    where a hidden rescan costs real serving latency.
    """

    id = "REP112"
    severity = "error"
    title = "instance-sized call inside instance-sized loop"
    hint = (
        "restructure (batch/precompute), or justify the composition: "
        "# reprolint: disable=REP112 -- <why this multiplies by design>"
    )

    HOT_PREFIXES = BudgetReachabilityRule.HOT_PREFIXES
    HOT_FILES = BudgetReachabilityRule.HOT_FILES

    def finalize(self) -> Iterator[Finding]:
        model = cost_model_for(self.project)
        calls = self.project.calls
        seen: set[tuple[str, int, str]] = set()
        for edge in calls.edges:
            if edge.kind not in ("call", "property"):
                continue
            caller = calls.functions.get(edge.caller)
            if caller is None:
                continue
            rel = self.project.rel_of_module(caller.module) or ""
            if not (
                rel.startswith(self.HOT_PREFIXES) or rel in self.HOT_FILES
            ):
                continue
            depth_here = model.depth_at(edge.caller, edge.line)
            if depth_here < 1:
                continue
            callee_summary = model.summary(edge.callee)
            if callee_summary is None or callee_summary.total_depth < 1:
                continue
            key = (edge.caller, edge.line, edge.callee)
            if key in seen:
                continue
            seen.add(key)
            callee_name = edge.callee.rsplit(".", 1)[-1]
            yield self.finding(
                rel,
                edge.line,
                0,
                f"{caller.qualname}:{edge.callee}",
                f"call to '{callee_name}' ({callee_summary.cost_label}) "
                f"inside an instance-sized loop of '{caller.qualname}' "
                "composes to hidden super-linear work",
            )


PERF_RULES: tuple[type[Rule], ...] = (
    HotPathBudgetRule,
    LoopInvariantAllocRule,
    LinearMembershipRule,
    HiddenRescanRule,
)
