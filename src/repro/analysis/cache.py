"""Fingerprint-keyed incremental result cache for the lint engine.

A warm ``repro lint`` should pay only for what changed.  The cache
stores, per linted root:

* a **run signature** -- hash over the rule-id set, the rule-logic
  version (:data:`RULESET_VERSION`), and the baseline contents -- so any
  change to what "linting" means invalidates everything;
* per-file content digests plus the findings of the *local* rules
  (``Rule.local = True``: pure per-file, no cross-file state), which can
  be replayed verbatim for unchanged files;
* the full result of the last run, replayed wholesale when *nothing*
  changed (the zero-relint fast path skips parsing entirely);
* the internal import edges, so callers can expand a changed-file set to
  its transitive dependents (cross-file rules see the whole tree, so a
  change in ``flow/sspa.py`` may move findings in files that import it).

Cached local findings are stored pre-baseline and re-enter the normal
suppression/baseline pipeline, so a warm run's findings are byte-for-
byte identical to a cold run's.  Global rules (call-graph, layering,
cost model) are never cached per-file -- they re-run against the full
tree on every non-identical run; the cache only spares the per-file
work and, on the full-hit path, the parse.

Stdlib-only, like everything under ``analysis/`` (REP102).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

from repro.analysis.findings import Finding

__all__ = [
    "CACHE_VERSION",
    "RULESET_VERSION",
    "LintCache",
    "default_cache_path",
    "dependents_closure",
    "digest_source",
    "run_signature",
]

#: On-disk cache schema version.
CACHE_VERSION = 1

#: Version of the rule *logic*.  Bump whenever any rule's behaviour
#: changes (new rule, fixed heuristic, reworded message), so stale
#: per-file results cannot be replayed against new expectations.
RULESET_VERSION = 1


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def digest_source(source: str) -> str:
    """Content fingerprint of one source file."""
    return _sha256(source.encode("utf-8"))


def run_signature(
    rule_ids: list[str], baseline: dict[str, int]
) -> str:
    """Hash identifying *what* a run computes (rules + baseline)."""
    payload = {
        "cache_version": CACHE_VERSION,
        "ruleset_version": RULESET_VERSION,
        "rules": sorted(rule_ids),
        "baseline": dict(sorted(baseline.items())),
    }
    return _sha256(json.dumps(payload, sort_keys=True).encode("utf-8"))


def default_cache_path(root: str | Path) -> Path:
    """Where the cache for ``root`` lives: ``<repo>/.lint-cache/cache.json``.

    The repo directory is found by walking up from the linted root
    looking for ``pyproject.toml`` (the linted root is usually
    ``src/repro``); without one the cache nests under the root itself.
    """
    root = Path(root)
    for candidate in (root, *root.parents[:3]):
        if (candidate / "pyproject.toml").is_file():
            return candidate / ".lint-cache" / "cache.json"
    return root / ".lint-cache" / "cache.json"


def dependents_closure(
    changed: set[str], edges: dict[str, list[str]]
) -> set[str]:
    """Transitive *reverse*-import closure of ``changed``.

    ``edges`` maps importer path -> imported paths; the result is every
    file whose cross-file lint results may depend on a changed file
    (importers of importers included), excluding the seeds themselves.
    """
    reverse: dict[str, set[str]] = {}
    for src, dsts in edges.items():
        for dst in dsts:
            reverse.setdefault(dst, set()).add(src)
    seen: set[str] = set(changed)
    frontier = sorted(changed)
    while frontier:
        rel = frontier.pop()
        for importer in reverse.get(rel, ()):
            if importer not in seen:
                seen.add(importer)
                frontier.append(importer)
    return seen - set(changed)


class LintCache:
    """One on-disk cache file (load on construction, explicit save)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._data: dict[str, Any] | None = self._load()

    def _load(self) -> dict[str, Any] | None:
        try:
            doc = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if (
            not isinstance(doc, dict)
            or doc.get("cache_version") != CACHE_VERSION
        ):
            return None
        return doc

    # -- queries -------------------------------------------------------
    def usable_for(self, signature: str, root: str) -> bool:
        """Whether cached entries may be replayed for this run."""
        return (
            self._data is not None
            and self._data.get("signature") == signature
            and self._data.get("root") == root
        )

    def file_digests(self) -> dict[str, str]:
        if self._data is None:
            return {}
        digests = self._data.get("digests", {})
        return dict(digests) if isinstance(digests, dict) else {}

    def local_findings(self, rel: str) -> list[Finding] | None:
        """Replay the cached local-rule findings of one unchanged file."""
        if self._data is None:
            return None
        entry = self._data.get("files", {}).get(rel)
        if not isinstance(entry, dict):
            return None
        findings = []
        for row in entry.get("findings", ()):
            fields = {k: v for k, v in row.items() if k != "key"}
            fields["baselined"] = False  # re-applied by the engine
            try:
                findings.append(Finding(**fields))
            except TypeError:
                return None
        return findings

    def local_suppressed(self, rel: str) -> int:
        if self._data is None:
            return 0
        entry = self._data.get("files", {}).get(rel)
        if not isinstance(entry, dict):
            return 0
        return int(entry.get("suppressed", 0))

    def has_entry(self, rel: str) -> bool:
        return (
            self._data is not None
            and isinstance(self._data.get("files", {}).get(rel), dict)
        )

    def full_result(self) -> dict[str, Any] | None:
        """The stored whole-run result (for the nothing-changed path)."""
        if self._data is None:
            return None
        dump = self._data.get("result")
        return dump if isinstance(dump, dict) else None

    def import_edges(self) -> dict[str, list[str]]:
        """Importer path -> imported paths, as of the cached run."""
        if self._data is None:
            return {}
        edges = self._data.get("imports", {})
        if not isinstance(edges, dict):
            return {}
        return {
            str(src): [str(d) for d in dsts]
            for src, dsts in edges.items()
            if isinstance(dsts, list)
        }

    # -- store ---------------------------------------------------------
    def store(
        self,
        *,
        signature: str,
        root: str,
        digests: dict[str, str],
        files: dict[str, dict[str, Any]],
        result: dict[str, Any],
        imports: dict[str, list[str]],
    ) -> None:
        """Atomically persist a completed run."""
        doc = {
            "cache_version": CACHE_VERSION,
            "signature": signature,
            "root": root,
            "digests": digests,
            "files": files,
            "result": result,
            "imports": {k: sorted(v) for k, v in sorted(imports.items())},
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(doc, sort_keys=True, separators=(",", ":")),
            encoding="utf-8",
        )
        os.replace(tmp, self.path)
        self._data = doc
