"""Back-compat shim: the robustness study moved to ``repro.bench``.

``analysis/`` adopted a stdlib-only layering contract (REP102) so the
linter can run on a tree that does not even import; the demand-drift
robustness helpers (which need numpy, the solvers, and the flow layer)
now live in :mod:`repro.bench.robustness`.  This module lazily forwards
the old names so existing imports keep working without making
``analysis`` depend on the rest of the package at import time.
"""

from __future__ import annotations

import warnings

#: Names forwarded to :mod:`repro.bench.robustness` (PEP 562).
_ROBUSTNESS_EXPORTS = (
    "DriftPoint",
    "drift_study",
    "reassignment_cost",
    "selection_regret",
)

__all__ = list(_ROBUSTNESS_EXPORTS)


def __getattr__(name: str) -> object:
    if name in _ROBUSTNESS_EXPORTS:
        warnings.warn(
            f"repro.analysis.robustness.{name} moved to "
            f"repro.bench.robustness; this shim will be removed in a "
            f"future release",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.bench import robustness

        return getattr(robustness, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
