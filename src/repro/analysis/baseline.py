"""Ratchet-only baseline for grandfathered reprolint findings.

The committed baseline (``reprolint-baseline.json`` at the repo root)
maps a line-independent finding key -- ``rule:path:symbol`` -- to the
number of occurrences that existed when the gate was introduced.  The
engine marks up to that many matching findings as ``baselined`` (they
are reported but do not fail the run); every occurrence beyond the
grandfathered count is *new* and fails.  Entries whose findings have
been fixed show up as *stale* so the debt visibly shrinks; running
``repro lint --update-baseline`` rewrites the file to exactly the
current findings, which is the only way the baseline ever changes.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.findings import Finding

#: Format version of the baseline file.
BASELINE_VERSION = 1


def load_baseline(path: str | Path) -> dict[str, int]:
    """Read a baseline file into ``{finding_key: grandfathered_count}``.

    A missing file is an empty baseline (nothing grandfathered), so a
    fresh checkout without the file simply gates at zero.
    """
    p = Path(path)
    if not p.exists():
        return {}
    with open(p, encoding="utf-8") as fh:
        doc = json.load(fh)
    entries = doc.get("findings", doc) if isinstance(doc, dict) else {}
    return {str(k): int(v) for k, v in entries.items()}


def save_baseline(path: str | Path, findings: list[Finding]) -> dict[str, int]:
    """Write the baseline matching exactly the given findings.

    Returns the entry mapping that was written.
    """
    entries: dict[str, int] = {}
    for finding in findings:
        entries[finding.key] = entries.get(finding.key, 0) + 1
    doc = {
        "_comment": (
            "reprolint ratchet baseline: grandfathered findings as "
            "rule:path:symbol -> count. Never edit by hand; shrink it by "
            "fixing findings and running `repro lint --update-baseline`."
        ),
        "version": BASELINE_VERSION,
        "findings": dict(sorted(entries.items())),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return entries


def apply_baseline(
    findings: list[Finding], baseline: dict[str, int]
) -> list[str]:
    """Mark grandfathered findings in place; return stale baseline keys.

    For each baseline key, up to ``count`` matching findings (in report
    order) get ``baselined=True``.  Keys with *fewer* current findings
    than their grandfathered count are stale -- the debt they recorded
    has (partly) been paid -- and are returned so the caller can surface
    them.
    """
    remaining = dict(baseline)
    for finding in findings:
        allowance = remaining.get(finding.key, 0)
        if allowance > 0:
            remaining[finding.key] = allowance - 1
            finding.baselined = True
    return [key for key, count in remaining.items() if count > 0]
