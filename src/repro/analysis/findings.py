"""Finding model and output formatting for reprolint.

A :class:`Finding` is one rule violation at one source location.  Its
:attr:`Finding.key` deliberately excludes the line number -- baselines
key on ``rule:path:symbol`` so grandfathered findings survive unrelated
edits that shift lines (see :mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any

#: Schema version stamped into JSON reports; bump on breaking changes.
REPORT_VERSION = 1

SEVERITIES = ("error", "warning")


@dataclass
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    rule:
        Rule id (``"REP001"``..).
    severity:
        ``"error"`` or ``"warning"``.  Both gate the exit code; severity
        is advisory (how confident the rule is, not how much it counts).
    path:
        POSIX-style path relative to the linted root.
    line / col:
        1-based line and 0-based column of the violation.
    symbol:
        Stable context identifier (function qualname, metric name, ...)
        used in baseline keys instead of the line number.
    message:
        Human-readable statement of the violation.
    hint:
        How to fix it (or how to suppress it when it is intentional).
    baselined:
        Set by the engine when a committed baseline grandfathers this
        finding (it is then reported but does not fail the run).
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    symbol: str
    message: str
    hint: str = ""
    baselined: bool = False

    @property
    def key(self) -> str:
        """Line-independent identity used by the baseline ratchet."""
        return f"{self.rule}:{self.path}:{self.symbol}"

    def as_dict(self) -> dict[str, Any]:
        """Flat JSON-ready dict (includes the derived ``key``)."""
        row = asdict(self)
        row["key"] = self.key
        return row

    def format_text(self) -> str:
        """One-line ``path:line:col: RULE message`` rendering."""
        flag = " [baselined]" if self.baselined else ""
        text = (
            f"{self.path}:{self.line}:{self.col}: {self.rule} "
            f"{self.severity}: {self.message}{flag}"
        )
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class LintResult:
    """Outcome of one engine run over one tree."""

    root: str
    files_scanned: int
    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    stale_baseline: list[str] = field(default_factory=list)
    #: Files actually re-analysed this run (``None`` = no cache in play,
    #: i.e. every scanned file).  A warm incremental run with no edits
    #: reports ``[]``.
    relinted_files: list[str] | None = None

    @property
    def relinted_count(self) -> int:
        """How many files were re-analysed (all of them without a cache)."""
        if self.relinted_files is None:
            return self.files_scanned
        return len(self.relinted_files)

    @property
    def new_findings(self) -> list[Finding]:
        """Findings not covered by the baseline (these fail the run)."""
        return [f for f in self.findings if not f.baselined]

    @property
    def baselined_findings(self) -> list[Finding]:
        """Findings grandfathered by the committed baseline."""
        return [f for f in self.findings if f.baselined]

    @property
    def ok(self) -> bool:
        """Whether the run passes (no non-baselined findings)."""
        return not self.new_findings

    def as_dict(self) -> dict[str, Any]:
        """JSON-report form (schema pinned by tests)."""
        return {
            "version": REPORT_VERSION,
            "tool": "reprolint",
            "root": self.root,
            "summary": {
                "files": self.files_scanned,
                "findings": len(self.new_findings),
                "baselined": len(self.baselined_findings),
                "suppressed": self.suppressed,
                "stale_baseline": len(self.stale_baseline),
                "relinted": self.relinted_count,
                "ok": self.ok,
            },
            "findings": [f.as_dict() for f in self.findings],
            "stale_baseline": sorted(self.stale_baseline),
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize the full report to JSON."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def format_text(self) -> str:
        """Multi-line human-readable report."""
        lines: list[str] = []
        for finding in self.findings:
            lines.append(finding.format_text())
        for key in sorted(self.stale_baseline):
            lines.append(
                f"stale baseline entry (no matching finding): {key}"
            )
        new = self.new_findings
        lines.append(
            f"reprolint: {self.files_scanned} files, "
            f"{len(new)} finding(s), "
            f"{len(self.baselined_findings)} baselined, "
            f"{self.suppressed} suppressed"
            + (" -- FAIL" if new else " -- ok")
        )
        return "\n".join(lines)
