"""Hierarchical counters, gauges, and timers behind a per-run registry.

The solvers are instrumented with *always-on* metrics: a module-level
active :class:`Registry` records named instruments, and hot paths batch
their updates (one ``Counter.add`` per Dijkstra run, not per heap pop),
so the enabled overhead stays in the noise (measured <1% wall-clock on
the Figure-6 benchmark sweep; the acceptance bar is <10%).

Names are hierarchical dotted strings (``"dijkstra.pops"``,
``"sspa.augmentations"``); the registry is flat but the convention keeps
reports greppable and lets exporters group by prefix.  The registry is
deliberately lock-free -- the solvers are single-threaded, and each run
gets its own registry (see :func:`use` and
:func:`repro.obs.profile.profile_solver`), so process-pool sweeps never
share one.

Usage::

    from repro.obs import metrics

    reg = metrics.Registry()
    with metrics.use(reg):
        solve(instance)                 # instrumented internals
    print(reg.as_dict()["dijkstra.pops"])

Instrumented code fetches instruments from the *active* registry at call
time (``metrics.active().counter("dijkstra.pops")``) -- never caches
them at import time -- so swapping registries is always safe.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager
from typing import Any


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        """Increase the counter by ``n`` (must be non-negative)."""
        self.value += n

    inc = add

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time numeric metric (last value or running maximum)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, v: float) -> None:
        """Overwrite the gauge with ``v``."""
        self.value = v

    def set_max(self, v: float) -> None:
        """Raise the gauge to ``v`` if larger (peak tracking)."""
        if v > self.value:
            self.value = v

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Timer:
    """Accumulated monotonic wall-time over repeated observations."""

    __slots__ = ("name", "total", "count")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total = 0.0
        self.count = 0

    def observe(self, seconds: float) -> None:
        """Record one timed interval of ``seconds``."""
        self.total += seconds
        self.count += 1

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager measuring the enclosed block."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - t0)

    def __repr__(self) -> str:
        return f"Timer({self.name}: {self.total:.6f}s/{self.count})"


class Registry:
    """A flat namespace of instruments, one per solver run.

    Instruments are created on first use and cached by name, so repeated
    ``counter("dijkstra.pops")`` calls cost one dict lookup.  A name may
    hold only one instrument kind; asking for the same name with a
    different kind raises ``ValueError``.
    """

    __slots__ = ("_instruments", "_version")

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Timer] = {}
        self._version = 0

    def _get(self, name: str, cls: type[Any]) -> Any:
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name)
            self._instruments[name] = inst
        elif type(inst) is not cls:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        return self._get(name, Gauge)

    def timer(self, name: str) -> Timer:
        """The timer called ``name`` (created on first use)."""
        return self._get(name, Timer)

    def as_dict(self) -> dict[str, float]:
        """Flatten to ``{name: value}``, sorted by name.

        Timers contribute two keys: ``<name>.seconds`` (total) and
        ``<name>.calls`` (observation count).
        """
        out: dict[str, float] = {}
        for name, inst in self._instruments.items():
            if isinstance(inst, Timer):
                out[f"{name}.seconds"] = inst.total
                out[f"{name}.calls"] = inst.count
            else:
                out[name] = inst.value
        return dict(sorted(out.items()))

    def names(self) -> list[str]:
        """Registered instrument names, sorted."""
        return sorted(self._instruments)

    def reset(self) -> None:
        """Drop every instrument (fresh-run state)."""
        self._instruments.clear()
        self._version += 1  # invalidates CounterBlock caches

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:
        return f"Registry({len(self._instruments)} instruments)"


class CounterBlock:
    """A bundle of counters re-resolved only when the active registry changes.

    Hot flush sites (`incremental._advance`, ``sspa._residual_dijkstra``)
    look the same few counters up thousands of times per solve; the name
    lookups dominate the cost of the flush itself.  A ``CounterBlock``
    caches the resolved :class:`Counter` objects and revalidates with two
    cheap identity checks per call -- the active registry and its reset
    version -- so swapping registries (:func:`use`) or calling
    :meth:`Registry.reset` always takes effect on the next flush.
    """

    __slots__ = ("_names", "_reg", "_version", "_counters")

    def __init__(self, *names: str) -> None:
        self._names = names
        self._reg: Registry | None = None
        self._version = -1
        self._counters: tuple[Counter, ...] = ()

    def get(self) -> tuple[Counter, ...]:
        """The counters in declaration order, from the active registry."""
        reg = _active
        if reg is not self._reg or reg._version != self._version:
            self._reg = reg
            self._version = reg._version
            self._counters = tuple(reg.counter(n) for n in self._names)
        return self._counters


# ----------------------------------------------------------------------
# Active-registry management
# ----------------------------------------------------------------------
# There is always an active registry so instrumented code never branches
# on "is observability on".  The default registry is process-global and
# only consulted when no profiling scope is active.
_default = Registry()
_active = _default


def active() -> Registry:
    """The registry instrumented code should record into right now."""
    return _active


def default() -> Registry:
    """The process-global fallback registry."""
    return _default


@contextmanager
def use(registry: Registry) -> Iterator[Registry]:
    """Make ``registry`` the active one within the ``with`` block.

    Scopes nest; the previous registry is restored on exit, even on
    exceptions.
    """
    global _active
    previous = _active
    _active = registry
    try:
        yield registry
    finally:
        _active = previous
