"""Central registry of observability instrument names.

Every counter, gauge, and timer name used anywhere in :mod:`repro` is
declared here, once, under its kind.  The reprolint rule **REP001**
(:mod:`repro.analysis.rules`) cross-checks this registry against the
whole tree:

* a call site (``metrics.active().counter("...")``,
  ``metrics.CounterBlock("...")``, ``timer("...")``, ...) whose name is
  *not* declared here is a lint error -- a typo would otherwise mint a
  brand-new counter that silently slips past the CI smoke gate
  (``benchmarks/baselines/smoke.json`` only checks names it knows);
* a name declared here with *no* remaining call site is a lint error
  too -- dead registry entries would let the gated vocabulary rot.

The committed smoke baseline must stay a subset of :data:`COUNTERS`
(pinned by ``tests/test_obs_names.py``), so a counter can never be
renamed without touching this file, the call site, and the baseline in
the same change.

Names are hierarchical dotted strings grouped by subsystem prefix; see
:mod:`repro.obs.metrics` for the conventions.
"""

from __future__ import annotations

#: Monotonic counters (``Registry.counter``) -- one entry per name.
COUNTERS = frozenset(
    {
        # -- network.dijkstra / network.kernels ------------------------
        "dijkstra.runs",
        "dijkstra.pops",
        "dijkstra.relaxations",
        "dijkstra.settled",
        "dijkstra.kernel_runs",
        # -- network.incremental (resumable nearest-facility streams) --
        "incremental.streams",
        "incremental.pops",
        "incremental.relaxations",
        "incremental.settled",
        "incremental.edges_materialized",
        # -- network.parallel (process-pool distance fan-out) ----------
        "parallel.tasks",
        "parallel.fallbacks",
        # -- network.distcache (scoped LRU of distance vectors) --------
        "distcache.hits",
        "distcache.misses",
        "distcache.evictions",
        # -- network.oracle (ALT landmark distance oracle) -------------
        "oracle.builds",
        "oracle.cache_hits",
        "oracle.cache_misses",
        "oracle.queries",
        "oracle.query_pops",
        "oracle.query_relaxations",
        "oracle.streams",
        "oracle.prunes",
        # -- network.ch (contraction-hierarchy oracle tier) ------------
        "ch.shortcuts",
        "ch.upward_settles",
        "ch.bucket_scans",
        "ch.matrix_blocks",
        # -- flow.sspa (successive shortest-path augmentation) ---------
        "sspa.dijkstra_runs",
        "sspa.pops",
        "sspa.reveals",
        "sspa.augmentations",
        "sspa.path_edges",
        # -- core.set_cover (CheckCover lazy heap) ---------------------
        "set_cover.checks",
        "set_cover.heap_pops",
        "set_cover.selections",
        # -- core.wma (the paper's Wide Matching Algorithm) ------------
        "wma.solves",
        "wma.iterations",
        # -- runtime (fallback chains and budgets) ---------------------
        "runtime.attempts",
        "runtime.fallbacks",
        "runtime.budget_exceeded",
        "runtime.degraded_returns",
        # -- serve (online mutation/delta engine) ----------------------
        "serve.batches",
        "serve.mutations",
        "serve.applied",
        "serve.rejected",
        "serve.shed_queue",
        "serve.shed_deadline",
        "serve.repairs_component",
        "serve.repairs_global",
        "serve.degraded",
        "serve.cache_hits",
        "serve.cache_misses",
    }
)

#: Point-in-time gauges (``Registry.gauge``).
GAUGES = frozenset(
    {
        "bipartite.peak_edges",
    }
)

#: Accumulating wall-time timers (``Registry.timer``).  Each timer
#: contributes ``<name>.seconds`` and ``<name>.calls`` keys to
#: ``Registry.as_dict()`` exports.
TIMERS = frozenset(
    {
        "wma.solve",
    }
)

#: Every registered instrument name, regardless of kind.
ALL_NAMES = COUNTERS | GAUGES | TIMERS


def kind_of(name: str) -> str | None:
    """The instrument kind registered for ``name`` (``None``: unknown)."""
    if name in COUNTERS:
        return "counter"
    if name in GAUGES:
        return "gauge"
    if name in TIMERS:
        return "timer"
    return None


def is_registered(name: str) -> bool:
    """Whether ``name`` is a declared instrument name of any kind."""
    return name in ALL_NAMES


def exported_keys() -> frozenset[str]:
    """Every key a full ``Registry.as_dict()`` export may contain.

    Counters and gauges export under their own name; timers fan out to
    ``<name>.seconds`` and ``<name>.calls``.  Baseline files (e.g.
    ``benchmarks/baselines/smoke.json``) must draw their keys from this
    set.
    """
    keys = set(COUNTERS | GAUGES)
    for name in TIMERS:
        keys.add(f"{name}.seconds")
        keys.add(f"{name}.calls")
    return frozenset(keys)
