"""Zero-dependency observability: metrics, tracing, solver profiling.

The subsystem has three layers (see each module's docstring):

* :mod:`repro.obs.metrics` -- hierarchical counters/gauges/timers behind
  a per-run :class:`~repro.obs.metrics.Registry`; always on, batched
  updates keep hot-path overhead negligible.
* :mod:`repro.obs.tracing` -- nested wall-time spans with a JSON-lines
  exporter; opt-in per run.
* :mod:`repro.obs.profile` -- wrap one solver call and emit a structured
  :class:`~repro.obs.profile.ProfileReport`, the data behind
  ``repro profile`` and the CI benchmark-smoke gate.
"""

from __future__ import annotations

from typing import Any

from repro.obs import metrics, tracing
from repro.obs.metrics import Counter, Gauge, Registry, Timer
from repro.obs.tracing import Span, Trace

#: Profiling names resolved lazily (PEP 562): :mod:`repro.obs.profile`
#: imports the solver stack, which itself uses the metrics layer -- an
#: eager import here would make ``repro.obs`` unimportable from low-level
#: modules such as :mod:`repro.runtime.budget`.
_PROFILE_EXPORTS = ("ProfileReport", "check_against_baseline", "profile_solver")


def __getattr__(name: str) -> Any:
    if name in _PROFILE_EXPORTS:
        from repro.obs import profile

        return getattr(profile, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "metrics",
    "tracing",
    "Counter",
    "Gauge",
    "Timer",
    "Registry",
    "Span",
    "Trace",
    "ProfileReport",
    "profile_solver",
    "check_against_baseline",
]
