"""Nested wall-time spans with a JSON-lines exporter.

A :class:`Trace` records a tree of named spans::

    trace = Trace()
    with tracing.use(trace):
        with tracing.span("wma.iteration", k=3):
            with tracing.span("wma.matching"):
                ...

Each span stores its name, start offset (relative to the trace's own
origin, so traces are comparable across runs), duration, nesting depth,
parent index, and free-form attributes.  Spans are appended in *start*
order, which is also a valid pre-order traversal of the span tree.

Unlike metrics (always on), tracing is opt-in: when no trace is active,
:func:`span` yields a no-op context with near-zero cost, so solver hot
loops may be spanned without penalizing un-profiled runs.
"""

from __future__ import annotations

import json
import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, TextIO


@dataclass
class Span:
    """One recorded span (see module docstring for field semantics)."""

    name: str
    start: float
    duration: float
    depth: int
    index: int
    parent: int  # index of the parent span, -1 for roots
    attrs: dict[str, Any] = field(default_factory=dict)

    def as_row(self) -> dict[str, Any]:
        """Flat JSON-serializable dict for export."""
        row: dict[str, Any] = {
            "name": self.name,
            "start": round(self.start, 9),
            "duration": round(self.duration, 9),
            "depth": self.depth,
            "index": self.index,
            "parent": self.parent,
        }
        if self.attrs:
            row["attrs"] = self.attrs
        return row


class Trace:
    """An ordered collection of nested spans from one profiled run."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._origin = time.perf_counter()
        self._stack: list[int] = []

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Record a span covering the ``with`` block."""
        index = len(self.spans)
        record = Span(
            name=name,
            start=time.perf_counter() - self._origin,
            duration=0.0,
            depth=len(self._stack),
            index=index,
            parent=self._stack[-1] if self._stack else -1,
            attrs=attrs,
        )
        self.spans.append(record)
        self._stack.append(index)
        t0 = time.perf_counter()
        try:
            yield record
        finally:
            record.duration = time.perf_counter() - t0
            self._stack.pop()

    def rows(self) -> list[dict[str, Any]]:
        """All spans as flat dicts, in start order."""
        return [s.as_row() for s in self.spans]

    def summary(self) -> dict[str, dict[str, float]]:
        """Aggregate wall time per span name.

        Returns ``{name: {"calls": n, "total_s": t, "max_s": m}}``; the
        per-span report of :mod:`repro.obs.profile` embeds this.
        """
        out: dict[str, dict[str, float]] = {}
        for s in self.spans:
            agg = out.setdefault(
                s.name, {"calls": 0, "total_s": 0.0, "max_s": 0.0}
            )
            agg["calls"] += 1
            agg["total_s"] += s.duration
            agg["max_s"] = max(agg["max_s"], s.duration)
        return out

    def export_jsonl(self, target: str | TextIO) -> None:
        """Write one JSON object per span to ``target`` (path or file)."""
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as fh:
                self.export_jsonl(fh)
            return
        for row in self.rows():
            target.write(json.dumps(row, sort_keys=True) + "\n")

    @staticmethod
    def import_jsonl(source: str | TextIO) -> list[dict[str, Any]]:
        """Read back rows written by :meth:`export_jsonl`."""
        if isinstance(source, str):
            with open(source, encoding="utf-8") as fh:
                return Trace.import_jsonl(fh)
        return [json.loads(line) for line in source if line.strip()]

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        return f"Trace({len(self.spans)} spans)"


# ----------------------------------------------------------------------
# Active-trace management
# ----------------------------------------------------------------------
_active: Trace | None = None


def active() -> Trace | None:
    """The trace spans record into, or ``None`` when tracing is off."""
    return _active


@contextmanager
def use(trace: Trace) -> Iterator[Trace]:
    """Make ``trace`` the active one within the ``with`` block."""
    global _active
    previous = _active
    _active = trace
    try:
        yield trace
    finally:
        _active = previous


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Span | None]:
    """Record a span on the active trace; no-op when tracing is off."""
    trace = _active
    if trace is None:
        yield None
        return
    with trace.span(name, **attrs) as record:
        yield record
