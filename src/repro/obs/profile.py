"""Profile a solver run into one structured, comparable report.

:func:`profile_solver` wraps any registered solver with a fresh metrics
:class:`~repro.obs.metrics.Registry` and :class:`~repro.obs.tracing.Trace`
and returns a :class:`ProfileReport` unifying what used to be ad-hoc
diagnostics (``BipartiteState.edges_materialized``,
``BipartiteState.dijkstra_runs``, the timings inside ``WMATrace``) into
one vocabulary:

===============================  =============================================
counter                          meaning
===============================  =============================================
``dijkstra.runs/pops/...``       network-level Dijkstra work (all variants)
``incremental.*``                resumable nearest-facility stream work
``incremental.edges_materialized``  lazy ``G_b`` edges revealed
``sspa.augmentations``           FindPair augmenting paths applied
``sspa.dijkstra_runs/pops``      residual-graph Dijkstra work
``set_cover.checks/heap_pops``   CheckCover invocations and lazy-heap pops
``oracle.queries/query_pops``    oracle point-to-point work (zero on the kernel path)
``oracle.prunes``                SSPA stops certified by oracle lower bounds
``ch.upward_settles/...``        contraction-hierarchy sweep work (``ch`` kind)
``bipartite.peak_edges``         peak ``G_b`` size (gauge)
===============================  =============================================

Reports serialize to JSON (``repro profile`` in the CLI) and compare
against committed baselines so CI can gate on counter regressions; see
:func:`check_against_baseline` and ``benchmarks/baselines/smoke.json``.
"""

from __future__ import annotations

import contextlib
import json
import time
from dataclasses import dataclass, field
from typing import Any

from repro.network import distcache
from repro.network import oracle as network_oracle
from repro.obs import metrics, tracing


@dataclass
class ProfileReport:
    """Everything observed about one profiled solver run."""

    method: str
    instance: str
    objective: float
    runtime_sec: float
    metrics: dict[str, float]
    spans: list[dict[str, Any]]
    span_summary: dict[str, dict[str, float]]
    solution_meta: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """Plain nested-dict form (JSON-ready)."""
        return {
            "method": self.method,
            "instance": self.instance,
            "objective": self.objective,
            "runtime_sec": self.runtime_sec,
            "metrics": self.metrics,
            "span_summary": self.span_summary,
            "spans": self.spans,
            "solution_meta": _jsonable(self.solution_meta),
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize the report to a JSON string."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of solver metadata to JSON-safe values."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def profile_solver(
    instance: Any,
    method: str = "wma",
    *,
    registry: metrics.Registry | None = None,
    trace: tracing.Trace | None = None,
    validate: bool = True,
    workers: int | None = None,
    distance_cache: bool = True,
    oracle: Any = None,
    **solver_kwargs: Any,
) -> ProfileReport:
    """Run ``method`` on ``instance`` under full observability.

    Parameters
    ----------
    instance:
        The :class:`~repro.core.instance.MCFSInstance` to solve.
    method:
        A key of :data:`repro.SOLVERS`.
    registry / trace:
        Optional pre-created sinks (to accumulate several runs into one);
        fresh ones are created by default.
    validate:
        Audit the solution with
        :func:`~repro.core.validation.validate_solution` inside the
        profiled scope (a ``validate`` span).  The audit recomputes the
        objective from raw network Dijkstras, so its ``dijkstra.*``
        counters appear in the report alongside the solver's own.
    workers:
        Process count forwarded to solvers that accept one (see
        :data:`repro.bench.harness.WORKER_AWARE_METHODS`); ignored for
        the rest.  The profiled objective is identical for any count.
    distance_cache:
        Run under a fresh :class:`~repro.network.distcache.DistanceCache`
        scope so ``distcache.*`` counters appear in the report (all
        zeros when the solver never consults the cache).
    oracle:
        Distance-oracle control forwarded to the solver (universal
        option; see :func:`repro.network.oracle.resolve`; ``"alt"`` or
        ``"ch"`` picks the kind).  ``None`` defers to the
        ``REPRO_ORACLE`` environment variable.  The ``oracle.*`` and
        ``ch.*`` counters are always primed in the report -- all zeros
        on the kernel path -- so dijkstra and oracle work read off one
        table.
    solver_kwargs:
        Forwarded to the solver (``seed``, ``time_limit``, ...).
    """
    # Local import: repro's __init__ imports obs-instrumented modules.
    from repro import SOLVERS, validate_solution
    from repro.bench.harness import WORKER_AWARE_METHODS

    solver = SOLVERS[method]
    reg = registry if registry is not None else metrics.Registry()
    tr = trace if trace is not None else tracing.Trace()
    if workers is not None and method in WORKER_AWARE_METHODS:
        solver_kwargs = {**solver_kwargs, "workers": workers}
    # Resolve the oracle *before* entering the metrics scope: building
    # one runs a landmark Dijkstra per landmark, which would otherwise
    # inflate this report's dijkstra.* counters (and trip the baseline
    # gate).  Preprocessing is a per-network one-off, not per-solve work.
    if oracle is False:
        solver_kwargs = {**solver_kwargs, "oracle": False}
    else:
        resolved = network_oracle.resolve(
            oracle, getattr(instance, "network", None)
        )
        if resolved is not None:
            solver_kwargs = {**solver_kwargs, "oracle": resolved}
    network_oracle.prime_counters(reg)
    cache_scope = (
        distcache.use(distcache.DistanceCache())
        if distance_cache
        else contextlib.nullcontext()
    )

    started = time.perf_counter()
    # Enter the metrics scope first so the cache scope's counter priming
    # lands in this report's registry.
    with metrics.use(reg), tracing.use(tr), cache_scope:
        with tr.span("solve", method=method):
            solution = solver(instance, **solver_kwargs)
        if validate:
            with tr.span("validate"):
                validate_solution(instance, solution)
    elapsed = time.perf_counter() - started

    return ProfileReport(
        method=method,
        instance=getattr(instance, "name", "instance"),
        objective=float(solution.objective),
        runtime_sec=elapsed,
        metrics=reg.as_dict(),
        spans=tr.rows(),
        span_summary=tr.summary(),
        solution_meta=dict(solution.meta),
    )


def check_against_baseline(
    observed: dict[str, float],
    baseline: dict[str, float],
    *,
    tolerance: float = 0.2,
) -> list[str]:
    """Compare observed counters to committed baseline ceilings.

    A counter regresses when ``observed > baseline * (1 + tolerance)``.
    Only keys present in ``baseline`` are checked (the baseline pins the
    gated vocabulary; new counters never fail retroactively), but a
    baselined counter *missing* from ``observed`` is itself a violation
    -- deleting instrumentation must not silently pass the gate.

    Returns a list of human-readable violation strings (empty = pass).
    """
    violations: list[str] = []
    for name, base in sorted(baseline.items()):
        if name not in observed:
            violations.append(f"{name}: missing from observed metrics")
            continue
        ceiling = base * (1.0 + tolerance)
        got = observed[name]
        if got > ceiling:
            violations.append(
                f"{name}: observed {got:g} exceeds baseline {base:g} "
                f"by more than {tolerance:.0%} (ceiling {ceiling:g})"
            )
    return violations
