"""The lazily materialized bipartite graph ``G_b``.

WMA never builds the complete customer-facility bipartite graph (it has
``m * l`` edges, each requiring a shortest-path computation).  Instead,
:class:`BipartiteState` holds:

* the edges materialized so far (per customer, facility -> true network
  distance), fed by per-customer :class:`~repro.network.incremental.StreamCursor`
  objects that reveal facilities in non-decreasing distance;
* the running assignment ``sigma`` (which customer-facility pairs carry
  flow) and per-facility load counts;
* Johnson node potentials for customers and facilities, maintained by the
  SSPA matcher so that all residual reduced costs stay non-negative.

Customer-side nodes are identified by customer index ``0..m-1`` and
facility-side nodes by facility index ``0..l-1`` (positions in the
instance's candidate list), never by raw network node ids.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import GraphError
from repro.network.graph import Network
from repro.network.incremental import StreamCursor, StreamPool
from repro.obs import metrics

_MATERIALIZE_COUNTERS = metrics.CounterBlock("incremental.edges_materialized")


class _FilteredCursor:
    """A stream cursor restricted to a subset of facility nodes.

    WMA's final phase assigns customers onto the *selected* facilities
    while reusing the exploration phase's stream pool (which streams
    towards the full candidate set).  This wrapper skips facilities
    outside the subset; skipping only advances this customer's private
    rank, so shared streams are unaffected.
    """

    def __init__(self, cursor: StreamCursor, allowed: frozenset[int]) -> None:
        self._cursor = cursor
        self._allowed = allowed

    def peek(self) -> tuple[int, float] | None:
        while True:
            item = self._cursor.peek()  # reprolint: disable=REP112 -- amortized O(1): the underlying stream advances monotonically
            if item is None or item[0] in self._allowed:
                return item
            self._cursor.take()  # reprolint: disable=REP112 -- amortized O(1): each stream item is taken exactly once

    def peek_distance(self) -> float:
        item = self.peek()
        return item[1] if item is not None else float("inf")

    @property
    def rank(self) -> int:
        """Underlying stream position (skipped facilities included)."""
        return self._cursor.rank

    def seek(self, rank: int) -> None:
        """Reposition the underlying cursor (see :meth:`StreamCursor.seek`)."""
        self._cursor.seek(rank)

    def peek_lower_bound(self) -> float | None:
        # Disallowed facilities at the frontier are nearer than the next
        # allowed one, so the unfiltered bound still bounds from below.
        return self._cursor.peek_lower_bound()

    def take(self) -> tuple[int, float] | None:
        item = self.peek()
        if item is not None:
            self._cursor.take()
        return item


class BipartiteState:
    """Mutable matching state between customers and candidate facilities.

    Parameters
    ----------
    network:
        The road network distances are measured on.
    customer_nodes:
        Node id per customer (duplicates allowed).
    facility_nodes:
        Node id per candidate facility (distinct).
    capacities:
        Capacity per candidate facility.
    pool:
        Optional shared :class:`StreamPool`.  WMA's recursive final
        assignment passes the pool of the main phase so network Dijkstra
        work is reused.
    """

    def __init__(
        self,
        network: Network,
        customer_nodes: Sequence[int],
        facility_nodes: Sequence[int],
        capacities: Sequence[int],
        pool: StreamPool | None = None,
    ) -> None:
        if len(facility_nodes) != len(capacities):
            raise GraphError("facility_nodes and capacities must align")
        self.network = network
        self.customer_nodes = [int(c) for c in customer_nodes]
        self.facility_nodes = [int(f) for f in facility_nodes]
        self.capacities = [int(c) for c in capacities]
        self.m = len(self.customer_nodes)
        self.l = len(self.facility_nodes)

        self._fac_index_of_node = {
            node: j for j, node in enumerate(self.facility_nodes)
        }
        if len(self._fac_index_of_node) != self.l:
            raise GraphError("facility nodes must be distinct")

        if pool is None:
            pool = StreamPool(network, self.facility_nodes)
        elif not set(self.facility_nodes) <= set(pool.facility_nodes):
            raise GraphError(
                "shared stream pool does not cover this state's facilities"
            )
        self.pool = pool
        # Streams may target a superset of this state's facilities when the
        # pool is shared; cursors filter down to the local candidate set.
        self._needs_filter = len(pool.facility_nodes) != self.l
        self._allowed_nodes = frozenset(self.facility_nodes)
        self._cursors: list[StreamCursor | _FilteredCursor | None] = (
            [None] * self.m
        )

        # edges[i]: facility index -> true network distance.
        self.edges: list[dict[int, float]] = [{} for _ in range(self.m)]
        # matched[i]: facility indices currently assigned to customer i.
        self.matched: list[set[int]] = [set() for _ in range(self.m)]
        # assigned[j]: customer indices in sigma_j.
        self.assigned: list[set[int]] = [set() for _ in range(self.l)]
        # Johnson potentials (non-negative, maintained by the matcher).
        self.customer_potential = [0.0] * self.m
        self.facility_potential = [0.0] * self.l

        # Diagnostics the benchmarks report on.
        self.edges_materialized = 0
        self.dijkstra_runs = 0

    # ------------------------------------------------------------------
    # Cursors and edge materialization
    # ------------------------------------------------------------------
    def cursor(self, i: int) -> StreamCursor | _FilteredCursor:
        """The nearest-facility cursor of customer ``i``."""
        cur = self._cursors[i]
        if cur is None:
            cur = self.pool.cursor_for(self.customer_nodes[i])
            if self._needs_filter:
                cur = _FilteredCursor(cur, self._allowed_nodes)
            self._cursors[i] = cur
        return cur

    def next_candidate_distance(self, i: int) -> float:
        """``nnDist`` of Algorithm 2: distance of the next unrevealed facility."""
        return self.cursor(i).peek_distance()

    def next_candidate_lower_bound(self, i: int) -> float | None:
        """A cheap lower bound on :meth:`next_candidate_distance`.

        ``None`` when the underlying stream offers no bound without
        resuming its search (the kernel path); see the SSPA fast path in
        :mod:`repro.flow.sspa`.  Never materializes an edge or advances
        a stream.
        """
        return self.cursor(i).peek_lower_bound()

    @property
    def has_cheap_bounds(self) -> bool:
        """Whether the stream pool serves oracle-backed lower bounds."""
        return self.pool.has_oracle

    def materialize_next(self, i: int) -> int | None:
        """Reveal customer ``i``'s next-nearest facility as a ``G_b`` edge.

        Returns the facility index, or ``None`` when no further facility
        is reachable from the customer's component.
        """
        item = self.cursor(i).take()
        if item is None:
            return None
        node, dist = item
        j = self._fac_index_of_node[node]
        self.edges[i][j] = dist
        self.edges_materialized += 1
        (c_edges,) = _MATERIALIZE_COUNTERS.get()
        c_edges.add()
        metrics.active().gauge("bipartite.peak_edges").set_max(
            self.edges_materialized
        )
        return j

    def cursor_rank(self, i: int) -> int:
        """Stream position of customer ``i`` (0 when never advanced)."""
        cur = self._cursors[i]
        return 0 if cur is None else cur.rank

    def seek_cursor(self, i: int, rank: int) -> None:
        """Restore customer ``i``'s stream position (cache restores)."""
        self.cursor(i).seek(rank)

    # ------------------------------------------------------------------
    # Customer-row lifecycle (the serving layer's delta operations)
    # ------------------------------------------------------------------
    def append_customer(self, node: int) -> int:
        """Grow the customer side by one unmatched row; returns its index.

        The new row starts with no materialized edges, zero potential,
        and a lazily created cursor -- exactly the state a constructor
        row starts in, so a subsequent ``find_pair`` treats it like any
        other arrival.
        """
        row = self.m
        self.customer_nodes.append(int(node))
        self.edges.append({})
        self.matched.append(set())
        self.customer_potential.append(0.0)
        self._cursors.append(None)
        self.m += 1
        return row

    def pop_customer(self) -> None:
        """Undo :meth:`append_customer` for an unmatched trailing row."""
        if self.matched[-1]:
            raise GraphError("cannot pop a matched customer row")
        self.customer_nodes.pop()
        self.edges.pop()
        self.matched.pop()
        self.customer_potential.pop()
        self._cursors.pop()
        self.m -= 1

    def transplant_row(self, i: int, other: BipartiteState, other_row: int) -> None:
        """Adopt row ``other_row`` of ``other`` as this state's row ``i``.

        Carries over the materialized edges, the customer potential, the
        stream cursor (ranks and all), and the matching -- the scoped
        re-solve's way of keeping untouched components' state warm while
        only dirty components are rebuilt.  Both states must share the
        stream pool (hence the facility universe and the network);
        facility indices are then directly compatible.
        """
        if other.pool is not self.pool:
            raise GraphError(
                "transplant requires states sharing one stream pool"
            )
        if self.customer_nodes[i] != other.customer_nodes[other_row]:
            raise GraphError(
                f"transplant target row {i} hosts node "
                f"{self.customer_nodes[i]}, source row {other_row} hosts "
                f"{other.customer_nodes[other_row]}"
            )
        self.edges[i] = other.edges[other_row]
        self.customer_potential[i] = other.customer_potential[other_row]
        self._cursors[i] = other._cursors[other_row]
        for j in sorted(other.matched[other_row]):
            _budget_checkpoint()
            self.match(i, j)

    # ------------------------------------------------------------------
    # Assignment bookkeeping
    # ------------------------------------------------------------------
    def load(self, j: int) -> int:
        """Number of customers currently assigned to facility ``j``."""
        return len(self.assigned[j])

    def is_full(self, j: int) -> bool:
        """Whether facility ``j`` has reached its capacity."""
        return len(self.assigned[j]) >= self.capacities[j]

    def match(self, i: int, j: int) -> None:
        """Add flow on edge ``(i, j)`` (must be materialized, unmatched)."""
        if j not in self.edges[i]:
            raise GraphError(f"edge ({i}, {j}) is not materialized")
        if j in self.matched[i]:
            raise GraphError(f"edge ({i}, {j}) already carries flow")
        self.matched[i].add(j)
        self.assigned[j].add(i)

    def unmatch(self, i: int, j: int) -> None:
        """Remove flow on edge ``(i, j)`` (must be matched)."""
        if j not in self.matched[i]:
            raise GraphError(f"edge ({i}, {j}) carries no flow")
        self.matched[i].remove(j)
        self.assigned[j].remove(i)

    def assignment_count(self, i: int) -> int:
        """Number of facilities customer ``i`` is currently matched to."""
        return len(self.matched[i])

    def total_cost(self) -> float:
        """Sum of true distances over all matched edges."""
        return sum(
            self.edges[i][j] for i in range(self.m) for j in self.matched[i]
        )

    # Post-solve O(m) accessor over the finished matching.
    def matched_pairs(  # reprolint: disable=REP101
        self,
    ) -> Iterable[tuple[int, int, float]]:
        """Yield ``(customer, facility, distance)`` for matched edges."""
        for i in range(self.m):
            for j in self.matched[i]:
                yield i, j, self.edges[i][j]

    def coverage_sets(self) -> list[set[int]]:
        """``sigma_j`` per facility: the customers matched to it."""
        return [set(s) for s in self.assigned]

    def __repr__(self) -> str:
        flow = sum(len(s) for s in self.matched)
        return (
            f"BipartiteState(m={self.m}, l={self.l}, "
            f"edges={self.edges_materialized}, flow={flow})"
        )
