"""General-purpose min-cost flow (successive shortest paths).

The bipartite matcher in :mod:`repro.flow.sspa` is a heavily specialized
min-cost-flow solver; this module exposes the general machinery for
arbitrary directed flow networks -- node supplies/demands, arc capacities
and costs -- so downstream users can model variants the bipartite shape
does not fit (e.g. facilities with shared upstream depots, or edge
throughput limits, which the paper explicitly leaves out: "a network with
no throughput constraints on edges").

Algorithm: successive shortest paths with Johnson potentials.  Initial
potentials come from Bellman-Ford, so negative arc *costs* are accepted
(negative *cycles* are rejected).  Integral capacities/supplies yield an
integral optimal flow, as usual.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.runtime.budget import checkpoint as _budget_checkpoint

INF = math.inf


class FlowError(ReproError):
    """Raised for malformed flow networks or infeasible flow problems."""


@dataclass
class _Arc:
    head: int
    capacity: float
    cost: float
    flow: float = 0.0
    partner: int = -1  # index of the reverse arc


@dataclass
class FlowResult:
    """Outcome of :func:`min_cost_flow`.

    Attributes
    ----------
    cost:
        Total cost of the flow.
    flows:
        Flow per input arc, in insertion order.
    """

    cost: float
    flows: list[float] = field(default_factory=list)


class FlowNetwork:
    """A directed flow network with node supplies.

    Positive ``supply`` injects flow at a node, negative consumes it;
    supplies must sum to zero.  Arcs are added with capacity and cost.
    """

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise FlowError(f"n_nodes must be positive, got {n_nodes}")
        self.n = int(n_nodes)
        self.supply = [0.0] * self.n
        self._arcs: list[_Arc] = []
        self._out: list[list[int]] = [[] for _ in range(self.n)]
        self._input_arcs: list[int] = []

    def set_supply(self, node: int, value: float) -> None:
        """Set a node's supply (+) or demand (-)."""
        self._check(node)
        self.supply[node] = float(value)

    def add_arc(
        self, tail: int, head: int, capacity: float, cost: float
    ) -> int:
        """Add a directed arc; returns its index (for reading flow)."""
        self._check(tail)
        self._check(head)
        if capacity < 0:
            raise FlowError(f"arc capacity must be >= 0, got {capacity}")
        forward = _Arc(head=head, capacity=float(capacity), cost=float(cost))
        backward = _Arc(head=tail, capacity=0.0, cost=-float(cost))
        fi = len(self._arcs)
        self._arcs.append(forward)
        bi = len(self._arcs)
        self._arcs.append(backward)
        forward.partner = bi
        backward.partner = fi
        self._out[tail].append(fi)
        self._out[head].append(bi)
        self._input_arcs.append(fi)
        return len(self._input_arcs) - 1

    def _check(self, node: int) -> None:
        if not (0 <= node < self.n):
            raise FlowError(f"node {node} outside 0..{self.n - 1}")

    # ------------------------------------------------------------------
    def solve(self) -> FlowResult:
        """Compute a min-cost flow satisfying all supplies.

        Raises
        ------
        FlowError
            When supplies do not balance, a negative cycle exists, or the
            network cannot carry the required flow.
        """
        if abs(sum(self.supply)) > 1e-9:
            raise FlowError(
                f"supplies must sum to zero, got {sum(self.supply)}"
            )

        potential = self._bellman_ford_potentials()
        excess = list(self.supply)

        while True:
            _budget_checkpoint()
            sources = [v for v in range(self.n) if excess[v] > 1e-12]
            if not sources:
                break
            source = sources[0]
            dist, parent_arc = self._dijkstra(source, potential)  # reprolint: disable=REP112 -- successive shortest paths: one Dijkstra per unit of flow is the algorithm
            # Nearest deficit node reachable from the source.
            target = None
            best = INF
            for v in range(self.n):
                if excess[v] < -1e-12 and dist[v] < best:
                    best = dist[v]
                    target = v
            if target is None:
                raise FlowError(
                    "infeasible: no path from a supply node to any demand"
                )
            # Update potentials (only nodes with finite labels).
            for v in range(self.n):
                if dist[v] < INF:
                    potential[v] += dist[v]
            # Bottleneck along the path.
            push = min(excess[source], -excess[target])
            v = target
            while v != source:
                arc = self._arcs[parent_arc[v]]
                push = min(push, arc.capacity - arc.flow)
                v = self._arcs[arc.partner].head
            # Augment.
            v = target
            while v != source:
                arc = self._arcs[parent_arc[v]]
                arc.flow += push
                self._arcs[arc.partner].flow -= push
                v = self._arcs[arc.partner].head
            excess[source] -= push
            excess[target] += push

        cost = sum(
            self._arcs[fi].flow * self._arcs[fi].cost
            for fi in self._input_arcs
        )
        flows = [self._arcs[fi].flow for fi in self._input_arcs]
        return FlowResult(cost=cost, flows=flows)

    # ------------------------------------------------------------------
    def _bellman_ford_potentials(self) -> list[float]:
        """Valid potentials even with negative arc costs.

        Runs Bellman-Ford from a virtual super-source connected to every
        node with cost 0; detects negative cycles.
        """
        dist = [0.0] * self.n
        for _round_idx in range(self.n):
            _budget_checkpoint()
            changed = False
            for v in range(self.n):
                for ai in self._out[v]:
                    arc = self._arcs[ai]
                    if arc.capacity - arc.flow <= 1e-12:
                        continue
                    nd = dist[v] + arc.cost
                    if nd < dist[arc.head] - 1e-12:
                        dist[arc.head] = nd
                        changed = True
            if not changed:
                return dist
        raise FlowError("network contains a negative-cost cycle")

    def _dijkstra(
        self, source: int, potential: list[float]
    ) -> tuple[list[float], list[int]]:
        dist = [INF] * self.n
        parent_arc = [-1] * self.n
        dist[source] = 0.0
        done = [False] * self.n
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            _budget_checkpoint()
            d, u = heapq.heappop(heap)
            if done[u]:
                continue
            done[u] = True
            for ai in self._out[u]:
                arc = self._arcs[ai]
                if arc.capacity - arc.flow <= 1e-12:
                    continue
                rc = arc.cost + potential[u] - potential[arc.head]
                nd = d + rc
                if nd < dist[arc.head] - 1e-12:
                    dist[arc.head] = nd
                    parent_arc[arc.head] = ai
                    heapq.heappush(heap, (nd, arc.head))
        return dist, parent_arc


def min_cost_flow(
    n_nodes: int,
    arcs: list[tuple[int, int, float, float]],
    supplies: dict[int, float],
) -> FlowResult:
    """Convenience wrapper: solve min-cost flow in one call.

    Parameters
    ----------
    n_nodes:
        Number of nodes (ids ``0..n_nodes-1``).
    arcs:
        ``(tail, head, capacity, cost)`` per arc, in order; the result's
        ``flows`` aligns with this order.
    supplies:
        Node -> supply (+) / demand (-); unlisted nodes are transit.
    """
    network = FlowNetwork(n_nodes)
    for node, value in supplies.items():
        network.set_supply(node, value)
    for tail, head, capacity, cost in arcs:
        network.add_arc(tail, head, capacity, cost)
    return network.solve()
