"""Successive Shortest Path matching with lazy edge materialization.

This module implements Algorithm 2 of the paper (``FindPair``): augment
one unit of flow from a customer to the nearest facility with residual
capacity, rewiring earlier assignments when beneficial, while revealing
bipartite edges only when the Theorem-1 pruning threshold proves they
could matter.

Node encoding inside the residual Dijkstra: customer ``i`` is node ``i``,
facility ``j`` is node ``m + j``.  Arcs of the residual graph:

* forward ``i -> j`` for every materialized, unmatched pair, with reduced
  cost ``w(i, j) - p_i + p_j``;
* backward ``j -> i`` for every matched pair, with reduced cost
  ``-w(i, j) - p_j + p_i``.

Potentials are updated after each augmentation as in the paper
(``v.p += sp.length - v.dist`` for settled ``v``), which keeps all
residual reduced costs non-negative.  Newly revealed edges also keep
non-negative reduced cost because the stopping rule guarantees
``sp.length <= dist_x + nnDist(x) - p_x`` for every settled customer
``x`` -- exactly the slack needed (this is checked by an internal
assertion).

Two stopping thresholds are provided for the ablation study of Section V:

* ``ThresholdRule.THEOREM1`` -- the paper's tighter per-customer bound
  ``min_x {dist_x + nnDist(x) - p_x}``;
* ``ThresholdRule.TAU_PRIME`` -- the earlier bound of U et al. [15],
  ``min_x {dist_x + nnDist(x)} - tau_max``.  We take ``tau_max`` as the
  maximum potential over *all* settled customers, a slightly more
  conservative (hence still correct) form than the paper's Eq. (12).
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Sequence
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import MatchingError
from repro.flow.bipartite import BipartiteState
from repro.network.graph import Network
from repro.network.incremental import StreamPool
from repro.obs import metrics
from repro.runtime.budget import checkpoint as _budget_checkpoint

INF = math.inf
_EPS = 1e-9

_DIJKSTRA_COUNTERS = metrics.CounterBlock("sspa.dijkstra_runs", "sspa.pops")
_REVEAL_COUNTERS = metrics.CounterBlock("sspa.reveals")
_PRUNE_COUNTERS = metrics.CounterBlock("oracle.prunes")


class ThresholdRule(Enum):
    """Which pruning bound FindPair uses to stop revealing edges."""

    THEOREM1 = "theorem1"
    TAU_PRIME = "tau_prime"


@dataclass
class AssignmentResult:
    """Outcome of :func:`assign_all`.

    Attributes
    ----------
    assignment:
        Facility index per customer.
    cost:
        Total true network distance of the assignment.
    state:
        The final bipartite state (exposes diagnostics such as the number
        of materialized edges and Dijkstra runs).
    """

    assignment: list[int]
    cost: float
    state: BipartiteState = field(repr=False)


def _residual_dijkstra(
    state: BipartiteState, source: int
) -> tuple[
    dict[int, float], dict[int, int], list[int], int | None, float
]:
    """Early-exit Dijkstra over the residual bipartite graph.

    Returns ``(dist, parent, settled, target, sp_len)`` where ``target``
    is the first settled facility with residual capacity (``None`` when
    the residual graph has no reachable free facility) and ``sp_len`` its
    reduced-cost distance.  Node ids: customers ``0..m-1``, facilities
    ``m..m+l-1``.
    """
    # One residual search is the matcher's unit of work: a cooperative
    # budget interrupts between searches, never inside one.
    _budget_checkpoint()
    m = state.m
    cust_p = state.customer_potential
    fac_p = state.facility_potential
    edges = state.edges
    matched = state.matched
    assigned = state.assigned

    dist: dict[int, float] = {source: 0.0}
    parent: dict[int, int] = {}
    settled: list[int] = []
    done: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    heappush, heappop = heapq.heappush, heapq.heappop
    state.dijkstra_runs += 1
    c_runs, c_pops = _DIJKSTRA_COUNTERS.get()
    c_runs.add()
    pops = 0

    while heap:
        d, u = heappop(heap)
        pops += 1
        if u in done:
            continue
        done.add(u)
        settled.append(u)
        if u >= m:
            j = u - m
            if not state.is_full(j):
                c_pops.add(pops)
                return dist, parent, settled, j, d
            # Full facility: relax backward arcs to its matched customers.
            pj = fac_p[j]
            for i2 in assigned[j]:
                rc = -edges[i2][j] - pj + cust_p[i2]
                nd = d + rc
                if nd < dist.get(i2, INF) - _EPS:
                    dist[i2] = nd
                    parent[i2] = u
                    heappush(heap, (nd, i2))
        else:
            i = u
            pi = cust_p[i]
            has = matched[i]
            for j2, w in edges[i].items():
                if j2 in has:
                    continue
                rc = w - pi + fac_p[j2]
                nd = d + rc
                v = m + j2
                if nd < dist.get(v, INF) - _EPS:
                    dist[v] = nd
                    parent[v] = u
                    heappush(heap, (nd, v))
    c_pops.add(pops)
    return dist, parent, settled, None, INF


# O(settled) scan immediately following the checkpointed residual Dijkstra.
def _stop_bound(  # reprolint: disable=REP101
    state: BipartiteState,
    dist: dict[int, float],
    settled: Sequence[int],
    rule: ThresholdRule,
) -> tuple[float, int | None]:
    """Compute the edge-reveal threshold and its arg-min customer.

    Returns ``(bound, best_customer)``: ``sp_len <= bound`` certifies the
    current shortest path is optimal in the complete bipartite graph;
    ``best_customer`` is the settled customer whose next edge should be
    revealed otherwise (``None`` when every settled customer's stream is
    exhausted).
    """
    m = state.m
    cust_p = state.customer_potential
    best = INF
    best_customer: int | None = None

    if rule is ThresholdRule.THEOREM1:
        for u in settled:
            if u >= m:
                continue
            nn = state.next_candidate_distance(u)
            if nn == INF:
                continue
            t = dist[u] + nn - cust_p[u]
            if t < best:
                best = t
                best_customer = u
        return best, best_customer

    # TAU_PRIME: min {dist + nn} - max potential over settled customers.
    tau_max = 0.0
    raw_best = INF
    for u in settled:
        if u >= m:
            continue
        tau_max = max(tau_max, cust_p[u])
        nn = state.next_candidate_distance(u)
        if nn == INF:
            continue
        t = dist[u] + nn
        if t < raw_best:
            raw_best = t
            best_customer = u
    if best_customer is None:
        return INF, None
    return raw_best - tau_max, best_customer


# O(settled) scan immediately following the checkpointed residual Dijkstra.
def _stop_bound_lb(  # reprolint: disable=REP101
    state: BipartiteState,
    dist: dict[int, float],
    settled: Sequence[int],
) -> float | None:
    """Oracle-backed lower bound on the Theorem-1 reveal threshold.

    Uses :meth:`BipartiteState.next_candidate_lower_bound` instead of
    the exact ``nnDist`` peek, so no stream advances and no ALT queries
    run.  The result never exceeds the exact ``_stop_bound`` value
    (each per-customer term is bounded from below), so
    ``sp_len <= lb + eps`` certifies the exact rule would stop too --
    reveal decisions, and hence objectives, are identical.  Returns
    ``None`` when any settled customer's stream offers no cheap bound
    (the kernel path), disabling the fast path entirely.
    """
    m = state.m
    cust_p = state.customer_potential
    best = INF
    for u in settled:
        if u >= m:
            continue
        nn_lb = state.next_candidate_lower_bound(u)
        if nn_lb is None:
            return None
        if nn_lb == INF:
            continue
        t = dist[u] + nn_lb - cust_p[u]
        if t < best:
            best = t
    return best


def find_pair(
    state: BipartiteState,
    customer: int,
    rule: ThresholdRule = ThresholdRule.THEOREM1,
) -> int:
    """Match ``customer`` with one additional facility (Algorithm 2).

    Augments one unit of flow from ``customer`` to the nearest facility
    with residual capacity, possibly rewiring existing assignments along
    the augmenting path.  The returned value is the facility index the
    *net* new unit of capacity was consumed at (the endpoint of the
    augmenting path); the facility newly matched to ``customer`` may
    differ when rewiring occurred.

    Raises
    ------
    MatchingError
        When no facility with residual capacity is reachable from the
        customer, even after revealing every remaining candidate edge.
    """
    _budget_checkpoint()
    m = state.m

    use_fast_path = (
        rule is ThresholdRule.THEOREM1 and state.has_cheap_bounds
    )
    while True:
        dist, parent, settled, target, sp_len = _residual_dijkstra(  # reprolint: disable=REP112 -- SSPA core: one residual Dijkstra per augmentation; Theorem 1 bounds the count
            state, customer
        )
        if target is not None and use_fast_path:
            lb_bound = _stop_bound_lb(state, dist, settled)  # reprolint: disable=REP112 -- O(settled) bound refresh per augmentation, dominated by the Dijkstra it prunes
            if lb_bound is not None and sp_len <= lb_bound + _EPS:
                # The exact threshold is at least lb_bound, so the exact
                # rule would stop here too -- skip its nnDist peeks
                # (each a potential ALT query) entirely.
                (c_prunes,) = _PRUNE_COUNTERS.get()
                c_prunes.add()
                break
        bound, best_customer = _stop_bound(state, dist, settled, rule)  # reprolint: disable=REP112 -- O(settled) stop-bound per augmentation, dominated by the Dijkstra it prunes

        if target is not None and sp_len <= bound + _EPS:
            break
        if best_customer is None:
            if target is not None:
                # Nothing left to reveal; the found path is optimal.
                break
            raise MatchingError(
                f"customer {customer} cannot reach any facility with free "
                f"capacity"
            )
        (c_reveals,) = _REVEAL_COUNTERS.get()
        c_reveals.add()
        revealed = state.materialize_next(best_customer)
        # The cursor peeked non-inf distance, so a facility must exist.
        assert revealed is not None
        if __debug__:
            w = state.edges[best_customer][revealed]
            rc = (
                w
                - state.customer_potential[best_customer]
                + state.facility_potential[revealed]
            )
            assert rc >= -1e-6, (
                f"negative reduced cost {rc} on revealed edge "
                f"({best_customer}, {revealed})"
            )

    # ------------------------------------------------------------------
    # Flow augmentation: flip matched status along the path to `target`.
    # ------------------------------------------------------------------
    node = m + target
    path: list[int] = [node]
    while node != customer:
        node = parent[node]
        path.append(node)
    path.reverse()

    for u, v in zip(path, path[1:], strict=False):
        if u < m:
            state.match(u, v - m)
        else:
            state.unmatch(v, u - m)
    reg = metrics.active()
    reg.counter("sspa.augmentations").add()
    reg.counter("sspa.path_edges").add(len(path) - 1)

    # Potential update (Algorithm 2, line 17): settled nodes only.
    for u in settled:
        delta = sp_len - dist[u]
        if delta <= 0.0:
            continue
        if u < m:
            state.customer_potential[u] += delta
        else:
            state.facility_potential[u - m] += delta
    return target


def rebuild_rows(
    state: BipartiteState,
    rows: Sequence[int],
    rule: ThresholdRule = ThresholdRule.THEOREM1,
) -> None:
    """Match each (currently unmatched) row of ``rows`` in order.

    The shared primitive behind :func:`assign_all` and the serving
    layer's scoped re-solves: running ``find_pair`` over unmatched rows
    in ascending row order is exactly the state evolution a cold
    ``assign_all`` performs, which is what makes warm incremental
    results bit-identical to cold ones.  Budget-checkpointed between
    augmentations.
    """
    for i in rows:
        _budget_checkpoint()
        find_pair(state, i, rule)  # reprolint: disable=REP112 -- warm-start contract: each dirty row is re-assigned exactly once


def assign_all(
    network: Network,
    customer_nodes: Sequence[int],
    facility_nodes: Sequence[int],
    capacities: Sequence[int],
    *,
    pool: StreamPool | None = None,
    rule: ThresholdRule = ThresholdRule.THEOREM1,
) -> AssignmentResult:
    """Optimally assign every customer to one facility of a fixed set.

    This is the SIA-style bipartite assignment the paper uses as the final
    phase of WMA (Lines 14-15 of Algorithm 1) and as the assignment step
    of the Hilbert and BRNN baselines: a min-cost flow sending one unit
    per customer into facilities bounded by their capacities, computed by
    successive shortest-path augmentations.  The result is a *provably
    optimal* transportation plan for the given facility set.

    Raises
    ------
    MatchingError
        When capacities or connectivity make the assignment infeasible.
    """
    state = BipartiteState(
        network, customer_nodes, facility_nodes, capacities, pool=pool
    )
    rebuild_rows(state, range(state.m), rule)

    assignment: list[int] = [-1] * state.m
    for i in range(state.m):
        (j,) = state.matched[i]
        assignment[i] = j
    return AssignmentResult(
        assignment=assignment, cost=state.total_cost(), state=state
    )
