"""Bipartite assignment substrate (Sections IV-D and V of the paper).

* :mod:`repro.flow.bipartite` -- the lazily materialized bipartite graph
  ``G_b`` between customers and candidate facilities, with assignment
  bookkeeping and node potentials.
* :mod:`repro.flow.sspa` -- the Successive Shortest Path matcher:
  ``find_pair`` (Algorithm 2) with the Theorem-1 pruning threshold, and
  ``assign_all``, the SIA-style optimal assignment of every customer to a
  fixed facility set.
"""

from repro.flow.bipartite import BipartiteState
from repro.flow.mcf import FlowError, FlowNetwork, FlowResult, min_cost_flow
from repro.flow.sspa import AssignmentResult, ThresholdRule, assign_all, find_pair

__all__ = [
    "BipartiteState",
    "AssignmentResult",
    "ThresholdRule",
    "assign_all",
    "find_pair",
    "FlowNetwork",
    "FlowResult",
    "FlowError",
    "min_cost_flow",
]
