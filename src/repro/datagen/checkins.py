"""Occupancy-driven customer synthesis (the Yelp pipeline, Section VII-F.1a).

The paper derives a customer distribution from venue occupancies using
the Voronoi technique of Yilmaz et al. [13]: space is divided into
Voronoi cells around venues, each cell into triangles towards its
neighboring cells, and the customers of the central venue are spread over
the triangles by

.. math::

    m_\\Delta = O_i \\cdot \\Big( \\omega \\frac{O_j}{\\sum_j O_j}
               + (1-\\omega) \\frac{Area_\\Delta}{Area_{\\cup\\Delta}} \\Big)

with ``omega = 0.5``.  The paper adapts the construction "to road
networks via network distance calculations"; so do we:

* Voronoi cells become *network* Voronoi cells (nearest venue by
  shortest-path distance);
* the triangle towards neighbor cell ``j`` becomes the set of cell-``i``
  nodes whose secondary attraction is cell ``j`` (approximated by
  boundary adjacency), and the Euclidean triangle area becomes the node
  count of that sector.

Since the Yelp dataset itself is unavailable offline, venue occupancies
are synthesized with a heavy-tailed (log-normal) model --
:func:`synth_occupancies` -- which matches the skew of real check-in
counts; the rest of the pipeline is the paper's formula verbatim.
"""

from __future__ import annotations

import numpy as np

from repro.network.graph import Network
from repro.network.voronoi import voronoi_cells

DEFAULT_OMEGA = 0.5


def synth_occupancies(
    l: int,
    rng: np.random.Generator,
    *,
    mean: float = 25.0,
    sigma: float = 0.9,
) -> np.ndarray:
    """Heavy-tailed synthetic venue occupancies (check-in counts).

    Log-normal with the given multiplicative spread, scaled to the target
    mean -- a standard stand-in for check-in count distributions, which
    are strongly right-skewed.
    """
    raw = rng.lognormal(mean=0.0, sigma=sigma, size=l)
    return raw * (mean / raw.mean())


def occupancy_customer_distribution(
    network: Network,
    venue_nodes: list[int],
    occupancies: np.ndarray,
    *,
    omega: float = DEFAULT_OMEGA,
) -> np.ndarray:
    """Per-node customer weights from venue occupancies.

    Implements the network adaptation of the ``m_Delta`` formula: for
    each venue ``i``, its occupancy mass ``O_i`` is split across the
    sectors of its network Voronoi cell; the sector towards neighboring
    cell ``j`` receives weight ``omega * O_j / sum_neighbors O`` plus
    ``(1 - omega) * |sector| / |cell|``, and the sector's mass is spread
    uniformly over its nodes.

    Returns an array of length ``n_nodes`` summing (approximately) to
    ``sum(occupancies)``; unreachable nodes get zero weight.
    """
    occupancies = np.asarray(occupancies, dtype=np.float64)
    if len(venue_nodes) != len(occupancies):
        raise ValueError("venue_nodes and occupancies must align")
    if not (0.0 <= omega <= 1.0):
        raise ValueError(f"omega must be in [0, 1], got {omega}")

    partition = voronoi_cells(network, venue_nodes)
    adjacency = partition.adjacency(network)
    weights = np.zeros(network.n_nodes)

    # Sector membership: a cell-i node bordering cell j (sharing an edge
    # with a node labelled j) belongs to the (i -> j) sector; interior
    # nodes form a residual sector kept with the central venue.
    sector_nodes: dict[tuple[int, int], list[int]] = {}
    interior: dict[int, list[int]] = {}
    label = partition.label
    for u in range(network.n_nodes):
        cell = int(label[u])
        if cell < 0:
            continue
        neighbor_cells = {
            int(label[v])
            for v, _ in network.neighbors(u)
            if label[v] >= 0 and int(label[v]) != cell
        }
        if neighbor_cells:
            # sorted: sector_nodes key insertion order must be stable
            for j in sorted(neighbor_cells):
                sector_nodes.setdefault((cell, j), []).append(u)
        else:
            interior.setdefault(cell, []).append(u)

    for i, occupancy in enumerate(occupancies):
        neighbors = sorted(adjacency.get(i, ()))
        cell_size = int((label == i).sum())
        if cell_size == 0:
            continue
        if not neighbors:
            # Isolated cell: all mass stays inside.
            nodes = np.flatnonzero(label == i)
            weights[nodes] += occupancy / len(nodes)
            continue

        occ_sum = sum(occupancies[j] for j in neighbors)
        shares: dict[int, float] = {}
        for j in neighbors:
            sector = sector_nodes.get((i, j), [])
            area_share = len(sector) / cell_size
            occ_share = occupancies[j] / occ_sum if occ_sum > 0 else 0.0
            shares[j] = omega * occ_share + (1.0 - omega) * area_share
        total_share = sum(shares.values())

        # Interior nodes absorb whatever share the sectors do not claim;
        # with the paper's formula the shares need not sum to one.
        interior_nodes = interior.get(i, [])
        interior_share = max(0.0, 1.0 - total_share)
        norm = total_share + (interior_share if interior_nodes else 0.0)
        if norm <= 0:
            nodes = np.flatnonzero(label == i)
            weights[nodes] += occupancy / len(nodes)
            continue

        for j, share in shares.items():
            sector = sector_nodes.get((i, j), [])
            if not sector or share <= 0:
                continue
            mass = occupancy * share / norm
            weights[sector] += mass / len(sector)
        if interior_nodes and interior_share > 0:
            mass = occupancy * interior_share / norm
            weights[interior_nodes] += mass / len(interior_nodes)

    return weights
