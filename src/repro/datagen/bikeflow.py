"""Bike-flow divergence demand synthesis (Section VII-F.2).

The paper derives dockless-bike docking demand from bike traffic
counters: an hourly flow vector field ``g`` over streets, whose
*divergence* at a node counts bikes parked there during the hour; the
*variance* of the divergence across the day's hours is the docking-demand
proxy, normalized into a probability distribution over nodes.

Real counter data is unavailable offline, so :func:`simulate_hourly_flows`
synthesizes a plausible commute field: flow along each street is the
projection of a time-varying commute direction (towards the city center
in the morning, outwards in the evening, plus noise) onto the street
direction, attenuated with distance from the center.  The rest of the
pipeline -- divergence per hour, variance across hours, normalization --
follows the paper exactly.
"""

from __future__ import annotations

import numpy as np

from repro.network.graph import Network


def simulate_hourly_flows(
    network: Network,
    rng: np.random.Generator,
    *,
    hours: int = 24,
    peak_magnitude: float = 100.0,
    noise: float = 0.15,
) -> np.ndarray:
    """Synthetic signed bike flow per edge per hour.

    Returns an array of shape ``(hours, n_edges)``; entry ``[h, e]`` is
    the signed flow along input edge ``e`` during hour ``h``, positive in
    the edge's ``u -> v`` direction.

    The commute profile peaks inbound around 8:00 and outbound around
    17:00 (a double sine), with multiplicative per-edge noise.
    """
    coords = network.coords
    center = coords.mean(axis=0)
    edges = list(network.edges())
    n_edges = len(edges)

    # Unit vector of each edge and the inbound ("towards center") unit
    # direction at its midpoint.
    edge_vec = np.zeros((n_edges, 2))
    inbound = np.zeros((n_edges, 2))
    attenuation = np.zeros(n_edges)
    extent = float(np.abs(coords - center).max()) or 1.0
    for e, (u, v, _w) in enumerate(edges):
        delta = coords[v] - coords[u]
        norm = float(np.hypot(*delta)) or 1.0
        edge_vec[e] = delta / norm
        mid = (coords[u] + coords[v]) / 2.0
        to_center = center - mid
        dist = float(np.hypot(*to_center))
        inbound[e] = to_center / dist if dist > 0 else 0.0
        attenuation[e] = np.exp(-dist / extent)

    alignment = (edge_vec * inbound).sum(axis=1) * attenuation

    flows = np.zeros((hours, n_edges))
    for h in range(hours):
        morning = np.exp(-((h - 8.0) ** 2) / 8.0)
        evening = np.exp(-((h - 17.0) ** 2) / 8.0)
        profile = peak_magnitude * (morning - evening)
        base = profile * alignment
        jitter = rng.normal(1.0, noise, size=n_edges)
        flows[h] = base * jitter + rng.normal(
            0.0, noise * peak_magnitude / 4.0, size=n_edges
        )
    return flows


def node_divergence(network: Network, edge_flows: np.ndarray) -> np.ndarray:
    """Divergence of an edge flow field at each node.

    ``edge_flows`` has one signed value per input edge (positive in the
    ``u -> v`` direction).  The divergence at a node is inflow minus
    outflow -- the number of bikes accumulating there (the paper's
    ``nabla . g``, discretized onto the network).
    """
    edge_flows = np.asarray(edge_flows, dtype=np.float64)
    div = np.zeros(network.n_nodes)
    for e, (u, v, _w) in enumerate(network.edges()):
        flow = edge_flows[e]
        div[v] += flow
        div[u] -= flow
    return div


def bike_demand_distribution(
    network: Network,
    hourly_flows: np.ndarray,
) -> np.ndarray:
    """Docking-demand distribution: variance of divergence across hours.

    Returns per-node probabilities (summing to one).  Nodes whose parked
    count never varies get zero probability, matching the paper's use of
    variance "as a proxy for bike docking demand".
    """
    hourly_flows = np.asarray(hourly_flows, dtype=np.float64)
    divergences = np.stack(
        [node_divergence(network, hourly_flows[h]) for h in range(len(hourly_flows))]
    )
    variance = divergences.var(axis=0)
    total = variance.sum()
    if total <= 0:
        raise ValueError("flow field has zero variance everywhere")
    return variance / total
