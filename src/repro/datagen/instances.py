"""One-call builders for the paper's experiment instances.

Each builder assembles network + customers + candidates + capacities +
budget into a validated :class:`~repro.core.instance.MCFSInstance`,
following the parameterizations of Section VII:

* customers at a fraction of the nodes, ``k = 0.1 m`` by default;
* candidate facilities at every node (``F_p = V``) or a random subset;
* uniform capacity chosen from an occupancy target, or nonuniform models.

Feasibility on disconnected random graphs
-----------------------------------------
A sparse random geometric graph has many components; a budget ``k`` that
looks generous globally can be infeasible because each customer-bearing
component needs its own facility (Theorem 3).  The paper's algorithms
assume a feasible input.  The builders therefore raise the budget to the
instance's per-component minimum when needed (``adjust_k=True``, the
default) and record the adjustment in the instance name, so benchmark
rows stay comparable and honest.
"""

from __future__ import annotations

import numpy as np

from repro.core.instance import MCFSInstance
from repro.datagen.capacities import uniform_capacities, uniform_random_capacities
from repro.datagen.customers import uniform_customers
from repro.datagen.synthetic import clustered_network, uniform_network
from repro.network.graph import Network


def _pick_facilities(
    network: Network, l: int | None, rng: np.random.Generator
) -> list[int]:
    """Candidate facility nodes: all nodes, or a random distinct subset."""
    n = network.n_nodes
    if l is None or l >= n:
        return list(range(n))
    return sorted(int(v) for v in rng.choice(n, size=l, replace=False))


def _augment_candidates(
    network: Network,
    customers: list[int],
    facilities: list[int],
    min_capacity: int,
) -> tuple[list[int], bool]:
    """Ensure every customer-bearing component hosts enough candidates.

    A random candidate subset can leave a small component with customers
    but no (or too little) candidate capacity, making *every* algorithm
    infeasible.  This repair adds the fewest extra candidate nodes needed,
    preferring customer nodes (a facility can always be opened at a
    customer location in the paper's setting ``F_p <= V``).  Returns the
    possibly-extended candidate list and whether a repair happened.
    """
    from repro.network.components import component_labels

    labels = component_labels(network)
    fac_set = set(facilities)
    needed: dict[int, int] = {}
    for node in customers:
        needed[int(labels[node])] = needed.get(int(labels[node]), 0) + 1
    present: dict[int, int] = {}
    for node in facilities:
        present[int(labels[node])] = present.get(int(labels[node]), 0) + 1

    repaired = False
    for comp, customer_count in needed.items():
        have = present.get(comp, 0)
        want = -(-customer_count // max(min_capacity, 1))  # ceil division
        if have >= want:
            continue
        pool = [v for v in customers if int(labels[v]) == comp] + [
            int(v) for v in np.flatnonzero(labels == comp)
        ]
        for node in pool:
            if have >= want:
                break
            if node not in fac_set:
                fac_set.add(node)
                have += 1
                repaired = True
    return sorted(fac_set), repaired


def _finalize(
    network: Network,
    customers: list[int],
    facility_nodes: list[int],
    capacities: list[int],
    k: int,
    name: str,
    adjust_k: bool,
) -> MCFSInstance:
    """Build the instance, raising ``k`` to the feasibility floor if asked."""
    instance = MCFSInstance(
        network=network,
        customers=tuple(customers),
        facility_nodes=tuple(facility_nodes),
        capacities=tuple(capacities),
        k=min(max(k, 1), len(facility_nodes)),
        name=name,
    )
    if not adjust_k:
        return instance
    needed = instance.component_structure().minimum_budget(instance.capacities)
    if needed > instance.k and needed <= instance.l:
        instance = MCFSInstance(
            network=network,
            customers=tuple(customers),
            facility_nodes=tuple(facility_nodes),
            capacities=tuple(capacities),
            k=needed,
            name=f"{name}|k-adjusted",
        )
    return instance


def uniform_instance(
    n: int,
    *,
    alpha: float = 2.0,
    customer_frac: float = 0.1,
    facility_frac: float = 1.0,
    capacity: int | tuple[int, int] = 20,
    k_frac_of_m: float = 0.1,
    seed: int = 0,
    adjust_k: bool = True,
) -> MCFSInstance:
    """A Figure-6-style instance on a uniform random geometric network.

    Parameters
    ----------
    n:
        Network size in nodes.
    alpha:
        Density parameter (Section VII-B calibration: measured average
        degree ~ alpha on uniform data).
    customer_frac:
        Fraction of nodes hosting a customer (paper: 10 % in Fig. 6a).
    facility_frac:
        Fraction of nodes that are candidates (paper: ``F_p = V``).
    capacity:
        Uniform capacity, or an inclusive ``(low, high)`` range for the
        nonuniform Figure 6d setting.
    k_frac_of_m:
        Budget as a fraction of the customer count (paper: ``k = 0.1 m``).
    """
    rng = np.random.default_rng(seed)
    network = uniform_network(n, alpha, seed=seed)
    m = max(1, int(round(customer_frac * n)))
    customers = uniform_customers(network, m, rng, distinct=m <= n)
    l = None if facility_frac >= 1.0 else max(1, int(round(facility_frac * n)))
    facilities = _pick_facilities(network, l, rng)
    min_cap = capacity[0] if isinstance(capacity, tuple) else capacity
    facilities, repaired = _augment_candidates(
        network, customers, facilities, min_cap
    )
    if isinstance(capacity, tuple):
        caps = uniform_random_capacities(
            len(facilities), capacity[0], capacity[1], rng
        )
        cap_label = f"c{capacity[0]}-{capacity[1]}"
    else:
        caps = uniform_capacities(len(facilities), capacity)
        cap_label = f"c{capacity}"
    k = max(1, int(round(k_frac_of_m * m)))
    name = f"uniform-n{n}-a{alpha}-{cap_label}"
    if repaired:
        name += "|candidates-augmented"
    return _finalize(network, customers, facilities, caps, k, name, adjust_k)


def clustered_instance(
    n: int,
    *,
    n_clusters: int = 20,
    alpha: float = 1.5,
    customer_frac: float = 0.1,
    facility_frac: float = 1.0,
    capacity: int | tuple[int, int] = 10,
    k_frac_of_m: float = 0.1,
    m: int | None = None,
    k: int | None = None,
    seed: int = 0,
    adjust_k: bool = True,
) -> MCFSInstance:
    """A Figure-7/8/9-style instance on a clustered geometric network.

    ``m`` and ``k`` may be given explicitly (the Figure 8 sweeps);
    otherwise they derive from ``customer_frac`` and ``k_frac_of_m``.
    When ``m`` exceeds the node count, multiple customers share nodes
    (the Figure 8c setting).
    """
    rng = np.random.default_rng(seed)
    network = clustered_network(n, n_clusters, alpha, seed=seed)
    n_total = network.n_nodes
    if m is None:
        m = max(1, int(round(customer_frac * n_total)))
    customers = uniform_customers(network, m, rng, distinct=m <= n_total)
    l = (
        None
        if facility_frac >= 1.0
        else max(1, int(round(facility_frac * n_total)))
    )
    facilities = _pick_facilities(network, l, rng)
    min_cap = capacity[0] if isinstance(capacity, tuple) else capacity
    facilities, repaired = _augment_candidates(
        network, customers, facilities, min_cap
    )
    if isinstance(capacity, tuple):
        caps = uniform_random_capacities(
            len(facilities), capacity[0], capacity[1], rng
        )
        cap_label = f"c{capacity[0]}-{capacity[1]}"
    else:
        caps = uniform_capacities(len(facilities), capacity)
        cap_label = f"c{capacity}"
    if k is None:
        k = max(1, int(round(k_frac_of_m * m)))
    name = f"clustered-n{n}-g{n_clusters}-a{alpha}-{cap_label}"
    if repaired:
        name += "|candidates-augmented"
    return _finalize(network, customers, facilities, caps, k, name, adjust_k)


def city_instance(
    network: Network,
    *,
    m: int,
    k: int,
    capacity: int | list[int] = 20,
    l: int | None = None,
    seed: int = 0,
    customer_nodes: list[int] | None = None,
    facility_nodes: list[int] | None = None,
    adjust_k: bool = True,
    name: str = "city",
) -> MCFSInstance:
    """A Table-IV / Section-VII-F style instance on an urban network.

    Parameters
    ----------
    network:
        An urban proxy network (see :mod:`repro.datagen.urban`).
    m, k:
        Customer count and budget (Table IV: m=512, k=51 at full scale).
    capacity:
        Uniform capacity or an explicit per-candidate list.
    l:
        Candidate count (``None`` = every node, the Table IV setting);
        ignored when ``facility_nodes`` is given.
    customer_nodes:
        Explicit customer placement (used by the check-in and bike-flow
        pipelines); random uniform placement otherwise.
    facility_nodes:
        Explicit candidate placement (e.g. sampled venue locations);
        a random distinct subset of size ``l`` otherwise.
    """
    rng = np.random.default_rng(seed)
    if customer_nodes is None:
        customer_nodes = uniform_customers(
            network, m, rng, distinct=m <= network.n_nodes
        )
    if facility_nodes is not None:
        facilities = [int(f) for f in facility_nodes]
    else:
        facilities = _pick_facilities(network, l, rng)
    if isinstance(capacity, list):
        if len(capacity) != len(facilities):
            raise ValueError(
                f"capacity list has {len(capacity)} entries for "
                f"{len(facilities)} candidates"
            )
        caps = [int(c) for c in capacity]
    else:
        caps = uniform_capacities(len(facilities), capacity)
    return _finalize(
        network, list(customer_nodes), facilities, caps, k, name, adjust_k
    )
