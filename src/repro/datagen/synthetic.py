"""Synthetic network generators (Section VII-B of the paper).

Points are placed on a ``side x side`` square (the paper uses
``10^3 x 10^3``) under a uniform or clustered distribution, and pairs
closer than a density-controlled cutoff radius are connected with edges
weighted by Euclidean distance.  In the clustered case, cluster centers
are additionally connected to each other in a clique.

Density calibration
-------------------
The paper connects "pairs of points with an edge if they are closer than
``alpha * 1/sqrt(n)``" on its square; we use the same cutoff scaled by
the square side,

.. math:: r = \\alpha \\, side / \\sqrt{n},

under which a uniform point process has expected degree
``n * pi * r^2 / side^2 = pi * alpha^2``.  Note the paper's aside that
``alpha = 2`` "corresponds to an average of two adjacent edges per node"
is inconsistent with its own formula (which gives ~12.6); we follow the
formula, whose percolation behaviour matches the paper's narrative --
``alpha = 2`` yields a well-connected graph while ``alpha = 1.2``
(expected degree ~4.5, right at the 2-D RGG percolation threshold) yields
the "sparser and less connected network ... more similar to real road
networks" of Figure 6c, with many components.  On clustered data the same
radius is used and, as the paper notes, "alpha no longer corresponds to
the average number of adjacent edges per node".
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.grid_index import GridIndex
from repro.network.graph import Network

DEFAULT_SIDE = 1000.0
_MIN_WEIGHT = 1e-9


def connection_radius(n: int, alpha: float, side: float = DEFAULT_SIDE) -> float:
    """The paper's cutoff radius ``alpha * side / sqrt(n)``.

    Expected average degree on uniform data is ``pi * alpha^2`` (see the
    module docstring for the calibration discussion).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    return alpha * side / math.sqrt(n)


def uniform_points(
    n: int, rng: np.random.Generator, side: float = DEFAULT_SIDE
) -> np.ndarray:
    """``n`` points uniformly at random on the square."""
    return rng.random((n, 2)) * side


def clustered_points(
    n: int,
    n_clusters: int,
    rng: np.random.Generator,
    side: float = DEFAULT_SIDE,
) -> tuple[np.ndarray, np.ndarray]:
    """Clustered points per the paper's recipe.

    Cluster centers are uniform at random; each cluster receives an equal
    number of points drawn from a Gaussian centered on it with variance
    ``sigma^2 = 1 / n_clusters`` in *normalized* (unit-square) units --
    i.e. standard deviation ``side / sqrt(n_clusters)`` on the actual
    square, which the paper tunes "so that clusters cover the plane".
    Samples are clipped to the square.

    Returns ``(points, centers)``.
    """
    if n_clusters <= 0:
        raise ValueError(f"n_clusters must be positive, got {n_clusters}")
    if n < n_clusters:
        raise ValueError(f"need at least one point per cluster ({n} < {n_clusters})")
    centers = rng.random((n_clusters, 2)) * side
    sigma = side / math.sqrt(n_clusters)
    per_cluster = n // n_clusters
    counts = [per_cluster] * n_clusters
    for extra in range(n - per_cluster * n_clusters):
        counts[extra] += 1
    chunks = [
        rng.normal(loc=centers[c], scale=sigma, size=(counts[c], 2))
        for c in range(n_clusters)
    ]
    points = np.clip(np.vstack(chunks), 0.0, side)
    return points, centers


def geometric_network(
    points: np.ndarray,
    radius: float,
    *,
    extra_edges: list[tuple[int, int]] | None = None,
) -> Network:
    """Connect all point pairs within ``radius``; weights are Euclidean.

    ``extra_edges`` adds explicit index pairs (e.g. the cluster-center
    clique) on top of the radius graph, also weighted by Euclidean
    distance.  Coincident points get a tiny positive weight, since the
    graph model requires strictly positive edge lengths.
    """
    points = np.asarray(points, dtype=np.float64)
    index = GridIndex(points, cell_size=max(radius, 1e-9))
    edges: list[tuple[int, int, float]] = []
    seen: set[tuple[int, int]] = set()
    for i, j, dist in index.pairs_within(radius):
        seen.add((i, j))
        edges.append((i, j, max(dist, _MIN_WEIGHT)))
    if extra_edges:
        for i, j in extra_edges:
            if i == j:
                continue
            key = (min(i, j), max(i, j))
            if key in seen:
                continue
            seen.add(key)
            dist = float(np.hypot(*(points[i] - points[j])))
            edges.append((key[0], key[1], max(dist, _MIN_WEIGHT)))
    return Network(len(points), edges, coords=points)


def uniform_network(
    n: int,
    alpha: float,
    seed: int = 0,
    side: float = DEFAULT_SIDE,
) -> Network:
    """Uniform random geometric network (Figures 6 and 5d)."""
    rng = np.random.default_rng(seed)
    points = uniform_points(n, rng, side)
    return geometric_network(points, connection_radius(n, alpha, side))


def clustered_network(
    n: int,
    n_clusters: int,
    alpha: float,
    seed: int = 0,
    side: float = DEFAULT_SIDE,
) -> Network:
    """Clustered random geometric network (Figures 5a-c, 7, 8, 9).

    The ``n_clusters`` cluster centers are added as nodes (appended after
    the ``n`` cluster points) and connected to each other in a clique, as
    described in Section VII-B.
    """
    rng = np.random.default_rng(seed)
    points, centers = clustered_points(n, n_clusters, rng, side)
    all_points = np.vstack([points, centers])
    clique = [
        (n + a, n + b)
        for a in range(n_clusters)
        for b in range(a + 1, n_clusters)
    ]
    radius = connection_radius(len(all_points), alpha, side)
    return geometric_network(all_points, radius, extra_edges=clique)
