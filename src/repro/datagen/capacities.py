"""Capacity models for candidate facilities.

Three models cover the paper's settings:

* uniform capacities ``c`` (Sections VII-C/E);
* uniform-random integer capacities in a range, e.g. 1..10 as in
  Figure 6d;
* operational-hours capacities for the coworking use case of Section
  VII-F ("their daily operational hours define their nonuniform
  capacities"; the paper reports an average of 9 hours in both cities).
"""

from __future__ import annotations

import numpy as np


def uniform_capacities(l: int, capacity: int) -> list[int]:
    """All-equal capacities."""
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    return [int(capacity)] * l


def uniform_random_capacities(
    l: int, low: int, high: int, rng: np.random.Generator
) -> list[int]:
    """Integer capacities drawn uniformly from ``low..high`` inclusive.

    Figure 6d uses "a uniformly random capacity in the range 1 to 10".
    """
    if not (1 <= low <= high):
        raise ValueError(f"need 1 <= low <= high, got {low}..{high}")
    return [int(c) for c in rng.integers(low, high + 1, size=l)]


def operational_hours_capacities(
    l: int,
    rng: np.random.Generator,
    *,
    mean_hours: float = 9.0,
    min_hours: int = 1,
    max_hours: int = 24,
    scale_per_hour: int = 1,
) -> list[int]:
    """Capacities derived from synthetic venue operational hours.

    Hours are drawn from a clipped normal around ``mean_hours`` (spread
    3h), mimicking cafe/restaurant opening-hour data; capacity is
    ``hours * scale_per_hour`` customers (the paper assumes "uniform
    utilization during these working hours").
    """
    hours = rng.normal(mean_hours, 3.0, size=l)
    hours = np.clip(np.round(hours), min_hours, max_hours).astype(int)
    return [int(h) * int(scale_per_hour) for h in hours]
