"""Data generators reproducing the paper's synthetic and real-data setups.

* :mod:`repro.datagen.synthetic` -- uniform and clustered random
  geometric networks on a 1000x1000 square (Section VII-B).
* :mod:`repro.datagen.urban` -- parametric grid / organic city networks
  standing in for the OpenStreetMap road networks of Table III.
* :mod:`repro.datagen.customers` -- customer placement models.
* :mod:`repro.datagen.capacities` -- capacity models, including the
  operational-hours proxy of Section VII-F.
* :mod:`repro.datagen.checkins` -- occupancy-driven customer synthesis
  via network Voronoi cells (the Yelp pipeline of Section VII-F.1).
* :mod:`repro.datagen.bikeflow` -- flow-divergence bike-demand synthesis
  (Section VII-F.2).
* :mod:`repro.datagen.instances` -- one-call builders assembling full
  :class:`~repro.core.instance.MCFSInstance` objects for each paper
  experiment configuration.
"""

from repro.datagen.bikeflow import bike_demand_distribution, simulate_hourly_flows
from repro.datagen.capacities import (
    operational_hours_capacities,
    uniform_capacities,
    uniform_random_capacities,
)
from repro.datagen.checkins import occupancy_customer_distribution, synth_occupancies
from repro.datagen.customers import (
    clustered_customers,
    district_population_customers,
    uniform_customers,
    weighted_customers,
)
from repro.datagen.instances import city_instance, clustered_instance, uniform_instance
from repro.datagen.synthetic import (
    clustered_network,
    clustered_points,
    connection_radius,
    geometric_network,
    uniform_network,
    uniform_points,
)
from repro.datagen.urban import city_catalog, grid_city, organic_city, radial_city
from repro.datagen.workloads import (
    WorkloadEvent,
    diurnal_rate,
    generate_workload,
    replay,
)

__all__ = [
    "uniform_points",
    "clustered_points",
    "connection_radius",
    "geometric_network",
    "uniform_network",
    "clustered_network",
    "grid_city",
    "radial_city",
    "organic_city",
    "city_catalog",
    "uniform_customers",
    "clustered_customers",
    "weighted_customers",
    "district_population_customers",
    "uniform_capacities",
    "uniform_random_capacities",
    "operational_hours_capacities",
    "synth_occupancies",
    "occupancy_customer_distribution",
    "simulate_hourly_flows",
    "bike_demand_distribution",
    "uniform_instance",
    "clustered_instance",
    "city_instance",
    "WorkloadEvent",
    "diurnal_rate",
    "generate_workload",
    "replay",
]
