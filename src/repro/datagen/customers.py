"""Customer placement models.

The paper places customers uniformly at random on synthetic networks
(Section VII-C), proportionally to district populations in Copenhagen
(Section VII-F.1b), and according to derived demand distributions in the
check-in and bike use cases (see :mod:`repro.datagen.checkins` and
:mod:`repro.datagen.bikeflow`).  This module provides the common
samplers; the derived-distribution pipelines feed their weights into
:func:`weighted_customers`.
"""

from __future__ import annotations

import numpy as np

from repro.network.graph import Network


def uniform_customers(
    network: Network,
    m: int,
    rng: np.random.Generator,
    *,
    distinct: bool = True,
) -> list[int]:
    """``m`` customers on nodes chosen uniformly at random.

    ``distinct=True`` (the paper's default setup) picks distinct nodes;
    ``distinct=False`` allows multiple customers per node, as in the
    Figure 8c scale-up experiment.
    """
    n = network.n_nodes
    if distinct and m > n:
        raise ValueError(f"cannot place {m} distinct customers on {n} nodes")
    chosen = rng.choice(n, size=m, replace=not distinct)
    return [int(v) for v in chosen]


def weighted_customers(
    network: Network,
    m: int,
    weights: np.ndarray,
    rng: np.random.Generator,
) -> list[int]:
    """``m`` customers sampled per a node-weight distribution.

    Weights are clipped at zero and normalized; nodes may receive several
    customers.  Raises when all weights vanish.
    """
    w = np.clip(np.asarray(weights, dtype=np.float64), 0.0, None)
    total = w.sum()
    if total <= 0:
        raise ValueError("all customer weights are zero")
    probs = w / total
    chosen = rng.choice(network.n_nodes, size=m, replace=True, p=probs)
    return [int(v) for v in chosen]


def clustered_customers(
    network: Network,
    m: int,
    n_hotspots: int,
    rng: np.random.Generator,
    *,
    concentration: float = 0.15,
) -> list[int]:
    """Customers concentrated around random hotspot nodes.

    Each node's weight decays as a Gaussian of its Euclidean distance to
    the nearest hotspot with scale ``concentration * extent``.  Requires
    coordinates.
    """
    coords = network.coords
    hotspots = coords[rng.choice(network.n_nodes, size=n_hotspots, replace=False)]
    extent = float(coords.max(axis=0).max() - coords.min(axis=0).min()) or 1.0
    scale = concentration * extent
    d2 = np.min(
        ((coords[:, None, :] - hotspots[None, :, :]) ** 2).sum(axis=2), axis=1
    )
    weights = np.exp(-d2 / (2.0 * scale * scale))
    return weighted_customers(network, m, weights, rng)


def district_population_customers(
    network: Network,
    m: int,
    rng: np.random.Generator,
    *,
    districts: int = 10,
    skew: float = 1.0,
) -> list[int]:
    """Customers proportional to synthetic district populations.

    Mirrors the Copenhagen setup of Section VII-F.1b ("a customer
    distribution proportional to that of district populations"): the
    bounding box is cut into a ``districts x districts`` raster, each
    district draws a population weight from a Zipf-like distribution
    with exponent ``skew``, and customers are sampled accordingly.
    """
    coords = network.coords
    lo = coords.min(axis=0)
    span = coords.max(axis=0) - lo
    span[span == 0.0] = 1.0
    cell = np.floor((coords - lo) / span * (districts - 1e-9)).astype(int)
    district_id = cell[:, 0] * districts + cell[:, 1]

    ranks = rng.permutation(districts * districts) + 1
    district_weight = 1.0 / np.power(ranks.astype(float), skew)
    node_weights = district_weight[district_id]
    return weighted_customers(network, m, node_weights, rng)
