"""Parametric urban road-network generators.

The paper evaluates on four OpenStreetMap road networks (Table III:
Aalborg, Riga, Copenhagen, Las Vegas) whose raw data is not available in
this offline reproduction.  These generators produce networks with the
same *structural signature*:

* average degree around 2.2-2.4 and short edges (tens of meters), as in
  Table III;
* a regular grid topology for the Las-Vegas-like city ("Las Vegas has a
  regular grid-like road network structure, rendering clustering
  approaches more effective", Section VII-E);
* irregular organic topology for the European-like cities.

All coordinates are in meters, so objectives from these networks are
directly comparable in spirit to the paper's meter-denominated tables.
"""

from __future__ import annotations

import math

import numpy as np

from repro.network.graph import Network

_MIN_WEIGHT = 1e-6


def grid_city(
    rows: int,
    cols: int,
    *,
    spacing: float = 100.0,
    jitter: float = 0.08,
    drop_rate: float = 0.12,
    seed: int = 0,
) -> Network:
    """A perturbed Manhattan grid -- the Las-Vegas-like proxy.

    Parameters
    ----------
    rows, cols:
        Grid dimensions; the network has ``rows * cols`` nodes.
    spacing:
        Block edge length in meters (Table III reports ~50 m average
        edges for Las Vegas at full scale; our scaled-down proxies use
        a coarser default).
    jitter:
        Positional noise as a fraction of ``spacing``.
    drop_rate:
        Fraction of grid edges removed at random, emulating irregular
        blocks; the default keeps the average degree near Table III's
        2.4 (a perfect grid has ~3.9 directed-degree/2 boundary effects
        aside, so real cities drop many segments).
    """
    rng = np.random.default_rng(seed)
    n = rows * cols
    coords = np.empty((n, 2))
    for r in range(rows):
        for c in range(cols):
            coords[r * cols + c] = (
                c * spacing + rng.normal(0.0, jitter * spacing),
                r * spacing + rng.normal(0.0, jitter * spacing),
            )

    edges: list[tuple[int, int, float]] = []
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                edges.append((u, u + 1, 0.0))
            if r + 1 < rows:
                edges.append((u, u + cols, 0.0))
    keep = rng.random(len(edges)) >= drop_rate
    kept = [
        (u, v, max(float(np.hypot(*(coords[u] - coords[v]))), _MIN_WEIGHT))
        for (u, v, _), flag in zip(edges, keep, strict=True)
        if flag
    ]
    return Network(n, kept, coords=coords)


def radial_city(
    rings: int,
    spokes: int,
    *,
    ring_spacing: float = 250.0,
    jitter: float = 0.15,
    drop_rate: float = 0.08,
    hub_degree: int = 6,
    seed: int = 0,
) -> Network:
    """Concentric rings plus radial spokes -- a Copenhagen-like core.

    Node 0 is the center; ring ``r`` (1-based) holds ``spokes`` nodes at
    radius ``r * ring_spacing``.  Edges run along rings and along spokes,
    with jitter and random drops for irregularity.  The center connects
    to at most ``hub_degree`` evenly spaced spokes -- real intersections
    have bounded degree, and an all-spokes hub would dominate any
    flow-divergence statistic.
    """
    rng = np.random.default_rng(seed)
    coords = [(0.0, 0.0)]
    for r in range(1, rings + 1):
        radius = r * ring_spacing
        for s in range(spokes):
            angle = 2 * math.pi * s / spokes + rng.normal(0.0, jitter / max(r, 1))
            rr = radius * (1.0 + rng.normal(0.0, jitter / 2))
            coords.append((rr * math.cos(angle), rr * math.sin(angle)))
    coords_arr = np.array(coords)

    def node(r: int, s: int) -> int:
        return 1 + (r - 1) * spokes + (s % spokes)

    edges: list[tuple[int, int]] = []
    hub_step = max(1, spokes // max(1, hub_degree))
    for s in range(spokes):
        if s % hub_step == 0:
            edges.append((0, node(1, s)))
        for r in range(1, rings):
            edges.append((node(r, s), node(r + 1, s)))
    for r in range(1, rings + 1):
        for s in range(spokes):
            edges.append((node(r, s), node(r, s + 1)))

    keep = rng.random(len(edges)) >= drop_rate
    kept = [
        (
            u,
            v,
            max(float(np.hypot(*(coords_arr[u] - coords_arr[v]))), _MIN_WEIGHT),
        )
        for (u, v), flag in zip(edges, keep, strict=True)
        if flag
    ]
    return Network(len(coords), kept, coords=coords_arr)


def organic_city(
    n: int,
    *,
    side: float = 5000.0,
    neighbor_links: int = 2,
    connect: bool = True,
    seed: int = 0,
) -> Network:
    """Irregular organically-grown street pattern (Aalborg/Riga-like).

    Random node positions, each connected to its ``neighbor_links``
    nearest neighbors -- a standard low-degree proximity model whose
    average degree lands near Table III's 2.2 with the default setting.
    With ``connect=True`` (default) the components of the proximity graph
    are then stitched together through their mutually nearest node pairs,
    since real road networks are connected.
    """
    rng = np.random.default_rng(seed)
    coords = rng.random((n, 2)) * side

    from repro.geometry.grid_index import GridIndex

    cell = side / max(1.0, math.sqrt(n))
    index = GridIndex(coords, cell_size=max(cell, 1e-6))
    edges: set[tuple[int, int]] = set()
    for u in range(n):
        # Expand the radius until enough neighbors are found.
        radius = cell
        hits: list[int] = []
        while len(hits) <= neighbor_links and radius < 8 * side:
            hits = [
                v
                for v in index.within_radius(coords[u, 0], coords[u, 1], radius)
                if v != u
            ]
            radius *= 2.0
        hits.sort(key=lambda v: float(np.hypot(*(coords[v] - coords[u]))))
        for v in hits[:neighbor_links]:
            edges.add((min(u, v), max(u, v)))

    if connect:
        edges |= _stitch_components(coords, edges)

    weighted = [
        (u, v, max(float(np.hypot(*(coords[u] - coords[v]))), _MIN_WEIGHT))
        for u, v in sorted(edges)
    ]
    return Network(n, weighted, coords=coords)


def _stitch_components(
    coords: np.ndarray, edges: set[tuple[int, int]]
) -> set[tuple[int, int]]:
    """Edges joining each component to its nearest neighbor component.

    Repeatedly merges the component whose closest outside node is nearest
    (a Boruvka-style pass over component representatives), producing the
    short inter-district connector streets real cities have.
    """
    n = len(coords)
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in edges:
        parent[find(u)] = find(v)

    extra: set[tuple[int, int]] = set()
    while True:
        roots = {find(u) for u in range(n)}
        if len(roots) <= 1:
            break
        members: dict[int, list[int]] = {}
        for u in range(n):
            members.setdefault(find(u), []).append(u)
        # Join the two globally closest components.
        comps = list(members.values())
        base = comps[0]
        best: tuple[float, int, int] | None = None
        for other in comps[1:]:
            diff = (
                coords[np.array(base)][:, None, :]
                - coords[np.array(other)][None, :, :]
            )
            d2 = (diff**2).sum(axis=2)
            pos = np.unravel_index(np.argmin(d2), d2.shape)
            cand = (float(d2[pos]), base[pos[0]], other[pos[1]])
            if best is None or cand < best:
                best = cand
        assert best is not None
        _, u, v = best
        extra.add((min(u, v), max(u, v)))
        parent[find(u)] = find(v)
    return extra


def city_catalog(scale: float = 1.0, seed: int = 0) -> dict[str, Network]:
    """The four Table-III city proxies at a tunable size scale.

    ``scale = 1.0`` yields networks of roughly 1-4 thousand nodes (the
    paper's cities have 50k-425k; pure-Python benchmarks run scaled
    down).  Relative sizes mirror Table III: the Aalborg proxy is the
    smallest, the Las Vegas proxy the largest and grid-shaped.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    aalborg_n = max(64, int(900 * scale))
    riga_n = max(96, int(2200 * scale))
    side = 4000.0 * math.sqrt(scale)
    vegas_rows = max(8, int(round(52 * math.sqrt(scale))))
    vegas_cols = max(8, int(round(60 * math.sqrt(scale))))
    cph_rings = max(6, int(round(24 * math.sqrt(scale))))
    cph_spokes = max(8, int(round(90 * math.sqrt(scale))))
    return {
        "aalborg": organic_city(aalborg_n, side=side * 0.6, seed=seed),
        "riga": organic_city(riga_n, side=side, seed=seed + 1),
        "copenhagen": radial_city(cph_rings, cph_spokes, seed=seed + 2),
        "las_vegas": grid_city(vegas_rows, vegas_cols, seed=seed + 3),
    }
