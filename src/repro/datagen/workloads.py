"""Temporal customer workloads for the dynamic reallocation layer.

The paper's introduction motivates MCFS with services that re-solve
"periodically, depending on which customers declare interest".  This
module synthesizes such streams: arrival/departure event sequences over a
network, with a diurnal arrival-rate profile and exponential service
times -- the standard M(t)/M/inf shape of demand processes.

Events feed :class:`repro.core.dynamic.DynamicAllocator` (see
``examples/dynamic_reallocation.py`` and the dynamic benchmark).
"""

from __future__ import annotations

import math
from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.network.graph import Network


@dataclass(frozen=True)
class WorkloadEvent:
    """One arrival or departure in a temporal workload.

    Attributes
    ----------
    time:
        Event time in hours from the workload start.
    kind:
        ``"arrival"`` or ``"departure"``.
    node:
        Customer location (arrivals only; departures reference the
        arrival via ``ref``).
    ref:
        For departures, the index of the arrival event being ended.
    """

    time: float
    kind: str
    node: int
    ref: int


def diurnal_rate(hour: float, *, base: float = 1.0, peak: float = 4.0) -> float:
    """Arrival rate with morning and evening peaks (events per hour).

    A smooth double-bump profile: ``base`` off-peak, rising to ``peak``
    around 9:00 and 18:00.
    """
    h = hour % 24.0
    morning = math.exp(-((h - 9.0) ** 2) / 4.5)
    evening = math.exp(-((h - 18.0) ** 2) / 4.5)
    return base + (peak - base) * max(morning, evening)


def generate_workload(
    network: Network,
    rng: np.random.Generator,
    *,
    hours: float = 24.0,
    base_rate: float = 2.0,
    peak_rate: float = 10.0,
    mean_stay_hours: float = 2.0,
    node_weights: np.ndarray | None = None,
) -> list[WorkloadEvent]:
    """Generate a time-ordered arrival/departure event stream.

    Arrivals follow a non-homogeneous Poisson process with the diurnal
    rate (thinning method); each arrival stays an exponential time and
    then departs.  Locations are sampled uniformly or per
    ``node_weights``.

    Returns events sorted by time; every departure's ``ref`` indexes the
    corresponding arrival *within the returned list*.
    """
    if hours <= 0:
        raise ValueError(f"hours must be positive, got {hours}")
    if node_weights is not None:
        weights = np.clip(np.asarray(node_weights, dtype=float), 0.0, None)
        total = weights.sum()
        if total <= 0:
            raise ValueError("all node weights are zero")
        probs = weights / total
    else:
        probs = None

    rate_ceiling = max(
        diurnal_rate(h / 10.0, base=base_rate, peak=peak_rate)
        for h in range(int(hours * 10) + 1)
    )

    raw: list[tuple[float, str, int, int]] = []
    t = 0.0
    arrival_counter = 0
    while True:
        t += float(rng.exponential(1.0 / rate_ceiling))
        if t >= hours:
            break
        accept = rng.random() < (
            diurnal_rate(t, base=base_rate, peak=peak_rate) / rate_ceiling
        )
        if not accept:
            continue
        if probs is None:
            node = int(rng.integers(network.n_nodes))
        else:
            node = int(rng.choice(network.n_nodes, p=probs))
        raw.append((t, "arrival", node, arrival_counter))
        stay = float(rng.exponential(mean_stay_hours))
        if t + stay < hours:
            raw.append((t + stay, "departure", node, arrival_counter))
        arrival_counter += 1

    raw.sort(key=lambda e: (e[0], e[1] == "departure"))

    # Re-index departures to the position of their arrival in the sorted
    # list.
    arrival_pos: dict[int, int] = {}
    events: list[WorkloadEvent] = []
    for pos, (time, kind, node, counter) in enumerate(raw):
        if kind == "arrival":
            arrival_pos[counter] = pos
            events.append(WorkloadEvent(time, kind, node, pos))
        else:
            events.append(
                WorkloadEvent(time, kind, node, arrival_pos[counter])
            )
    return events


def replay(
    events: list[WorkloadEvent],
) -> Iterator[tuple[WorkloadEvent, int]]:
    """Iterate events with the number of concurrently active customers.

    Yields ``(event, active_after)`` pairs -- a convenience for tests and
    examples that track system load over time.
    """
    active = 0
    for event in events:
        if event.kind == "arrival":
            active += 1
        else:
            active -= 1
        yield event, active
