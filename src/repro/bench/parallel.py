"""Process-parallel execution of solver sweeps.

Pure-Python solvers are CPU-bound and single-threaded; sweeps over many
(instance, method) pairs parallelize embarrassingly across processes.
:func:`parallel_rows` fans a list of work items over a process pool and
returns the same :class:`~repro.bench.harness.BenchRow` objects the
sequential harness produces.

Instances are shipped to workers via the library's own npz serialization
(instances hold numpy arrays and a Network; the explicit round-trip is
both the pickle-safety guarantee and a serialization test in production).
"""

from __future__ import annotations

import os
import tempfile
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import Any

from repro.bench.harness import BenchRow, solver_row
from repro.core.instance import MCFSInstance
from repro.io.serialization import load_instance, save_instance

WorkItem = tuple[str, str, dict[str, Any]]  # (instance_path, method, params)


def _run_item(item: WorkItem) -> BenchRow:
    """Worker entry point: load the instance and run one solver."""
    path, method, params = item
    instance = load_instance(path)
    kwargs = params.pop("__solver_kwargs__", {})
    return solver_row(instance, method, params=params, **kwargs)


def parallel_rows(
    cases: Sequence[tuple[dict[str, Any], MCFSInstance]],
    methods: Sequence[str],
    *,
    max_workers: int | None = None,
    exact_time_limit: float | None = 60.0,
    work_dir: str | None = None,
) -> list[BenchRow]:
    """Run every (case, method) pair across a process pool.

    Parameters
    ----------
    cases:
        The usual ``(params, instance)`` case list.
    methods:
        Solver names to run on each case.
    max_workers:
        Pool size (default: ``os.cpu_count()``).
    exact_time_limit:
        Budget forwarded to the ``exact`` method.
    work_dir:
        Directory for the instance spool files (a temporary directory by
        default, removed afterwards).
    """
    own_tmp = None
    if work_dir is None:
        own_tmp = tempfile.TemporaryDirectory(prefix="repro-sweep-")
        work_dir = own_tmp.name
    try:
        items: list[WorkItem] = []
        for idx, (params, instance) in enumerate(cases):
            path = os.path.join(work_dir, f"instance-{idx}.npz")
            save_instance(instance, path)
            for method in methods:
                tagged = dict(params)
                if method == "exact" and exact_time_limit is not None:
                    tagged["__solver_kwargs__"] = {
                        "time_limit": exact_time_limit
                    }
                items.append((path, method, tagged))

        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            rows = list(pool.map(_run_item, items))
        return rows
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()
