"""Multi-seed sweep runner with mean/std aggregation.

The single-seed series of the figure benchmarks are fast but noisy at
reproduction scale (see EXPERIMENTS.md).  :func:`seeded_sweep` runs an
instance factory across several seeds per parameter point, collects all
rows, and produces per-point mean and standard deviation per method --
the data behind error-bar versions of the paper's figures.
"""

from __future__ import annotations

import math
from collections import defaultdict
from collections.abc import Callable, Sequence
from typing import Any

from repro.bench.harness import BenchRow, run_solvers
from repro.core.instance import MCFSInstance


def seeded_sweep(
    factory: Callable[[int], list[tuple[dict[str, Any], MCFSInstance]]],
    *,
    seeds: Sequence[int],
    methods: Sequence[str],
    x_key: str,
    exact_time_limit: float | None = None,
) -> list[BenchRow]:
    """Run ``factory(seed)`` for each seed and solve every case.

    ``factory`` must return the usual ``(params, instance)`` case list;
    the seed is recorded into each row's params so downstream aggregation
    can group correctly.
    """
    rows: list[BenchRow] = []
    for seed in seeds:
        for params, instance in factory(seed):
            tagged = dict(params)
            tagged["seed"] = seed
            rows += run_solvers(
                instance,
                methods,
                params=tagged,
                exact_time_limit=exact_time_limit,
            )
    return rows


def aggregate(
    rows: Sequence[BenchRow],
    *,
    x_key: str,
) -> list[dict[str, Any]]:
    """Mean and standard deviation per (method, x) over seeds.

    Failed rows are counted separately (``failures``) and excluded from
    the statistics.
    """
    groups: dict[tuple[str, Any], list[BenchRow]] = defaultdict(list)
    order: list[tuple[str, Any]] = []
    for row in rows:
        key = (row.method, row.params.get(x_key))
        if key not in groups:
            order.append(key)
        groups[key].append(row)

    def stats(values: list[float]) -> tuple[float | None, float | None]:
        if not values:
            return None, None
        mean = sum(values) / len(values)
        if len(values) < 2:
            return mean, 0.0
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        return mean, math.sqrt(var)

    out: list[dict[str, Any]] = []
    for method, x in order:
        members = groups[(method, x)]
        objectives = [r.objective for r in members if r.objective is not None]
        runtimes = [
            r.runtime_sec for r in members if r.runtime_sec is not None
        ]
        obj_mean, obj_std = stats(objectives)
        rt_mean, _ = stats(runtimes)
        out.append(
            {
                "method": method,
                x_key: x,
                "objective_mean": round(obj_mean, 2) if obj_mean is not None else None,
                "objective_std": round(obj_std, 2) if obj_std is not None else None,
                "runtime_mean_s": round(rt_mean, 4) if rt_mean is not None else None,
                "runs": len(members),
                "failures": sum(1 for r in members if r.failed),
            }
        )
    return out
