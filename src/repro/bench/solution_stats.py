"""Solution statistics, solver comparisons, and convergence reports.

These helpers answer the operational questions a deployment of MCFS
raises beyond the raw objective: how far do customers actually travel,
how evenly are facilities loaded, how close to capacity does the system
run, and how did WMA's exploration converge.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.instance import MCFSInstance
from repro.core.solution import MCFSSolution
from repro.core.wma import WMATrace
from repro.network.dijkstra import shortest_path_lengths


@dataclass(frozen=True)
class SolutionStats:
    """Distance and load statistics of one solution.

    Distances are per customer (to its assigned facility); utilization is
    per opened facility (served / capacity).
    """

    objective: float
    mean_distance: float
    median_distance: float
    p95_distance: float
    max_distance: float
    facilities_open: int
    facilities_used: int
    mean_utilization: float
    max_utilization: float
    gini_load: float

    def as_row(self) -> dict[str, float]:
        """Flat dict for table output."""
        return {
            "objective": round(self.objective, 1),
            "mean_dist": round(self.mean_distance, 1),
            "median_dist": round(self.median_distance, 1),
            "p95_dist": round(self.p95_distance, 1),
            "max_dist": round(self.max_distance, 1),
            "open": self.facilities_open,
            "used": self.facilities_used,
            "mean_util": round(self.mean_utilization, 3),
            "max_util": round(self.max_utilization, 3),
            "gini_load": round(self.gini_load, 3),
        }


def _customer_distances(
    instance: MCFSInstance, solution: MCFSSolution
) -> np.ndarray:
    """Per-customer distance to its assigned facility.

    Measured customer-to-facility; on directed networks the search runs
    per distinct customer node, matching the matcher's direction.
    """
    distances = np.zeros(instance.m)
    if instance.network.directed:
        by_node: dict[int, list[int]] = defaultdict(list)
        for i, node in enumerate(instance.customers):
            by_node[node].append(i)
        for node, members in by_node.items():
            targets = {
                instance.facility_nodes[solution.assignment[i]]
                for i in members
            }
            result = shortest_path_lengths(
                instance.network, node, targets=targets
            )
            for i in members:
                f_node = instance.facility_nodes[solution.assignment[i]]
                distances[i] = result.dist[f_node]
        return distances

    by_facility: dict[int, list[int]] = defaultdict(list)
    for i, j in enumerate(solution.assignment):
        by_facility[j].append(i)
    for j, members in by_facility.items():
        result = shortest_path_lengths(
            instance.network,
            instance.facility_nodes[j],
            targets={instance.customers[i] for i in members},
        )
        for i in members:
            distances[i] = result.dist[instance.customers[i]]
    return distances


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = perfectly even)."""
    if len(values) == 0:
        return 0.0
    sorted_vals = np.sort(np.asarray(values, dtype=np.float64))
    total = sorted_vals.sum()
    if total <= 0:
        return 0.0
    n = len(sorted_vals)
    ranks = np.arange(1, n + 1)
    return float((2 * (ranks * sorted_vals).sum()) / (n * total) - (n + 1) / n)


def solution_stats(
    instance: MCFSInstance, solution: MCFSSolution
) -> SolutionStats:
    """Compute distance and load statistics for a solution."""
    distances = _customer_distances(instance, solution)
    loads = solution.load_per_facility()
    utilizations = np.array(
        [loads[j] / instance.capacities[j] for j in solution.selected]
    )
    load_values = np.array([loads[j] for j in solution.selected])
    return SolutionStats(
        objective=float(distances.sum()),
        mean_distance=float(distances.mean()),
        median_distance=float(np.median(distances)),
        p95_distance=float(np.percentile(distances, 95)),
        max_distance=float(distances.max()),
        facilities_open=len(solution.selected),
        facilities_used=int((load_values > 0).sum()),
        mean_utilization=float(utilizations.mean()) if len(utilizations) else 0.0,
        max_utilization=float(utilizations.max()) if len(utilizations) else 0.0,
        gini_load=_gini(load_values),
    )


def compare_solutions(
    instance: MCFSInstance,
    solutions: Sequence[MCFSSolution],
) -> list[dict[str, Any]]:
    """Side-by-side comparison rows for several solutions.

    Adds a ``vs_best`` column: each solution's objective relative to the
    best one in the group.
    """
    rows = []
    for solution in solutions:
        stats = solution_stats(instance, solution)
        row: dict[str, Any] = {"algorithm": solution.algorithm}
        row.update(stats.as_row())
        row["runtime_s"] = round(solution.runtime_sec, 4)
        rows.append(row)
    best = min(row["objective"] for row in rows)
    for row in rows:
        row["vs_best"] = round(row["objective"] / best, 3) if best > 0 else 1.0
    return rows


def convergence_report(trace: WMATrace, m: int) -> dict[str, Any]:
    """Summarize a WMA run's convergence behaviour (Figure 12b style).

    Reports how many iterations reached 50 / 90 / 100 % coverage, the
    matching-vs-cover time split, and the edge-materialization ratio
    relative to a full bipartite graph of the given size.
    """
    if trace.iterations == 0:
        raise ValueError("trace is empty")

    def iterations_to(fraction: float) -> int | None:
        threshold = fraction * m
        for t, covered in enumerate(trace.covered):
            if covered >= threshold:
                return t + 1
        return None

    total_matching = sum(trace.matching_time)
    total_cover = sum(trace.cover_time)
    total = total_matching + total_cover
    return {
        "iterations": trace.iterations,
        "iters_to_50pct": iterations_to(0.5),
        "iters_to_90pct": iterations_to(0.9),
        "iters_to_full": iterations_to(1.0),
        "final_covered": trace.covered[-1],
        "matching_time_share": (
            round(total_matching / total, 3) if total > 0 else 0.0
        ),
        "cover_time_share": round(total_cover / total, 3) if total > 0 else 0.0,
        "edges_final": trace.edges_materialized[-1],
        "first_iteration_matching_share": (
            round(trace.matching_time[0] / total_matching, 3)
            if total_matching > 0
            else 0.0
        ),
    }
