"""Scaled-down instance factories for every table and figure of Section VII.

Each ``figX_cases`` function returns a list of ``(params, instance)``
pairs: the swept parameter values and the ready-to-solve instance.  The
parameterizations follow the paper (occupancy, capacity, ``k`` as a
fraction of ``m`` ...) with network sizes reduced to what pure Python
handles in benchmark time; DESIGN.md section 4 records the mapping.

Where the paper's figure text fixes parameters only qualitatively
("higher customer and facility density"), the concrete values chosen
here are documented in each factory's docstring.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.core.instance import MCFSInstance
from repro.datagen.bikeflow import bike_demand_distribution, simulate_hourly_flows
from repro.datagen.capacities import operational_hours_capacities
from repro.datagen.checkins import occupancy_customer_distribution, synth_occupancies
from repro.datagen.customers import weighted_customers
from repro.datagen.instances import city_instance, clustered_instance, uniform_instance
from repro.datagen.urban import city_catalog
from repro.network.graph import Network

Case = tuple[dict[str, Any], MCFSInstance]

DEFAULT_SIZES = (128, 256, 512, 1024, 2048)
EXACT_MAX_NODES = 300
EXACT_MAX_Y_VARS = 40_000


def include_exact(instance: MCFSInstance) -> bool:
    """Whether the exact MILP is worth attempting on this instance.

    Mirrors the paper's practice of running Gurobi only while it finishes
    within budget: we gate on the MILP size (customer-facility variable
    count) instead of waiting for a timeout on every point.
    """
    return (
        instance.network.n_nodes <= EXACT_MAX_NODES
        and instance.m * instance.l <= EXACT_MAX_Y_VARS
    )


# ----------------------------------------------------------------------
# Figure 6: uniform synthetic data, variable graph size
# ----------------------------------------------------------------------
def fig6a_cases(sizes: Sequence[int] = DEFAULT_SIZES, seed: int = 0) -> list[Case]:
    """Fig 6a: alpha=2, customers on 10% of nodes, k=0.1m, c=20 (o=0.5)."""
    return [
        (
            {"n": n},
            uniform_instance(
                n,
                alpha=2.0,
                customer_frac=0.1,
                capacity=20,
                k_frac_of_m=0.1,
                seed=seed + n,
            ),
        )
        for n in sizes
    ]


def fig6b_cases(sizes: Sequence[int] = DEFAULT_SIZES, seed: int = 0) -> list[Case]:
    """Fig 6b: denser demand/supply -- 20% customers, c=4, k=m/2 (o=0.5)."""
    return [
        (
            {"n": n},
            uniform_instance(
                n,
                alpha=2.0,
                customer_frac=0.2,
                capacity=4,
                k_frac_of_m=0.5,
                seed=seed + n,
            ),
        )
        for n in sizes
    ]


def fig6c_cases(sizes: Sequence[int] = DEFAULT_SIZES, seed: int = 0) -> list[Case]:
    """Fig 6c: sparse alpha=1.2, 10% customers, c=10, k=m/2 (o=0.2)."""
    return [
        (
            {"n": n},
            uniform_instance(
                n,
                alpha=1.2,
                customer_frac=0.1,
                capacity=10,
                k_frac_of_m=0.5,
                seed=seed + n,
            ),
        )
        for n in sizes
    ]


def fig6d_cases(sizes: Sequence[int] = DEFAULT_SIZES, seed: int = 0) -> list[Case]:
    """Fig 6d: as 6c but nonuniform capacities uniform in 1..10."""
    return [
        (
            {"n": n},
            uniform_instance(
                n,
                alpha=1.2,
                customer_frac=0.1,
                capacity=(1, 10),
                k_frac_of_m=0.5,
                seed=seed + n,
            ),
        )
        for n in sizes
    ]


# ----------------------------------------------------------------------
# Figure 7: clustered synthetic data, variable graph size
# ----------------------------------------------------------------------
def fig7a_cases(sizes: Sequence[int] = DEFAULT_SIZES, seed: int = 0) -> list[Case]:
    """Fig 7a: 40 clusters, many customers, relaxed capacity (o=0.5)."""
    return [
        (
            {"n": n},
            clustered_instance(
                n,
                n_clusters=40,
                alpha=1.5,
                customer_frac=0.2,
                capacity=20,
                k_frac_of_m=0.1,
                seed=seed + n,
            ),
        )
        for n in sizes
    ]


def fig7b_cases(sizes: Sequence[int] = DEFAULT_SIZES, seed: int = 0) -> list[Case]:
    """Fig 7b: 40 clusters, small capacity c=5, k=m/2 (o=0.4)."""
    return [
        (
            {"n": n},
            clustered_instance(
                n,
                n_clusters=40,
                alpha=1.5,
                customer_frac=0.1,
                capacity=5,
                k_frac_of_m=0.5,
                seed=seed + n,
            ),
        )
        for n in sizes
    ]


def fig7c_cases(sizes: Sequence[int] = DEFAULT_SIZES, seed: int = 0) -> list[Case]:
    """Fig 7c: 20 clusters, low occupancy -- c=10, k=m/2 (o=0.2)."""
    return [
        (
            {"n": n},
            clustered_instance(
                n,
                n_clusters=20,
                alpha=1.5,
                customer_frac=0.1,
                capacity=10,
                k_frac_of_m=0.5,
                seed=seed + n,
            ),
        )
        for n in sizes
    ]


def fig7d_cases(sizes: Sequence[int] = DEFAULT_SIZES, seed: int = 0) -> list[Case]:
    """Fig 7d: 5 clusters (near-uniform), c=20, k=0.1m (o=0.5)."""
    return [
        (
            {"n": n},
            clustered_instance(
                n,
                n_clusters=5,
                alpha=1.5,
                customer_frac=0.1,
                capacity=20,
                k_frac_of_m=0.1,
                seed=seed + n,
            ),
        )
        for n in sizes
    ]


# ----------------------------------------------------------------------
# Figure 8: clustered data, variable l / m / k
# ----------------------------------------------------------------------
def fig8a_cases(
    n: int = 1024,
    fracs: Sequence[float] = (0.4, 0.6, 0.8, 1.0),
    seeds: Sequence[int] = (0, 1, 2),
) -> list[Case]:
    """Fig 8a: candidate-set size sweep, 40%..100% of nodes.

    At benchmark scale the per-instance variance of all heuristics is
    large (cover gains are tiny integers, so tie-breaking moves the
    outcome), so each sweep point is generated for several seeds; the
    benchmark averages rows per point.
    """
    return [
        (
            {"l_frac": frac, "seed": seed},
            clustered_instance(
                n,
                n_clusters=20,
                alpha=1.5,
                customer_frac=0.2,
                facility_frac=frac,
                capacity=20,
                k_frac_of_m=0.1,
                seed=seed * 1000 + int(100 * frac),
            ),
        )
        for frac in fracs
        for seed in seeds
    ]


def fig8b_cases(
    n: int = 1024,
    m_values: Sequence[int] = (51, 102, 205, 410),
    seed: int = 0,
) -> list[Case]:
    """Fig 8b: customer-count sweep at c=10, k=0.2m (o=0.5)."""
    return [
        (
            {"m": m},
            clustered_instance(
                n,
                n_clusters=20,
                alpha=1.5,
                m=m,
                capacity=10,
                k=max(1, m // 5),
                seed=seed + m,
            ),
        )
        for m in m_values
    ]


def fig8c_cases(
    n: int = 512,
    m_values: Sequence[int] = (256, 512, 1024),
    seed: int = 0,
) -> list[Case]:
    """Fig 8c: scale-up with multiple customers per node, o=0.1.

    Capacity 50 and k=0.2m give occupancy m / (50 * 0.2m) = 0.1.
    """
    return [
        (
            {"m": m},
            clustered_instance(
                n,
                n_clusters=20,
                alpha=1.5,
                m=m,
                capacity=50,
                k=max(1, m // 5),
                seed=seed + m,
            ),
        )
        for m in m_values
    ]


def fig8d_cases(
    n: int = 1024,
    k_fracs: Sequence[float] = (0.1, 0.2, 0.3, 0.5),
    seed: int = 0,
) -> list[Case]:
    """Fig 8d: facility-budget sweep at fixed m, c=20."""
    cases: list[Case] = []
    for frac in k_fracs:
        inst = clustered_instance(
            n,
            n_clusters=20,
            alpha=1.5,
            customer_frac=0.2,
            capacity=20,
            k_frac_of_m=frac,
            seed=seed,
        )
        cases.append(({"k": inst.k}, inst))
    return cases


# ----------------------------------------------------------------------
# Figure 9: density and capacity effects
# ----------------------------------------------------------------------
def fig9a_cases(
    n: int = 512,
    alphas: Sequence[float] = (0.9, 1.2, 1.5, 2.0),
    seed: int = 0,
) -> list[Case]:
    """Fig 9a: density sweep on 5-cluster data, c=10, k=m/2 (o=0.2).

    The x-parameter reported is the *measured* average degree, as in the
    paper ("the x-axis shows the measured average degree instead of
    alpha, resulting in non-equal parameter gaps").
    """
    cases: list[Case] = []
    for alpha in alphas:
        inst = clustered_instance(
            n,
            n_clusters=5,
            alpha=alpha,
            customer_frac=0.1,
            capacity=10,
            k_frac_of_m=0.5,
            seed=seed,
        )
        degree = round(inst.network.stats().avg_degree, 2)
        cases.append(({"avg_degree": degree, "alpha": alpha}, inst))
    return cases


def fig9b_cases(
    n: int = 512,
    capacities: Sequence[int] = (2, 4, 6, 10, 16, 24),
    seed: int = 0,
) -> list[Case]:
    """Fig 9b: capacity sweep at alpha=1.5, k=m/2 (o = 2/c)."""
    return [
        (
            {"c": c},
            clustered_instance(
                n,
                n_clusters=5,
                alpha=1.5,
                customer_frac=0.1,
                capacity=c,
                k_frac_of_m=0.5,
                seed=seed,
            ),
        )
        for c in capacities
    ]


# ----------------------------------------------------------------------
# Real-data proxies: Table III/IV, Figures 10, 12, 13
# ----------------------------------------------------------------------
def table3_networks(scale: float = 0.25, seed: int = 0) -> dict[str, Network]:
    """The four urban proxies whose stats reproduce Table III's shape."""
    return city_catalog(scale=scale, seed=seed)


def table4_cases(
    scale: float = 0.25,
    m: int = 128,
    k: int = 13,
    capacity: int = 20,
    seed: int = 0,
) -> list[Case]:
    """Table IV: uniform capacities, F_p = V, on each city proxy."""
    cases: list[Case] = []
    for name, network in table3_networks(scale, seed).items():
        inst = city_instance(
            network,
            m=min(m, network.n_nodes),
            k=k,
            capacity=capacity,
            seed=seed,
            name=name,
        )
        cases.append(({"city": name}, inst))
    return cases


def fig10_cases(
    m_values: Sequence[int] = (32, 64, 128, 256),
    scale: float = 0.25,
    seed: int = 0,
) -> list[Case]:
    """Fig 10: Aalborg-proxy scalability, c=20, k=0.1m (o=0.5)."""
    network = table3_networks(scale, seed)["aalborg"]
    return [
        (
            {"m": m},
            city_instance(
                network,
                m=m,
                k=max(1, m // 10),
                capacity=20,
                seed=seed + m,
                name=f"aalborg-m{m}",
            ),
        )
        for m in m_values
    ]


def _coworking_case(
    network: Network,
    n_venues: int,
    m: int,
    k: int,
    seed: int,
    name: str,
) -> MCFSInstance:
    """Shared builder for the Section VII-F coworking experiments.

    Venues are a random node subset with operational-hours capacities;
    customers are drawn from the occupancy-driven Voronoi distribution of
    the check-in pipeline.
    """
    rng = np.random.default_rng(seed)
    venues = sorted(
        int(v) for v in rng.choice(network.n_nodes, size=n_venues, replace=False)
    )
    capacities = operational_hours_capacities(n_venues, rng)
    occupancies = synth_occupancies(n_venues, rng)
    weights = occupancy_customer_distribution(network, venues, occupancies)
    customers = weighted_customers(network, m, weights, rng)
    return city_instance(
        network,
        m=m,
        k=k,
        capacity=capacities,
        seed=seed,
        customer_nodes=customers,
        facility_nodes=venues,
        name=name,
    )


def fig12a_cases(
    k_values: Sequence[int] = (40, 60, 90, 140),
    scale: float = 0.25,
    n_venues: int = 300,
    m: int = 250,
    seed: int = 0,
) -> list[Case]:
    """Fig 12a: Las-Vegas-proxy coworking, budget sweep."""
    network = table3_networks(scale, seed)["las_vegas"]
    return [
        (
            {"k": k},
            _coworking_case(
                network, n_venues, m, k, seed, f"vegas-coworking-k{k}"
            ),
        )
        for k in k_values
    ]


def fig12b_instance(
    scale: float = 0.25,
    n_venues: int = 300,
    m: int = 250,
    k: int = 90,
    seed: int = 0,
) -> MCFSInstance:
    """Fig 12b: the instance whose WMA iteration trace is reported."""
    network = table3_networks(scale, seed)["las_vegas"]
    return _coworking_case(network, n_venues, m, k, seed, "vegas-trace")


def fig13a_cases(
    k_values: Sequence[int] = (15, 25, 35, 50),
    scale: float = 0.25,
    n_venues: int = 80,
    m: int = 100,
    seed: int = 0,
) -> list[Case]:
    """Fig 13a: Copenhagen-proxy coworking, budget sweep."""
    network = table3_networks(scale, seed)["copenhagen"]
    return [
        (
            {"k": k},
            _coworking_case(
                network, n_venues, m, k, seed, f"cph-coworking-k{k}"
            ),
        )
        for k in k_values
    ]


def fig13b_cases(
    k_values: Sequence[int] = (50, 80, 110, 150),
    scale: float = 0.25,
    n_stations: int = 300,
    m: int = 150,
    seed: int = 0,
) -> list[Case]:
    """Fig 13b: Copenhagen-proxy bike docking selection.

    Stations are random nodes with small capacities (1..8 bikes);
    scattered bikes follow the flow-divergence-variance distribution.
    The paper's setting is supply-rich (6000 stations for 1000 bikes),
    so the scaled occupancies here stay below ~0.7 as well.
    """
    network = table3_networks(scale, seed)["copenhagen"]
    rng = np.random.default_rng(seed)
    stations = sorted(
        int(v)
        for v in rng.choice(network.n_nodes, size=n_stations, replace=False)
    )
    capacities = [int(c) for c in rng.integers(1, 9, size=n_stations)]
    flows = simulate_hourly_flows(network, rng)
    demand = bike_demand_distribution(network, flows)
    bikes = weighted_customers(network, m, demand, rng)
    return [
        (
            {"k": k},
            city_instance(
                network,
                m=m,
                k=k,
                capacity=capacities,
                seed=seed,
                customer_nodes=bikes,
                facility_nodes=stations,
                name=f"cph-bikes-k{k}",
            ),
        )
        for k in k_values
    ]
