"""Text rendering of benchmark results.

The benchmarks print, for every reproduced table and figure, the same
rows/series the paper reports: objective and runtime per algorithm per
parameter value.  Output is plain aligned text so it reads well both in
pytest logs and when redirected to the EXPERIMENTS.md records.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence
from typing import Any

from repro.bench.harness import BenchRow


def format_table(
    rows: Iterable[BenchRow | dict[str, Any]],
    *,
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render rows as an aligned text table.

    Accepts :class:`BenchRow` objects (rendered via ``cells()``) or plain
    dicts.  Column order follows the first row unless ``columns`` is
    given; missing cells render blank.
    """
    dict_rows = [
        row.cells() if isinstance(row, BenchRow) else dict(row) for row in rows
    ]
    if not dict_rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(dict_rows[0].keys())
        seen_cols = set(columns)
        for row in dict_rows[1:]:
            for key in row:
                if key not in seen_cols:
                    seen_cols.add(key)
                    columns.append(key)

    def text(value: Any) -> str:
        if value is None:
            return ""
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    widths = {
        col: max(len(col), *(len(text(row.get(col))) for row in dict_rows))
        for col in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in dict_rows:
        lines.append(
            "  ".join(text(row.get(col)).ljust(widths[col]) for col in columns)
        )
    return "\n".join(lines)


def format_series(
    rows: Iterable[BenchRow],
    *,
    x_key: str,
    value: str = "objective",
    title: str | None = None,
) -> str:
    """Render rows as one line per method: the paper's figure series.

    ``x_key`` names the swept parameter inside each row's ``params``;
    ``value`` is ``"objective"`` or ``"runtime_sec"``.
    """
    series: dict[str, list[tuple[Any, Any]]] = defaultdict(list)
    x_values: list[Any] = []
    seen_x: set[Any] = set()
    for row in rows:
        x = row.params.get(x_key)
        if x not in seen_x:
            seen_x.add(x)
            x_values.append(x)
        val = getattr(row, value)
        series[row.method].append((x, val))

    def text(value: Any) -> str:
        if value is None:
            return "fail"
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    lines = []
    if title:
        lines.append(title)
    head_cells = [x_key.ljust(12)] + [text(x).rjust(10) for x in x_values]
    lines.append("  ".join(head_cells))
    lines.append("-" * len(lines[-1]))
    for method, points in series.items():
        by_x = {x: v for x, v in points}
        cells = [method.ljust(12)] + [
            text(by_x.get(x)).rjust(10) for x in x_values
        ]
        lines.append("  ".join(cells))
    return "\n".join(lines)


def mean_rows(
    rows: Iterable[BenchRow],
    *,
    x_key: str,
    over_key: str = "seed",
) -> list[BenchRow]:
    """Average repeated-seed rows into one row per (method, x) pair.

    Rows failing (``objective is None``) are dropped from the mean; a
    (method, x) group where every seed failed yields a failed row.  Used
    by sweeps whose per-instance variance is large at benchmark scale.
    """
    groups: dict[tuple[str, Any], list[BenchRow]] = defaultdict(list)
    order: list[tuple[str, Any]] = []
    for row in rows:
        key = (row.method, row.params.get(x_key))
        if key not in groups:
            order.append(key)
        groups[key].append(row)

    out: list[BenchRow] = []
    for method, x in order:
        members = groups[(method, x)]
        objectives = [r.objective for r in members if r.objective is not None]
        runtimes = [r.runtime_sec for r in members if r.runtime_sec is not None]
        out.append(
            BenchRow(
                label=members[0].label,
                method=method,
                objective=(
                    sum(objectives) / len(objectives) if objectives else None
                ),
                runtime_sec=(
                    sum(runtimes) / len(runtimes) if runtimes else None
                ),
                status="ok" if objectives else "error",
                params={x_key: x, "seeds": len(members)},
            )
        )
    return out


_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Render a numeric series as a unicode sparkline.

    Scales to the series' own min/max (a flat series renders as a line of
    mid blocks).  Handy for printing WMA traces inline: e.g.
    ``sparkline(trace.covered)`` shows the coverage ramp at a glance.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi - lo <= 0:
        return _SPARK_LEVELS[3] * len(vals)
    out = []
    for v in vals:
        idx = int((v - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def paper_shape_summary(rows: Sequence[BenchRow]) -> dict[str, Any]:
    """Aggregate win/loss shape checks used by EXPERIMENTS.md.

    Returns per-method mean objective ratio versus the group best and
    mean runtime, over all parameter points where the method succeeded.
    """
    by_x: dict[Any, list[BenchRow]] = defaultdict(list)
    for row in rows:
        by_x[tuple(sorted(row.params.items()))].append(row)

    ratios: dict[str, list[float]] = defaultdict(list)
    runtimes: dict[str, list[float]] = defaultdict(list)
    for group in by_x.values():
        objectives = [r.objective for r in group if r.objective is not None]
        if not objectives:
            continue
        base = min(objectives)
        for r in group:
            if r.objective is not None and base > 0:
                ratios[r.method].append(r.objective / base)
            if r.runtime_sec is not None:
                runtimes[r.method].append(r.runtime_sec)

    return {
        method: {
            "mean_ratio_to_best": round(
                sum(vals) / len(vals), 3
            ),
            "mean_runtime_sec": round(
                sum(runtimes[method]) / max(len(runtimes[method]), 1), 3
            ),
            "points": len(vals),
        }
        for method, vals in ratios.items()
    }
