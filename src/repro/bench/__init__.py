"""Benchmark harness: experiment definitions, runners, and reporting.

* :mod:`repro.bench.harness` -- run a set of solvers on an instance (with
  per-solver time budgets and validation) and collect comparable rows.
* :mod:`repro.bench.reporting` -- aligned text tables and series output
  mirroring the paper's figures.
* :mod:`repro.bench.experiments` -- the scaled-down instance factories
  for every table and figure of Section VII (see DESIGN.md for the
  experiment index).
"""

from repro.bench.harness import BenchRow, load_rows, run_solvers, save_rows, solver_row
from repro.bench.parallel import parallel_rows
from repro.bench.reporting import format_series, format_table, mean_rows, sparkline
from repro.bench.sweeps import aggregate, seeded_sweep

# NOTE: repro.bench.solution_stats and repro.bench.robustness are *not*
# imported eagerly here -- the function ``solution_stats`` would shadow
# its own module name in this namespace.  Import them as modules
# (``from repro.bench import solution_stats``) or use the lazy forwards
# on ``repro.analysis``.

__all__ = [
    "BenchRow",
    "run_solvers",
    "solver_row",
    "save_rows",
    "load_rows",
    "format_table",
    "format_series",
    "mean_rows",
    "sparkline",
    "seeded_sweep",
    "aggregate",
    "parallel_rows",
]
