"""Robustness of a facility selection under demand drift.

The paper motivates MCFS with periodic re-solving "depending on which
customers declare interest".  Between re-solves, the *selection* stays
fixed while the customer population drifts; these helpers quantify how
well a selection holds up:

* :func:`reassignment_cost` -- optimal assignment cost of a *new*
  customer population onto a fixed selection;
* :func:`selection_regret` -- that cost relative to re-running the solver
  from scratch on the new population (the price of not re-selecting);
* :func:`drift_study` -- regret as a function of drift magnitude, where a
  fraction of customers is resampled.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.instance import MCFSInstance
from repro.core.solution import MCFSSolution
from repro.errors import BudgetExceeded, MatchingError, ReproError
from repro.flow.sspa import assign_all


def reassignment_cost(
    instance: MCFSInstance,
    selected: Sequence[int],
    new_customers: Sequence[int],
) -> float:
    """Optimal cost of serving ``new_customers`` from a fixed selection.

    Raises :class:`MatchingError` when the selection cannot absorb the
    new population (capacity or reachability) -- the hard signal that
    re-selection is due.
    """
    sub_nodes = [instance.facility_nodes[j] for j in selected]
    sub_caps = [instance.capacities[j] for j in selected]
    return assign_all(
        instance.network, list(new_customers), sub_nodes, sub_caps
    ).cost


def selection_regret(
    instance: MCFSInstance,
    selected: Sequence[int],
    new_customers: Sequence[int],
    *,
    solver: Callable[[MCFSInstance], MCFSSolution] | None = None,
) -> float:
    """Relative extra cost of keeping ``selected`` vs re-solving.

    Returns ``stale_cost / fresh_cost - 1`` (0 = the old selection is
    still as good as a fresh one).  ``solver`` defaults to WMA.
    """
    from repro.core.wma import solve_wma

    solver = solver or solve_wma
    stale = reassignment_cost(instance, selected, new_customers)
    fresh_instance = MCFSInstance(
        network=instance.network,
        customers=tuple(int(c) for c in new_customers),
        facility_nodes=instance.facility_nodes,
        capacities=instance.capacities,
        k=instance.k,
        name=f"{instance.name}|drifted",
    )
    fresh = solver(fresh_instance)
    if fresh.objective <= 0:
        return 0.0 if stale <= 0 else float("inf")
    return stale / fresh.objective - 1.0


@dataclass
class DriftPoint:
    """One point of a drift study."""

    drift_fraction: float
    stale_cost: float | None
    fresh_cost: float | None
    regret: float | None


def drift_study(
    instance: MCFSInstance,
    solution: MCFSSolution,
    *,
    fractions: Sequence[float] = (0.0, 0.25, 0.5, 1.0),
    seed: int = 0,
    solver: Callable[[MCFSInstance], MCFSSolution] | None = None,
) -> list[DriftPoint]:
    """Regret of a solution's selection as customers drift.

    For each fraction ``f``, resamples ``f`` of the customers uniformly
    at random (keeping the rest), then compares the fixed selection's
    optimal reassignment cost against a fresh solve.  Points where the
    stale selection becomes infeasible report ``stale_cost=None``.
    """
    from repro.core.wma import solve_wma

    solver = solver or solve_wma
    rng = np.random.default_rng(seed)
    points: list[DriftPoint] = []
    base = list(instance.customers)
    n = instance.network.n_nodes

    for fraction in fractions:
        drifted = list(base)
        n_moved = int(round(fraction * len(base)))
        for idx in rng.choice(len(base), size=n_moved, replace=False):
            drifted[int(idx)] = int(rng.integers(n))

        try:
            stale = reassignment_cost(instance, solution.selected, drifted)
        except MatchingError:
            stale = None

        fresh_instance = MCFSInstance(
            network=instance.network,
            customers=tuple(drifted),
            facility_nodes=instance.facility_nodes,
            capacities=instance.capacities,
            k=instance.k,
            name=f"{instance.name}|drift{fraction}",
        )
        try:
            fresh = solver(fresh_instance).objective
        except BudgetExceeded:
            # A deadline hit inside the solver must reach the caller's
            # fallback chain; a drift study is never worth masking it.
            raise
        except ReproError:
            fresh = None

        regret = None
        if stale is not None and fresh is not None and fresh > 0:
            regret = stale / fresh - 1.0
        points.append(
            DriftPoint(
                drift_fraction=fraction,
                stale_cost=stale,
                fresh_cost=fresh,
                regret=regret,
            )
        )
    return points
