"""Run solver line-ups on instances and collect comparable result rows.

The paper's figures plot, per algorithm, the objective value and runtime
against a swept parameter.  :func:`run_solvers` produces one
:class:`BenchRow` per algorithm per instance, handling the two failure
modes the paper reports: the exact solver timing out ("Gurobi failed")
and infeasibility.  Every successful solution is validated against the
instance before its row is trusted.
"""

from __future__ import annotations

import contextlib
import json
import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field, fields
from typing import Any, TextIO

from repro import SOLVERS
from repro.core.instance import MCFSInstance
from repro.core.validation import validate_solution
from repro.errors import ReproError, SolverError
from repro.network import distcache
from repro.obs import metrics as obs_metrics

DEFAULT_METHODS = ("wma", "hilbert", "wma-naive", "exact")

#: Solvers that accept a ``workers=`` keyword (process-parallel
#: distance fan-out; see :mod:`repro.network.parallel`).
WORKER_AWARE_METHODS = frozenset({"exact", "brnn", "kmedian-ls"})


@dataclass
class BenchRow:
    """One algorithm's outcome on one instance.

    ``metrics`` carries the run's observability counters (flattened
    :meth:`repro.obs.metrics.Registry.as_dict` output) so persisted
    benchmark JSON records *why* a run was fast or slow, not just how
    long it took.
    """

    label: str
    method: str
    objective: float | None
    runtime_sec: float | None
    status: str = "ok"
    params: dict[str, Any] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        """Whether the solver produced no usable solution."""
        return self.status != "ok"

    def cells(self) -> dict[str, Any]:
        """Flat dict for table formatting."""
        out: dict[str, Any] = {"instance": self.label, "method": self.method}
        out.update(self.params)
        out["objective"] = (
            round(self.objective, 1) if self.objective is not None else "fail"
        )
        out["runtime_s"] = (
            round(self.runtime_sec, 3) if self.runtime_sec is not None else "fail"
        )
        out["status"] = self.status
        return out

    def as_record(self) -> dict[str, Any]:
        """Full JSON-serializable form (the persisted benchmark row)."""
        return {
            "label": self.label,
            "method": self.method,
            "objective": self.objective,
            "runtime_sec": self.runtime_sec,
            "status": self.status,
            "params": dict(self.params),
            "meta": {k: _jsonable(v) for k, v in self.meta.items()},
            "metrics": dict(self.metrics),
        }


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


def save_rows(rows: Sequence[BenchRow], target: str | TextIO) -> None:
    """Persist benchmark rows (metrics included) as a JSON document."""
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as fh:
            save_rows(rows, fh)
        return
    json.dump([r.as_record() for r in rows], target, indent=2, sort_keys=True)
    target.write("\n")


def load_rows(source: str | TextIO) -> list[BenchRow]:
    """Read rows written by :func:`save_rows`.

    Unknown keys are ignored, so rows persisted by a newer schema (with
    extra fields) still load instead of crashing the reader.
    """
    if isinstance(source, str):
        with open(source, encoding="utf-8") as fh:
            return load_rows(fh)
    known = {f.name for f in fields(BenchRow)}
    return [
        BenchRow(**{k: v for k, v in record.items() if k in known})
        for record in json.load(source)
    ]


def solver_row(
    instance: MCFSInstance,
    method: str,
    *,
    label: str | None = None,
    params: dict[str, Any] | None = None,
    validate: bool = True,
    deadline: float | None = None,
    fallback: Any = None,
    **solver_kwargs,
) -> BenchRow:
    """Run one solver on one instance, never raising on solver failure.

    Exact-solver time-outs become ``status="timeout"`` rows (the paper's
    "Gurobi failed" entries); other library errors become
    ``status="error"`` rows carrying the message.

    ``deadline`` bounds the run's wall-clock and (with ``fallback``,
    default the method's chain) degrades through the runtime's fallback
    chain instead of failing; ``meta["runtime"]`` on the row records the
    attempts.  ``runtime_sec`` is then the whole chain's wall time.
    """
    label = label or instance.name
    params = dict(params or {})
    registry = obs_metrics.Registry()
    started = time.perf_counter()
    try:
        with obs_metrics.use(registry):
            if deadline is not None or fallback is not None:
                from repro import runtime

                opts = runtime.normalize_options(
                    method, None, solver_kwargs, warn_legacy=False
                )
                result = runtime.solve_with_fallback(
                    instance,
                    runtime.chain_for(method, fallback),
                    deadline=deadline,
                    options=opts,
                    validate=validate,
                )
                solution = result.solution
                return BenchRow(
                    label=label,
                    method=method,
                    objective=solution.objective,
                    runtime_sec=result.elapsed_sec,
                    status="ok",
                    params=params,
                    meta=dict(solution.meta),
                    metrics=registry.as_dict(),
                )
            solution = SOLVERS[method](instance, **solver_kwargs)
    except SolverError as exc:
        return BenchRow(
            label=label,
            method=method,
            objective=None,
            runtime_sec=time.perf_counter() - started,
            status="timeout",
            params=params,
            meta={"error": str(exc)},
            metrics=registry.as_dict(),
        )
    except ReproError as exc:
        return BenchRow(
            label=label,
            method=method,
            objective=None,
            runtime_sec=time.perf_counter() - started,
            status="error",
            params=params,
            meta={"error": str(exc)},
            metrics=registry.as_dict(),
        )
    if validate:
        validate_solution(instance, solution)
    return BenchRow(
        label=label,
        method=method,
        objective=solution.objective,
        runtime_sec=solution.runtime_sec,
        status="ok",
        params=params,
        meta=dict(solution.meta),
        metrics=registry.as_dict(),
    )


def run_solvers(
    instance: MCFSInstance,
    methods: Sequence[str] = DEFAULT_METHODS,
    *,
    label: str | None = None,
    params: dict[str, Any] | None = None,
    exact_time_limit: float | None = 60.0,
    validate: bool = True,
    seeds: dict[str, int] | None = None,
    workers: int | None = None,
    distance_cache: bool | distcache.DistanceCache | None = None,
    oracle: Any = None,
    deadline: float | None = None,
    fallback: Any = None,
) -> list[BenchRow]:
    """Run several solvers on an instance and return their rows.

    Parameters
    ----------
    instance:
        The instance all solvers share.
    methods:
        Solver names (keys of :data:`repro.SOLVERS`).
    exact_time_limit:
        Time budget passed to the ``exact`` method; a blown budget yields
        a ``timeout`` row rather than an exception.
    seeds:
        Optional per-method ``seed`` keyword (randomized baselines).
    workers:
        Process count forwarded to the solvers in
        :data:`WORKER_AWARE_METHODS`; objectives are identical for any
        count.
    distance_cache:
        ``True`` creates a fresh :class:`repro.network.distcache.DistanceCache`
        shared by every method in this line-up; an existing cache
        instance is used as-is (e.g. one shared across a parameter
        sweep).  Cached distances are bit-identical to fresh runs.
    oracle:
        ALT distance-oracle control passed to every method (universal
        option; see :func:`repro.network.oracle.resolve`).  ``True`` or
        ``"alt"`` shares the instance network's default oracle across
        the line-up; ``None`` defers to ``REPRO_ORACLE``.  Objectives
        are bit-identical to the kernel path.
    deadline:
        Per-method wall-clock budget in seconds, enforced cooperatively
        by the runtime for *every* method; with ``fallback`` (default:
        each method's chain) a blown budget degrades to the next method
        instead of producing a failed row.
    fallback:
        Fallback-chain control per :func:`repro.runtime.chain_for`:
        ``None``/``"auto"`` for the default chains, ``False`` to
        disable, or an explicit comma-separated chain.
    """
    if distance_cache is True:
        distance_cache = distcache.DistanceCache()
    scope = (
        distcache.use(distance_cache)
        if isinstance(distance_cache, distcache.DistanceCache)
        else contextlib.nullcontext()
    )
    rows: list[BenchRow] = []
    with scope:
        for method in methods:
            kwargs: dict[str, Any] = {}
            if method == "exact" and exact_time_limit is not None:
                kwargs["time_limit"] = exact_time_limit
            if seeds and method in seeds:
                kwargs["seed"] = seeds[method]
            if workers is not None and method in WORKER_AWARE_METHODS:
                kwargs["workers"] = workers
            if oracle is not None:
                kwargs["oracle"] = oracle
            rows.append(
                solver_row(
                    instance,
                    method,
                    label=label,
                    params=params,
                    validate=validate,
                    deadline=deadline,
                    fallback=fallback,
                    **kwargs,
                )
            )
    return rows


def best_objective(rows: Iterable[BenchRow]) -> float | None:
    """Smallest successful objective among the rows (None if all failed)."""
    values = [r.objective for r in rows if r.objective is not None]
    return min(values) if values else None


def objective_ratios(rows: Sequence[BenchRow]) -> dict[str, float]:
    """Each method's objective relative to the best in the group."""
    base = best_objective(rows)
    if base is None or base <= 0:
        return {}
    return {
        r.method: r.objective / base
        for r in rows
        if r.objective is not None
    }
