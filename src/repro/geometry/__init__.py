"""Geometric substrate: Hilbert curve, spatial grid index, point helpers.

The core MCFS algorithms are purely network-based; this subpackage serves
the Hilbert baseline (space-filling-curve ordering), the synthetic data
generators (radius queries for geometric-graph construction), and the
Voronoi-based customer synthesis of Section VII-F.
"""

from repro.geometry.grid_index import GridIndex
from repro.geometry.hilbert_curve import hilbert_index, hilbert_point, hilbert_sort

__all__ = [
    "GridIndex",
    "hilbert_index",
    "hilbert_point",
    "hilbert_sort",
]
