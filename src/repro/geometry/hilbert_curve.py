"""Hilbert space-filling curve codec (from scratch).

The Hilbert baseline of the paper orders customers "using the spatial
order defined by a Hilbert space-filling curve [18]".  This module
implements the classic discrete 2-D Hilbert curve of order ``p``: a
bijection between cell coordinates ``(x, y)`` on a ``2^p x 2^p`` grid and
curve positions ``0 .. 4^p - 1``, using the rotate-and-flip recurrence.

The curve's locality property -- points close on the curve are close in
the plane -- is what makes consecutive-bucket clustering meaningful; the
test suite checks both bijectivity and a quantitative locality bound.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

DEFAULT_ORDER = 16


def _rotate(size: int, x: int, y: int, rx: int, ry: int) -> tuple[int, int]:
    """Rotate/flip a quadrant so the recurrence applies uniformly."""
    if ry == 0:
        if rx == 1:
            x = size - 1 - x
            y = size - 1 - y
        x, y = y, x
    return x, y


def hilbert_index(x: int, y: int, order: int = DEFAULT_ORDER) -> int:
    """Curve position of grid cell ``(x, y)`` on the order-``order`` curve.

    ``x`` and ``y`` must lie in ``0 .. 2**order - 1``.
    """
    side = 1 << order
    if not (0 <= x < side and 0 <= y < side):
        raise ValueError(
            f"({x}, {y}) outside the {side}x{side} grid of an order-{order} "
            f"Hilbert curve"
        )
    index = 0
    s = side >> 1
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        index += s * s * ((3 * rx) ^ ry)
        x, y = _rotate(s, x, y, rx, ry)
        s >>= 1
    return index


def hilbert_point(index: int, order: int = DEFAULT_ORDER) -> tuple[int, int]:
    """Inverse of :func:`hilbert_index`: grid cell of a curve position."""
    side = 1 << order
    if not (0 <= index < side * side):
        raise ValueError(
            f"index {index} outside 0..{side * side - 1} for order {order}"
        )
    x = y = 0
    t = index
    s = 1
    while s < side:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        x, y = _rotate(s, x, y, rx, ry)
        x += s * rx
        y += s * ry
        t //= 4
        s <<= 1
    return x, y


def hilbert_sort(
    points: np.ndarray | Sequence[Sequence[float]],
    order: int = DEFAULT_ORDER,
) -> np.ndarray:
    """Indices that sort 2-D points along the Hilbert curve.

    Coordinates are affinely mapped onto the ``2^order`` grid (the curve
    order defaults to 16, i.e. a 65536x65536 grid -- far finer than any
    instance in this library).  Degenerate extents (all points sharing an
    x or y) are handled by collapsing that axis to cell 0.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError(f"points must have shape (n, 2), got {pts.shape}")
    side = 1 << order
    lo = pts.min(axis=0)
    span = pts.max(axis=0) - lo
    span[span == 0.0] = 1.0
    cells = np.floor((pts - lo) / span * (side - 1)).astype(np.int64)
    cells = np.clip(cells, 0, side - 1)
    keys = np.fromiter(
        (hilbert_index(int(cx), int(cy), order) for cx, cy in cells),
        dtype=np.int64,
        count=len(cells),
    )
    return np.argsort(keys, kind="stable")
