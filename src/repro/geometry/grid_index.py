"""Uniform-grid spatial index for radius and nearest-point queries.

The synthetic network generators of Section VII-B connect every pair of
points closer than a cutoff radius; a naive all-pairs scan is quadratic
and dominates generation time.  :class:`GridIndex` buckets points into
square cells of the query radius' size so each radius query inspects only
the 3x3 neighborhood of cells.

The index is also used to snap generated customer positions to network
nodes and to find the candidate facility nearest to a bucket centroid in
the Hilbert baseline.
"""

from __future__ import annotations

import math
from collections import defaultdict
from collections.abc import Iterator, Sequence

import numpy as np


class GridIndex:
    """Static uniform-grid index over a fixed 2-D point set.

    Parameters
    ----------
    points:
        Array of shape ``(n, 2)``.
    cell_size:
        Grid cell edge length.  Pick the typical query radius; radius
        queries larger than the cell size still work but inspect more
        cells.
    """

    def __init__(
        self, points: np.ndarray | Sequence[Sequence[float]], cell_size: float
    ) -> None:
        self._points = np.asarray(points, dtype=np.float64)
        if self._points.ndim != 2 or self._points.shape[1] != 2:
            raise ValueError(
                f"points must have shape (n, 2), got {self._points.shape}"
            )
        if not (cell_size > 0):
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self._cell = float(cell_size)
        self._buckets: dict[tuple[int, int], list[int]] = defaultdict(list)
        for idx, (x, y) in enumerate(self._points):
            self._buckets[self._key(x, y)].append(idx)

    def _key(self, x: float, y: float) -> tuple[int, int]:
        return (int(math.floor(x / self._cell)), int(math.floor(y / self._cell)))

    @property
    def points(self) -> np.ndarray:
        """The indexed points."""
        return self._points

    def within_radius(self, x: float, y: float, radius: float) -> list[int]:
        """Indices of points within ``radius`` of ``(x, y)`` (inclusive)."""
        reach = int(math.ceil(radius / self._cell))
        cx, cy = self._key(x, y)
        out: list[int] = []
        r2 = radius * radius
        for gx in range(cx - reach, cx + reach + 1):
            for gy in range(cy - reach, cy + reach + 1):
                for idx in self._buckets.get((gx, gy), ()):
                    dx = self._points[idx, 0] - x
                    dy = self._points[idx, 1] - y
                    if dx * dx + dy * dy <= r2:
                        out.append(idx)
        return out

    def pairs_within(self, radius: float) -> Iterator[tuple[int, int, float]]:
        """Yield each unordered pair ``(i, j, distance)`` with ``i < j``
        at most ``radius`` apart.

        This is the geometric-graph edge enumeration; each pair is
        reported exactly once.
        """
        r2 = radius * radius
        for i in range(len(self._points)):
            x, y = self._points[i]
            for j in self.within_radius(x, y, radius):
                if j <= i:
                    continue
                dx = self._points[j, 0] - x
                dy = self._points[j, 1] - y
                d2 = dx * dx + dy * dy
                if d2 <= r2:
                    yield i, j, math.sqrt(d2)

    def nearest(self, x: float, y: float) -> tuple[int, float]:
        """Index and distance of the point nearest to ``(x, y)``.

        Scans concentric cell rings outward from the query cell.  A point
        in ring ``r`` lies at distance at least ``(r - 1) * cell_size``
        from the query, so once the best candidate beats that bound for
        the next unscanned ring, no farther ring can improve on it.
        """
        if len(self._points) == 0:
            raise ValueError("index is empty")
        cx, cy = self._key(x, y)
        max_ring = self._ring_bound(cx, cy)
        best_idx = -1
        best_d2 = math.inf
        for reach in range(max_ring + 1):
            if best_idx >= 0 and (reach - 1) * self._cell > math.sqrt(best_d2):
                break
            for gx in range(cx - reach, cx + reach + 1):
                for gy in range(cy - reach, cy + reach + 1):
                    if max(abs(gx - cx), abs(gy - cy)) != reach:
                        continue
                    for idx in self._buckets.get((gx, gy), ()):
                        dx = self._points[idx, 0] - x
                        dy = self._points[idx, 1] - y
                        d2 = dx * dx + dy * dy
                        if d2 < best_d2:
                            best_d2 = d2
                            best_idx = idx
        return best_idx, math.sqrt(best_d2)

    def _ring_bound(self, cx: int, cy: int) -> int:
        """Largest cell ring (Chebyshev radius) holding any bucket."""
        if not self._buckets:
            return 0
        return max(
            max(abs(gx - cx), abs(gy - cy)) for gx, gy in self._buckets
        )
