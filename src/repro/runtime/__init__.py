"""Deadline-bounded solver runtime: budgets, options, faults, fallbacks.

The runtime layer turns the library's solvers into service-grade calls:

* :mod:`repro.runtime.budget` -- cooperative wall-clock budgets threaded
  through solver hot loops as cheap checkpoints;
* :mod:`repro.runtime.options` -- the unified :class:`SolverOptions`
  surface every ``solve_*`` entry point accepts;
* :mod:`repro.runtime.faults` -- deterministic fault injection so the
  degradation paths stay testable in CI;
* :mod:`repro.runtime.runner` -- fallback chains
  (``exact -> wma -> hilbert``) under one shared deadline, always
  returning a feasible solution.
"""

from repro.errors import BudgetExceeded
from repro.runtime.budget import (
    Budget,
    active as active_budget,
    checkpoint,
    grace,
    use as use_budget,
)
from repro.runtime.faults import FaultPlan, use as use_faults
from repro.runtime.options import (
    SolverOptions,
    normalize_options,
    registered_methods,
    solver_api,
    spec_for,
    valid_options,
)
from repro.runtime.runner import (
    DEFAULT_CHAINS,
    ChainResult,
    SolverRun,
    chain_for,
    solve_with_fallback,
)

__all__ = [
    "Budget",
    "BudgetExceeded",
    "ChainResult",
    "DEFAULT_CHAINS",
    "FaultPlan",
    "SolverOptions",
    "SolverRun",
    "active_budget",
    "chain_for",
    "checkpoint",
    "grace",
    "normalize_options",
    "registered_methods",
    "solve_with_fallback",
    "solver_api",
    "spec_for",
    "use_budget",
    "use_faults",
    "valid_options",
]
