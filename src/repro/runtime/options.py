"""The unified solver options API.

Historically every ``solve_*`` entry point grew its own keyword surface:
``solve_hilbert(instance)`` took nothing, ``solve_random`` took only
``seed``, and ``time_limit`` existed only on the exact solver.
:class:`SolverOptions` normalizes that surface: one dataclass carrying
the *universal* options every solver accepts (``seed``, ``time_limit``,
``workers``, ``distance_cache``) plus an ``extras`` dict for
solver-specific knobs (``tie_breaking``, ``mip_gap``, ``pool_size``,
...).

Entry points are declared with the :func:`solver_api` decorator, which

* accepts ``options=SolverOptions(...)`` (or an equivalent dict) and
  direct universal keyword arguments uniformly on every solver;
* keeps the old per-solver keywords working as deprecated shims
  (``DeprecationWarning``, forwarded into ``extras``);
* rejects unknown keywords with a :class:`~repro.errors.SolverError`
  naming the valid options for that method;
* installs the cross-cutting scopes implied by the options: a
  cooperative :class:`~repro.runtime.budget.Budget` for ``time_limit``
  and a :class:`~repro.network.distcache.DistanceCache` scope for
  ``distance_cache``.

Universal options a particular solver has no use for (``seed`` on the
deterministic exact solver, ``workers`` on serial heuristics) are
accepted and ignored, so callers can hold one ``SolverOptions`` and pass
it to any method -- the property fallback chains rely on.
"""

from __future__ import annotations

import functools
import warnings
from collections.abc import Callable, Iterator, Mapping
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field, fields, replace
from typing import Any

from repro.errors import SolverError
from repro.runtime.budget import Budget, use as use_budget

__all__ = [
    "SolverOptions",
    "MethodSpec",
    "UNIVERSAL_OPTIONS",
    "normalize_options",
    "registered_methods",
    "solver_api",
    "spec_for",
    "valid_options",
]

#: Options every solver entry point accepts (ignored where meaningless).
UNIVERSAL_OPTIONS = ("seed", "time_limit", "workers", "distance_cache", "oracle")


@dataclass
class SolverOptions:
    """Options accepted uniformly by every ``solve_*`` entry point.

    Attributes
    ----------
    seed:
        Seed for randomized solvers (``wma-naive``, ``random``,
        ``kmedian-ls``, ``wma-ls``); ignored by deterministic ones.
    time_limit:
        Cooperative wall-clock budget in seconds, enforced for *every*
        method through :mod:`repro.runtime.budget` (the exact solver
        additionally forwards it to HiGHS).  Solvers holding a feasible
        partial result return a degraded best-so-far solution when the
        budget expires; others raise :class:`~repro.errors.BudgetExceeded`.
    workers:
        Process count for the distance fan-out of worker-aware solvers
        (see :mod:`repro.network.parallel`); ignored by the rest.
    distance_cache:
        ``True`` solves under a fresh
        :class:`~repro.network.distcache.DistanceCache` scope; an
        existing cache instance is used as-is (shared across calls).
    oracle:
        Distance-oracle control (:mod:`repro.network.oracle`): ``True``
        or ``"alt"`` solves under the instance network's default ALT
        oracle and ``"ch"`` under its default contraction hierarchy
        (each built or loaded once per network), an
        :class:`~repro.network.oracle.AltOracle` or
        :class:`~repro.network.ch.ContractionHierarchy` instance is
        used as-is after a fingerprint check, ``False``/``"off"``
        disables, and the default ``None`` defers to the
        ``REPRO_ORACLE`` environment variable (``alt|ch|off``).
        Oracle-served distances are bit-identical to kernel Dijkstra
        runs, so objectives never depend on this knob.
    extras:
        Solver-specific options (e.g. ``tie_breaking`` for WMA,
        ``mip_gap`` for exact, ``pool_size`` for ``kmedian-ls``).  Keys
        are validated against the target method; unknown keys raise
        :class:`~repro.errors.SolverError`.
    """

    seed: int | None = None
    time_limit: float | None = None
    workers: int | None = None
    distance_cache: Any = None
    oracle: Any = None
    extras: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def coerce(cls, value: SolverOptions | Mapping[str, Any] | None) -> SolverOptions:
        """Build a :class:`SolverOptions` from ``None``, a dict, or itself.

        Dict keys that are not dataclass fields land in ``extras``, so
        ``{"seed": 1, "tie_breaking": "cost"}`` round-trips naturally.
        """
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            known = {f.name for f in fields(cls)}
            kw: dict[str, Any] = {
                k: v for k, v in value.items() if k in known
            }
            extras = {k: v for k, v in value.items() if k not in known}
            extras.update(dict(kw.get("extras") or {}))
            kw["extras"] = extras
            return cls(**kw)
        raise SolverError(
            f"options must be a SolverOptions or a mapping, "
            f"got {type(value).__name__}"
        )

    def merged(self, **overrides: Any) -> SolverOptions:
        """Copy with ``overrides`` applied (``extras`` merge, not replace)."""
        extras = dict(self.extras)
        extras.update(overrides.pop("extras", {}))
        return replace(self, extras=extras, **overrides)


@dataclass(frozen=True)
class MethodSpec:
    """Declared option surface of one registered solver method.

    ``uses`` lists the universal options the implementation actually
    consumes (forwarded as keyword arguments); the others are accepted
    and ignored.  ``extras`` lists the solver-specific keywords.
    """

    method: str
    uses: frozenset[str]
    extras: frozenset[str]


_SPECS: dict[str, MethodSpec] = {}


def registered_methods() -> list[str]:
    """Names of all methods declared through :func:`solver_api`."""
    return sorted(_SPECS)


def spec_for(method: str) -> MethodSpec:
    """The :class:`MethodSpec` of ``method``.

    Raises
    ------
    SolverError
        When ``method`` was never declared via :func:`solver_api`.
    """
    try:
        return _SPECS[method]
    except KeyError:
        raise SolverError(
            f"unknown solver method {method!r}; registered methods: "
            f"{', '.join(registered_methods())}"
        ) from None


def valid_options(method: str) -> list[str]:
    """Every option name ``method`` accepts (universal + extras), sorted."""
    spec = spec_for(method)
    return sorted(UNIVERSAL_OPTIONS) + sorted(spec.extras)


def normalize_options(
    method: str,
    options: SolverOptions | Mapping[str, Any] | None = None,
    kwargs: Mapping[str, Any] | None = None,
    *,
    warn_legacy: bool = True,
) -> SolverOptions:
    """Merge ``options`` and direct keyword arguments for ``method``.

    Universal keywords (``seed``, ``time_limit``, ``workers``,
    ``distance_cache``) override the corresponding ``options`` fields.
    Solver-specific keywords are accepted as deprecated shims
    (``DeprecationWarning`` when ``warn_legacy``) and merged into
    ``extras``.  Anything else raises :class:`~repro.errors.SolverError`
    naming the valid options for ``method``.
    """
    spec = spec_for(method)
    opts = SolverOptions.coerce(options)
    extras = dict(opts.extras)

    unknown = sorted(set(extras) - spec.extras)
    if unknown:
        raise SolverError(
            f"solver {method!r} does not accept extra option(s) "
            f"{', '.join(repr(u) for u in unknown)}; valid options for "
            f"{method!r}: {', '.join(valid_options(method))}"
        )

    updates: dict[str, Any] = {}
    for key, value in (kwargs or {}).items():
        if key in UNIVERSAL_OPTIONS:
            updates[key] = value
        elif key in spec.extras:
            if warn_legacy:
                warnings.warn(
                    f"passing {key!r} directly to solve_{method.replace('-', '_')} "
                    f"is deprecated; use options=SolverOptions(extras="
                    f"{{{key!r}: ...}}) instead",
                    DeprecationWarning,
                    stacklevel=3,
                )
            extras[key] = value
        else:
            raise SolverError(
                f"solver {method!r} got unknown option {key!r}; valid "
                f"options for {method!r}: {', '.join(valid_options(method))}"
            )
    return replace(opts, extras=extras, **updates)


@contextmanager
def option_scopes(
    opts: SolverOptions, instance: Any = None
) -> Iterator[None]:
    """Enter the cross-cutting scopes implied by ``opts``.

    ``time_limit`` installs a cooperative :class:`Budget` (clamped to any
    enclosing budget); ``distance_cache`` installs a distance-cache
    scope; ``oracle`` (resolved against ``instance.network``, including
    the ``REPRO_ORACLE`` environment default) installs a distance-oracle
    scope of the resolved kind.  All are no-ops when unset.
    """
    with ExitStack() as stack:
        if opts.time_limit is not None:
            stack.enter_context(use_budget(Budget(float(opts.time_limit))))
        cache = opts.distance_cache
        if cache:
            # Local import: distcache pulls in the network stack, which
            # must stay importable without repro.runtime and vice versa.
            from repro.network import distcache

            if cache is True:
                cache = distcache.DistanceCache()
            stack.enter_context(distcache.use(cache))
        if opts.oracle is not False:
            # Local import for the same layering reason as distcache.
            from repro.network import oracle as oracle_mod

            resolved = oracle_mod.resolve(
                opts.oracle, getattr(instance, "network", None)
            )
            if resolved is not None:
                stack.enter_context(oracle_mod.use(resolved))
        yield


def solver_api(
    method: str,
    *,
    uses: tuple[str, ...] = (),
    extras: tuple[str, ...] = (),
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Declare a ``solve_*`` function as a normalized solver entry point.

    The wrapped function keeps its original signature for internal use;
    the public entry accepts ``(instance, *, options=None, **kwargs)``,
    normalizes via :func:`normalize_options`, enters the option scopes,
    and forwards only the universal options named in ``uses`` plus the
    validated ``extras`` to the implementation.

    The wrapper carries ``__solver_method__`` and ``__solver_spec__``
    attributes for introspection (the signature-consistency tests).
    """
    bad = sorted(set(uses) - set(UNIVERSAL_OPTIONS))
    if bad:
        raise ValueError(f"uses must name universal options, got {bad}")
    spec = MethodSpec(method, frozenset(uses), frozenset(extras))

    def decorate(inner: Callable[..., Any]) -> Callable[..., Any]:
        _SPECS[method] = spec

        @functools.wraps(inner)
        def entry(instance: Any, *, options: Any = None, **kwargs: Any) -> Any:
            opts = normalize_options(method, options, kwargs)
            call: dict[str, Any] = {}
            for name in spec.uses:
                value = getattr(opts, name)
                if value is not None:
                    call[name] = value
            call.update(opts.extras)
            with option_scopes(opts, instance):
                return inner(instance, **call)

        entry.__solver_method__ = method  # type: ignore[attr-defined]
        entry.__solver_spec__ = spec  # type: ignore[attr-defined]
        return entry

    return decorate
