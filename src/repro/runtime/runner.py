"""Deadline-bounded solver execution with fallback chains.

:func:`solve_with_fallback` is the runtime's front door: it walks a
chain of solver methods (``exact -> wma -> hilbert``) under one shared
wall-clock :class:`~repro.runtime.budget.Budget`, records every attempt
as a :class:`SolverRun`, and returns the first feasible solution a
method produces.  An attempt that raises any
:class:`~repro.errors.ReproError` -- a budget expiry, an infeasibility
proof from the exact solver, a matching failure -- is recorded with its
reason and the chain falls through to the next method.

The last method of a chain runs inside a
:func:`~repro.runtime.budget.grace` scope, so even a fully consumed
deadline still yields an answer from the terminal (cheap) fallback;
default chains all end in ``hilbert``, which needs no budget
checkpoints.  Solution validation likewise runs under grace: it walks
the same checkpointed Dijkstra kernels as the solvers, and a validation
pass must never be killed by the deadline it is certifying.

Counters (``runtime.attempts``, ``runtime.fallbacks``,
``runtime.budget_exceeded``, ``runtime.degraded_returns``) and one span
per attempt go through the ambient :mod:`repro.obs` layer.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.errors import BudgetExceeded, ReproError, SolverError
from repro.obs import metrics, tracing
from repro.runtime import budget as _budget, faults as _faults
from repro.runtime.options import SolverOptions, option_scopes, spec_for

__all__ = [
    "DEFAULT_CHAINS",
    "ChainResult",
    "SolverRun",
    "chain_for",
    "solve_with_fallback",
]

#: Default fallback chain per entry method.  Ordered strongest-first;
#: every chain ends in ``hilbert``, the checkpoint-free terminal
#: fallback that answers even on a fully consumed deadline.
DEFAULT_CHAINS: dict[str, tuple[str, ...]] = {
    "exact": ("exact", "wma", "hilbert"),
    "wma": ("wma", "hilbert"),
    "wma-uf": ("wma-uf", "wma", "hilbert"),
    "wma-ls": ("wma-ls", "wma", "hilbert"),
    "wma-naive": ("wma-naive", "hilbert"),
    "brnn": ("brnn", "hilbert"),
    "kmedian-ls": ("kmedian-ls", "hilbert"),
    "random": ("random", "hilbert"),
    "hilbert": ("hilbert",),
}


def chain_for(
    method: str, fallback: Any = None
) -> tuple[str, ...]:
    """Resolve a ``fallback=`` argument into a concrete method chain.

    ``None``, ``True``, or ``"auto"`` pick the default chain for
    ``method``; ``False`` or an empty sequence disable fallback (the
    chain is just ``(method,)``); a string is split on commas; any other
    sequence is taken as the explicit chain.  ``method`` itself always
    leads, and duplicates are dropped order-preservingly.
    """
    if fallback is None or fallback is True or fallback == "auto":
        return DEFAULT_CHAINS.get(method, (method, "hilbert"))
    if fallback is False:
        return (method,)
    if isinstance(fallback, str):
        parts = [p.strip() for p in fallback.split(",") if p.strip()]
    else:
        parts = [str(p) for p in fallback]
    if not parts:
        return (method,)
    chain = tuple(dict.fromkeys([method, *parts]))
    for m in chain:
        spec_for(m)  # raises SolverError for unknown methods
    return chain


@dataclass
class SolverRun:
    """Record of one attempt within a fallback chain."""

    method: str
    status: str  # "ok" | "timeout" | "error"
    elapsed_sec: float
    error: str | None = None
    degraded: bool = False


@dataclass
class ChainResult:
    """Outcome of a full :func:`solve_with_fallback` chain."""

    solution: Any
    method: str
    requested: str
    runs: list[SolverRun] = field(default_factory=list)
    elapsed_sec: float = 0.0

    @property
    def fallbacks(self) -> int:
        """How many methods failed before one answered."""
        return max(0, len(self.runs) - 1)

    @property
    def degraded(self) -> bool:
        """Whether the winning run returned a best-so-far solution."""
        return bool(self.runs and self.runs[-1].degraded)


def _attempt_options(method: str, opts: SolverOptions) -> SolverOptions:
    """Narrow chain-level options to what one attempt should receive.

    Extras belonging to other methods are dropped (an ``exact`` chain's
    ``mip_gap`` means nothing to ``wma``); ``time_limit`` is stripped
    because the chain budget, already active, governs every attempt --
    re-entering it per attempt would reset the clock.  ``distance_cache``
    is likewise stripped: the runner owns that scope so the cache spans
    all attempts.
    """
    spec = spec_for(method)
    extras = {k: v for k, v in opts.extras.items() if k in spec.extras}
    return SolverOptions(
        seed=opts.seed,
        time_limit=None,
        workers=opts.workers,
        distance_cache=None,
        extras=extras,
    )


def solve_with_fallback(
    instance: Any,
    methods: Sequence[str] | str,
    *,
    deadline: float | None = None,
    options: SolverOptions | None = None,
    validate: bool = True,
) -> ChainResult:
    """Solve ``instance`` by the first method of ``methods`` that succeeds.

    Parameters
    ----------
    instance:
        The :class:`~repro.core.instance.MCFSInstance` to solve.
    methods:
        The fallback chain, e.g. ``("exact", "wma", "hilbert")``; a bare
        string is treated as a single-method chain.
    deadline:
        Overall wall-clock budget in seconds shared by the whole chain.
        Falls back to ``options.time_limit``; ``None`` means unbounded.
    options:
        Chain-level :class:`SolverOptions`; extras are forwarded only to
        the methods that declare them.
    validate:
        Check each produced solution with
        :func:`~repro.core.validation.validate_solution` before
        accepting it; a failing solution counts as a failed attempt and
        the chain falls through.

    Returns
    -------
    ChainResult
        The winning solution plus per-attempt :class:`SolverRun`
        records.  ``solution.meta["runtime"]`` summarizes the chain.

    Raises
    ------
    ReproError
        Only when *every* method of the chain failed; the last error is
        re-raised.
    """
    from repro import SOLVERS  # local: repro.__init__ imports this module

    chain = (methods,) if isinstance(methods, str) else tuple(methods)
    if not chain:
        raise SolverError("fallback chain is empty")
    for m in chain:
        spec_for(m)

    opts = SolverOptions.coerce(options)
    limit = deadline if deadline is not None else opts.time_limit
    plan = _faults.active()
    registry = metrics.active()
    runs: list[SolverRun] = []
    started = time.perf_counter()
    last_exc: ReproError | None = None

    def attempt(idx: int, method: str) -> Any:
        registry.counter("runtime.attempts").add()
        if plan is not None:
            plan.raise_for_attempt(method, idx)
        solver = SOLVERS[method]
        attempt_opts = _attempt_options(method, opts)
        solution = solver(instance, options=attempt_opts)
        if validate:
            from repro.core.validation import validate_solution

            with _budget.grace():
                validate_solution(instance, solution)
        return solution

    def run_chain() -> ChainResult:
        nonlocal last_exc
        for idx, method in enumerate(chain):
            final = idx == len(chain) - 1
            t0 = time.perf_counter()
            try:
                with tracing.span(f"runtime.attempt.{method}"):
                    if final and len(chain) > 1:
                        # Terminal fallback must answer even with the
                        # deadline fully consumed.
                        with _budget.grace():
                            solution = attempt(idx, method)
                    else:
                        solution = attempt(idx, method)
            except ReproError as exc:
                elapsed = time.perf_counter() - t0
                status = (
                    "timeout" if isinstance(exc, BudgetExceeded) else "error"
                )
                runs.append(
                    SolverRun(
                        method=method,
                        status=status,
                        elapsed_sec=elapsed,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
                last_exc = exc
                if not final:
                    registry.counter("runtime.fallbacks").add()
                continue
            elapsed = time.perf_counter() - t0
            degraded = bool(getattr(solution, "meta", {}).get("degraded"))
            runs.append(
                SolverRun(
                    method=method,
                    status="ok",
                    elapsed_sec=elapsed,
                    degraded=degraded,
                )
            )
            total = time.perf_counter() - started
            solution.meta["runtime"] = {
                "requested": chain[0],
                "method_used": method,
                "fallbacks": len(runs) - 1,
                "degraded": degraded,
                "attempts": [
                    {
                        "method": r.method,
                        "status": r.status,
                        "elapsed_sec": r.elapsed_sec,
                        "error": r.error,
                    }
                    for r in runs
                ],
                "deadline": limit,
            }
            return ChainResult(
                solution=solution,
                method=method,
                requested=chain[0],
                runs=runs,
                elapsed_sec=total,
            )
        assert last_exc is not None
        raise last_exc

    with tracing.span("runtime.chain"):
        scoped_opts = SolverOptions(distance_cache=opts.distance_cache)
        with option_scopes(scoped_opts):
            if limit is not None:
                with _budget.use(_budget.Budget(float(limit))):
                    return run_chain()
            return run_chain()
