"""Cooperative wall-clock budgets for deadline-bounded solver runs.

A :class:`Budget` is a deadline plus a cheap checkpoint protocol.  Solver
hot loops call the module-level :func:`checkpoint` -- a no-op costing one
global load and a ``None`` check when no budget is installed -- and the
active budget raises :class:`~repro.errors.BudgetExceeded` at the first
checkpoint past its deadline.  Enforcement is *cooperative*: nothing is
interrupted mid-operation, so solver state is always consistent when the
exception fires, and solvers that hold a feasible partial result can
catch it and salvage a best-so-far solution inside a :func:`grace` scope
(which suspends enforcement for the salvage phase).

Checkpoints are placed at per-heavy-operation granularity (one Dijkstra
run, one WMA iteration, one local-search trial), so the enabled overhead
is one ``time.perf_counter`` read per operation -- well under 1% -- and
budget-free runs pay only the ``None`` check.  Ultra-hot sites can batch
further via ``Budget(stride=N)``: the clock is then read every ``N``
checkpoint ticks.

Scoping follows the :mod:`repro.obs.metrics` pattern: :func:`use`
installs a budget for a ``with`` block, :func:`active` returns the
current one.  Nested budgets never *extend* an enclosing deadline --
entering a scope clamps the inner deadline to the outer one -- so a
fallback chain's overall deadline always dominates per-solver limits.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager

from repro.errors import BudgetExceeded
from repro.obs import metrics

__all__ = [
    "Budget",
    "BudgetExceeded",
    "active",
    "checkpoint",
    "grace",
    "use",
]

_active: Budget | None = None

#: Seconds slept on every deadline check; set by :mod:`repro.runtime.faults`
#: to simulate slow Dijkstra sweeps.  Always 0.0 outside fault scopes.
_fault_delay: float = 0.0


def _set_fault_delay(seconds: float) -> float:
    """Install an injected per-check delay; returns the previous value."""
    global _fault_delay
    previous = _fault_delay
    _fault_delay = max(0.0, float(seconds))
    return previous


class Budget:
    """A wall-clock deadline checked cooperatively from solver hot loops.

    Parameters
    ----------
    seconds:
        Budget length; the deadline is ``now + seconds``.  Non-positive
        values produce an already-expired budget (the next checkpoint
        raises), which is how a fallback chain handles a method whose
        predecessors consumed the whole deadline.
    stride:
        Read the clock only every ``stride`` checkpoint ticks (default 1:
        every checkpoint).  Raising it trades deadline precision for less
        overhead at ultra-hot call sites.
    """

    __slots__ = ("limit", "started", "deadline", "stride", "_ticks")

    def __init__(self, seconds: float, *, stride: int = 1) -> None:
        self.limit = float(seconds)
        self.started = time.perf_counter()
        self.deadline = self.started + self.limit
        self.stride = max(1, int(stride))
        self._ticks = 0

    def elapsed(self) -> float:
        """Seconds since the budget was created."""
        return time.perf_counter() - self.started

    def remaining(self) -> float:
        """Seconds until the deadline (negative once expired)."""
        return self.deadline - time.perf_counter()

    def expired(self) -> bool:
        """Whether the deadline has passed (no exception raised)."""
        return time.perf_counter() >= self.deadline

    def check(self) -> None:
        """Read the clock and raise :class:`BudgetExceeded` past deadline."""
        if _fault_delay:
            time.sleep(_fault_delay)
        if time.perf_counter() >= self.deadline:
            metrics.active().counter("runtime.budget_exceeded").add()
            raise BudgetExceeded(
                f"wall-clock budget of {self.limit:.3f}s exhausted "
                f"({self.elapsed():.3f}s elapsed)"
            )

    def tick(self, weight: int = 1) -> None:
        """Accumulate ``weight`` units of work; check every ``stride``."""
        self._ticks += weight
        if self._ticks >= self.stride:
            self._ticks = 0
            self.check()

    def __repr__(self) -> str:
        return (
            f"Budget(limit={self.limit:.3f}s, "
            f"remaining={self.remaining():.3f}s)"
        )


def active() -> Budget | None:
    """The budget hot loops should honor right now (``None`` = unbounded)."""
    return _active


def checkpoint(weight: int = 1) -> None:
    """Cooperative deadline checkpoint for solver hot loops.

    A no-op when no budget is active; otherwise forwards to the active
    budget's :meth:`Budget.tick`, which raises
    :class:`~repro.errors.BudgetExceeded` once the deadline has passed.
    """
    b = _active
    if b is not None:
        b.tick(weight)


@contextmanager
def use(budget: Budget) -> Iterator[Budget]:
    """Install ``budget`` as the active one within the ``with`` block.

    Scopes nest; an inner budget may only *shorten* the effective
    deadline (it is clamped to the enclosing one on entry), so an outer
    chain deadline always dominates per-solver ``time_limit`` scopes.
    """
    global _active
    previous = _active
    if previous is not None and previous.deadline < budget.deadline:
        budget.deadline = previous.deadline
    _active = budget
    try:
        yield budget
    finally:
        _active = previous


@contextmanager
def grace() -> Iterator[None]:
    """Suspend deadline enforcement within the ``with`` block.

    Used for salvage phases (turning an interrupted run into a feasible
    best-so-far solution), for validating an already-produced solution,
    and for a fallback chain's terminal attempt -- work that must finish
    to uphold the "always return something feasible" contract.
    """
    global _active
    previous = _active
    _active = None
    try:
        yield
    finally:
        _active = previous
