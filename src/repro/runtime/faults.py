"""Deterministic fault injection for exercising degradation paths.

Fallback chains and degraded returns are the parts of a solver runtime
that production traffic exercises rarely and CI must exercise always.  A
:class:`FaultPlan` makes those paths reachable on demand:

* *forced timeouts* -- a method listed in ``timeout_methods`` (or hit by
  the probabilistic ``timeout_rate``) raises
  :class:`~repro.errors.BudgetExceeded` at attempt start, as if its
  first checkpoint had fired past the deadline;
* *injected solver exceptions* -- ``error_methods`` maps a method name
  to an error kind (``"solver"``, ``"matching"``, ``"infeasible"``,
  ``"timeout"``) raised at attempt start;
* *slow Dijkstra* -- ``dijkstra_delay_sec`` adds a sleep to every
  deadline check of the active :class:`~repro.runtime.budget.Budget`,
  simulating a network large enough that single relaxation sweeps eat
  visible wall-clock, which drives *real* checkpoint-triggered timeouts
  through the solver hot loops rather than synthetic raises.

Everything is seed-driven: the probabilistic decision for attempt ``i``
of method ``m`` hashes ``(seed, m, i)``, so a plan replays identically
across runs and processes.  Plans are scoped like budgets and metric
registries -- :func:`use` installs one for a ``with`` block, and no plan
is ever active unless a test (or the CI ``runtime-degradation`` job)
installs one.
"""

from __future__ import annotations

import random
from collections.abc import Iterator, Mapping
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import (
    BudgetExceeded,
    InfeasibleInstanceError,
    MatchingError,
    SolverError,
)
from repro.runtime import budget as _budget

__all__ = ["FaultPlan", "active", "use"]

#: Error kinds an ``error_methods`` entry may name.
_ERROR_KINDS = {
    "solver": SolverError,
    "matching": MatchingError,
    "infeasible": InfeasibleInstanceError,
    "timeout": BudgetExceeded,
}


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected solver faults.

    Parameters
    ----------
    seed:
        Drives every probabilistic decision; two plans with equal fields
        inject identically.
    timeout_methods:
        Methods that always raise :class:`BudgetExceeded` at attempt
        start.
    error_methods:
        Mapping of method name to error kind (a key of
        ``{"solver", "matching", "infeasible", "timeout"}``) raised at
        attempt start.
    timeout_rate:
        Probability in ``[0, 1]`` that any given attempt times out,
        decided by ``hash(seed, method, attempt)`` -- deterministic per
        (plan, method, attempt) triple.
    dijkstra_delay_sec:
        Sleep added to every budget deadline check while the plan is
        active; simulates slow relaxation sweeps on a huge network.
    """

    seed: int = 0
    timeout_methods: frozenset[str] = frozenset()
    error_methods: Mapping[str, str] = field(default_factory=dict)
    timeout_rate: float = 0.0
    dijkstra_delay_sec: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "timeout_methods", frozenset(self.timeout_methods)
        )
        object.__setattr__(self, "error_methods", dict(self.error_methods))
        bad = sorted(
            kind
            for kind in self.error_methods.values()
            if kind not in _ERROR_KINDS
        )
        if bad:
            raise ValueError(
                f"unknown fault kind(s) {bad}; choose from "
                f"{sorted(_ERROR_KINDS)}"
            )

    def _times_out(self, method: str, attempt: int) -> bool:
        if method in self.timeout_methods:
            return True
        if self.timeout_rate <= 0.0:
            return False
        rng = random.Random(f"{self.seed}:{method}:{attempt}")
        return rng.random() < self.timeout_rate

    def raise_for_attempt(self, method: str, attempt: int) -> None:
        """Raise the fault scheduled for ``(method, attempt)``, if any.

        Called by the runner at the start of each chain attempt.  Raises
        nothing for attempts the plan leaves alone.
        """
        kind = self.error_methods.get(method)
        if kind is not None:
            exc = _ERROR_KINDS[kind]
            raise exc(
                f"injected {kind} fault for method {method!r} "
                f"(attempt {attempt})"
            )
        if self._times_out(method, attempt):
            raise BudgetExceeded(
                f"injected timeout for method {method!r} (attempt {attempt})"
            )


_active: FaultPlan | None = None


def active() -> FaultPlan | None:
    """The fault plan in effect right now (``None`` almost always)."""
    return _active


@contextmanager
def use(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the ``with`` block.

    Also arms the plan's ``dijkstra_delay_sec`` on the budget module, so
    deadline checks slow down while the plan is active.
    """
    global _active
    previous = _active
    _active = plan
    previous_delay = _budget._set_fault_delay(plan.dijkstra_delay_sec)
    try:
        yield plan
    finally:
        _active = previous
        _budget._set_fault_delay(previous_delay)
