"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Raised for structurally invalid graph inputs or queries.

    Examples include referencing a node outside ``0..n-1``, negative edge
    weights, or requesting coordinates from a graph that has none.
    """


class InfeasibleInstanceError(ReproError):
    """Raised when an MCFS instance admits no feasible solution.

    An instance is infeasible when some connected component of the network
    hosts more customers than the total capacity of the best ``k_g``
    candidate facilities available in that component (Theorem 3 of the
    paper), or when the global budget ``k`` cannot be split across
    components so that each receives its required minimum.
    """


class InvalidInstanceError(ReproError):
    """Raised when an MCFS instance violates basic structural contracts.

    Examples: a customer or facility node id outside the graph, a
    non-positive capacity, ``k <= 0``, or duplicate candidate facilities.
    """


class MatchingError(ReproError):
    """Raised when the bipartite matcher cannot satisfy a demand.

    This signals that a customer cannot reach any facility with residual
    capacity through the network -- either the network component is
    exhausted or the candidate set itself is.
    """


class SolverError(ReproError):
    """Raised when the exact MILP backend fails or reports non-optimality.

    Also the base class for solver-API misuse (unknown options passed to
    a ``solve_*`` entry point) and for :class:`BudgetExceeded`, so one
    ``except SolverError`` catches every "the solver could not finish"
    condition.
    """


class BudgetExceeded(SolverError):
    """Raised when a cooperative wall-clock budget expires mid-solve.

    Solver hot loops call :func:`repro.runtime.budget.checkpoint`; once
    the active :class:`repro.runtime.budget.Budget` deadline passes, the
    next checkpoint raises this.  Solvers that hold a feasible partial
    result catch it and return a degraded (best-so-far) solution; the
    fallback chain in :mod:`repro.runtime.runner` catches whatever
    propagates and falls through to the next method.
    """
