"""Typed mutations of a served MCFS deployment, plus trace I/O.

The serving engine (:mod:`repro.serve.engine`) consumes *batches* of the
four mutation kinds the paper's dynamic-reallocation motivation implies:

* :class:`CustomerArrive` -- a new demand point appears at a network node;
* :class:`CustomerDepart` -- a previously admitted customer (identified by
  the handle its arrival returned) stops needing service;
* :class:`CapacityChange` -- a selected facility's capacity is re-rated;
* :class:`EdgeRetime` -- a road segment's travel time changes (congestion,
  closure lifting), invalidating every cached network distance.

Mutations are plain frozen dataclasses so batches can be recorded,
replayed, and diffed.  A *trace* is a JSON-lines file with one mutation
per line (``{"kind": ..., ...fields}``); :func:`save_trace` /
:func:`load_trace` round-trip it and ``repro serve --trace`` replays it.
:func:`synthesize_trace` generates a seeded, always-applicable workload
for soak tests and benchmarks.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from dataclasses import asdict, dataclass

import numpy as np

from repro.errors import InvalidInstanceError
from repro.network.graph import Network
from repro.runtime.budget import checkpoint as _budget_checkpoint


@dataclass(frozen=True)
class CustomerArrive:
    """A new customer appears at ``node`` and must be served."""

    node: int


@dataclass(frozen=True)
class CustomerDepart:
    """The customer identified by ``handle`` stops needing service."""

    handle: int


@dataclass(frozen=True)
class CapacityChange:
    """Re-rate the selected facility located at node ``facility``.

    Like arrivals and retimes, the mutation references a *network node
    id* (the facility's location), so traces stay meaningful without the
    instance's candidate-list indexing.
    """

    facility: int
    capacity: int


@dataclass(frozen=True)
class EdgeRetime:
    """Change the weight of the network edge ``(u, v)`` to ``weight``."""

    u: int
    v: int
    weight: float


Mutation = CustomerArrive | CustomerDepart | CapacityChange | EdgeRetime

_KINDS: dict[str, type] = {
    "arrive": CustomerArrive,
    "depart": CustomerDepart,
    "capacity": CapacityChange,
    "retime": EdgeRetime,
}
_KIND_OF = {cls: kind for kind, cls in _KINDS.items()}


def mutation_kind(mutation: Mutation) -> str:
    """The trace-format kind tag of a mutation instance."""
    return _KIND_OF[type(mutation)]


def save_trace(path: str, mutations: Iterable[Mutation]) -> int:
    """Write mutations to a JSON-lines trace file; returns the count."""
    count = 0
    with open(path, "w") as fh:
        for mutation in mutations:
            _budget_checkpoint()
            row = {"kind": mutation_kind(mutation), **asdict(mutation)}
            fh.write(json.dumps(row, sort_keys=True) + "\n")
            count += 1
    return count


def load_trace(path: str) -> list[Mutation]:
    """Parse a JSON-lines trace file back into mutation objects."""
    out: list[Mutation] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            _budget_checkpoint()
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            kind = row.pop("kind", None)
            cls = _KINDS.get(kind)
            if cls is None:
                raise InvalidInstanceError(
                    f"{path}:{lineno}: unknown mutation kind {kind!r}"
                )
            try:
                out.append(cls(**row))
            except TypeError as exc:
                raise InvalidInstanceError(
                    f"{path}:{lineno}: bad {kind!r} mutation: {exc}"
                ) from None
    return out


def synthesize_trace(
    network: Network,
    n_mutations: int,
    *,
    facility_nodes: Sequence[int],
    capacities: Sequence[int],
    start_handle: int = 0,
    customer_nodes: Sequence[int] = (),
    seed: int = 0,
    p_depart: float = 0.3,
    p_capacity: float = 0.05,
    p_retime: float = 0.0,
) -> list[Mutation]:
    """Generate a seeded mutation workload that always applies cleanly.

    The synthesizer mirrors the engine's handle numbering (sequential from
    ``start_handle``, which should be the number of customers already
    admitted; pass their nodes as ``customer_nodes`` so occupancy is
    tracked exactly) so departures always name a live handle.  Capacity
    changes only *increase* capacity, arrivals only target nodes in
    components that host a facility, and an arrival into a saturated
    component is emitted as a capacity increase there instead, so a
    replay never rejects -- rejection paths are exercised by the unit
    tests, not the soak trace.  Retimes rescale a random edge's weight by
    a factor in ``[0.5, 2.0)``.
    """
    rng = np.random.default_rng(seed)
    facility_nodes = [int(f) for f in facility_nodes]
    caps = [int(c) for c in capacities]
    # Restrict arrivals to nodes that can reach a facility: sample from
    # the components of the facility nodes.
    from repro.network.components import component_labels

    labels = component_labels(network)
    served = np.isin(labels, np.unique(labels[facility_nodes]))
    served_nodes = np.flatnonzero(served)

    # Per-component capacity vs occupancy, so a saturated component's
    # arrivals become capacity increases rather than engine rejections.
    comp_caps: dict[int, int] = {}
    pos_by_comp: dict[int, list[int]] = {}
    for pos, fnode in enumerate(facility_nodes):
        comp = int(labels[fnode])
        comp_caps[comp] = comp_caps.get(comp, 0) + caps[pos]
        pos_by_comp.setdefault(comp, []).append(pos)
    comp_alive = dict.fromkeys(comp_caps, 0)
    node_of: dict[int, int | None] = {
        h: int(customer_nodes[h]) if h < len(customer_nodes) else None
        for h in range(start_handle)
    }
    for node in node_of.values():
        if node is not None:
            comp_alive[int(labels[node])] += 1

    edge_list = list(network.edges()) if p_retime > 0 else []
    alive = list(range(start_handle))
    next_handle = start_handle
    out: list[Mutation] = []

    def _grow(comp: int) -> None:
        positions = pos_by_comp[comp]
        pos = positions[int(rng.integers(len(positions)))]
        delta = int(rng.integers(1, 4))
        caps[pos] += delta
        comp_caps[comp] += delta
        out.append(CapacityChange(facility_nodes[pos], caps[pos]))

    for _ in range(int(n_mutations)):
        _budget_checkpoint()
        roll = float(rng.random())
        if roll < p_retime and edge_list:
            u, v, w = edge_list[int(rng.integers(len(edge_list)))]
            out.append(
                EdgeRetime(int(u), int(v), float(w) * float(rng.uniform(0.5, 2.0)))
            )
        elif roll < p_retime + p_capacity:
            comps = sorted(comp_caps)
            _grow(comps[int(rng.integers(len(comps)))])
        elif roll < p_retime + p_capacity + p_depart and alive:
            handle = alive.pop(int(rng.integers(len(alive))))
            out.append(CustomerDepart(handle))
            node = node_of.pop(handle)
            if node is not None:
                comp_alive[int(labels[node])] -= 1
        else:
            node = int(served_nodes[int(rng.integers(served_nodes.size))])
            comp = int(labels[node])
            if comp_alive[comp] >= comp_caps[comp]:
                _grow(comp)
                continue
            out.append(CustomerArrive(node))
            node_of[next_handle] = node
            comp_alive[comp] += 1
            alive.append(next_handle)
            next_handle += 1
    return out
