"""Online serving: a first-class mutation/delta API over warm MCFS state.

The paper motivates MCFS as a problem "solved scalably and repeatedly,
as in applications requiring the dynamic reallocation of customers to
facilities"; this package is that operational layer.  A
:class:`ServeEngine` keeps the bipartite matching, SSPA potentials, and
nearest-facility streams warm across batches of typed mutations, repairs
incrementally where the matcher's invariants survive, and escalates to
component-scoped or global re-solves (with deadline-bounded degradation
and a fingerprint-keyed solution cache) when they do not.

>>> from repro.serve import ServeEngine, CustomerArrive
>>> engine = ServeEngine(instance, selected=[0, 1, 2])   # doctest: +SKIP
>>> engine.apply([CustomerArrive(17)]).staleness         # doctest: +SKIP
'optimal'
"""

from __future__ import annotations

from repro.serve.admission import AdmissionController
from repro.serve.cache import Snapshot, SolutionCache, state_digest
from repro.serve.engine import MutationOutcome, ServeEngine, ServeResult
from repro.serve.mutations import (
    CapacityChange,
    CustomerArrive,
    CustomerDepart,
    EdgeRetime,
    Mutation,
    load_trace,
    mutation_kind,
    save_trace,
    synthesize_trace,
)

__all__ = [
    "AdmissionController",
    "CapacityChange",
    "CustomerArrive",
    "CustomerDepart",
    "EdgeRetime",
    "Mutation",
    "MutationOutcome",
    "ServeEngine",
    "ServeResult",
    "Snapshot",
    "SolutionCache",
    "load_trace",
    "mutation_kind",
    "save_trace",
    "state_digest",
    "synthesize_trace",
]
