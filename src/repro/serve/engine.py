"""The online serving engine: warm-start incremental re-solve.

:class:`ServeEngine` keeps the bipartite matching state ``G_b``, the SSPA
Johnson potentials, the persistent nearest-facility
:class:`~repro.network.incremental.StreamPool`, and the selected facility
set warm across a stream of typed mutations
(:mod:`repro.serve.mutations`), applied in batches::

    engine = ServeEngine(instance, selected)
    result = engine.apply([CustomerArrive(17), CustomerDepart(3)])
    result.staleness        # "optimal" | "feasible" | "cached"

Repair strategy -- incremental first, escalate only when invariants die:

* **Arrivals** run one ``find_pair`` augmentation on the warm state (the
  matcher's invariants survive flow *addition*), so an arrivals-only
  stream never re-solves anything.
* **Departures** and capacity changes that strand or free saturated
  seats invalidate the dual invariants only inside the affected network
  *component*; the engine marks that component dirty and, at the end of
  the batch, re-solves just its customers while every other component's
  edges, potentials, cursors, and matching are transplanted wholesale
  (:meth:`~repro.flow.bipartite.BipartiteState.transplant_row`).  SSPA
  augmentations never cross components, so the scoped re-solve is
  bit-identical in cost to a full rebuild.
* **Edge retimes** invalidate every cached distance: the engine swaps in
  the re-weighted network and escalates to a global re-solve, consulting
  the :class:`~repro.serve.cache.SolutionCache` first (deployments that
  oscillate between a few network states restore instantly).

Deadlines ride :mod:`repro.runtime.budget`: ``apply(batch, deadline=s)``
processes mutations and optional optimality repairs under a cooperative
budget, sheds unprocessed mutations when it expires
(``serve.shed_deadline``), and finishes *mandatory* feasibility work --
global rebuilds and over-capacity evictions -- under a ``grace()`` scope
so the returned assignment is always feasible.  The
:attr:`ServeResult.staleness` field reports what the caller got.
"""

from __future__ import annotations

import math
import time
from collections.abc import Iterable, Sequence
from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.core.instance import MCFSInstance
from repro.errors import BudgetExceeded, InvalidInstanceError, MatchingError
from repro.flow.bipartite import BipartiteState
from repro.flow.sspa import find_pair, rebuild_rows
from repro.network.components import component_labels
from repro.network.graph import Network
from repro.obs import metrics
from repro.runtime.budget import Budget, checkpoint as _budget_checkpoint, grace, use
from repro.serve.admission import AdmissionController
from repro.serve.cache import Snapshot, SolutionCache, prime_counters, state_digest
from repro.serve.mutations import (
    CapacityChange,
    CustomerArrive,
    CustomerDepart,
    EdgeRetime,
    Mutation,
)

_BATCH_COUNTERS = metrics.CounterBlock(
    "serve.batches",
    "serve.mutations",
    "serve.applied",
    "serve.rejected",
    "serve.shed_deadline",
)
_REPAIR_COUNTERS = metrics.CounterBlock(
    "serve.repairs_component", "serve.repairs_global", "serve.degraded"
)


@dataclass
class MutationOutcome:
    """What happened to one mutation of a batch."""

    mutation: Mutation
    status: str  # "applied" | "rejected" | "shed"
    handle: int | None = None  # arrivals: the customer handle
    detail: str = ""


@dataclass
class ServeResult:
    """Outcome of one :meth:`ServeEngine.apply` batch.

    ``staleness`` is the engine's contract about the assignment the
    caller can now read:

    * ``"optimal"`` -- cost-optimal for the active customers under the
      current network, selection, and capacities (bit-identical to a
      cold re-solve of the end state);
    * ``"feasible"`` -- capacity-feasible but possibly degraded: repairs
      were deferred (``auto_repair=False``) or shed by the deadline;
    * ``"cached"`` -- optimal, restored wholesale from the solution
      cache rather than recomputed.
    """

    staleness: str
    outcomes: list[MutationOutcome] = field(repr=False)
    applied: int
    rejected: int
    shed: int
    moves: int
    cost: float
    repaired_components: int
    global_repair: bool
    cache_hit: bool
    deadline_exceeded: bool
    elapsed_sec: float


class ServeEngine:
    """Serve an MCFS deployment under a stream of typed mutations.

    Parameters
    ----------
    instance:
        Provides the network and facility metadata; its customer list
        seeds the initial population (``seed_customers=False`` starts
        empty, for callers that replay arrivals themselves).
    selected:
        Facility indices (into ``instance.facility_nodes``) to serve
        from.  The selection stays fixed; capacities may be re-rated via
        :class:`~repro.serve.mutations.CapacityChange`.
    auto_repair:
        Re-optimize dirty components at the end of every batch
        (default).  With ``False`` only *feasibility* repairs run and
        results stay ``"feasible"`` until :meth:`repair` is called.
    max_batch:
        Admission bound: mutations beyond this count per batch are shed
        (``None``: unbounded).
    cache:
        Solution cache for global re-solves: a
        :class:`~repro.serve.cache.SolutionCache`, an ``int`` capacity,
        or ``None`` to disable.
    """

    def __init__(
        self,
        instance: MCFSInstance,
        selected: Sequence[int],
        *,
        auto_repair: bool = True,
        max_batch: int | None = None,
        cache: SolutionCache | int | None = None,
        seed_customers: bool = True,
    ) -> None:
        self._instance = instance
        self._selected = [int(j) for j in selected]
        if not self._selected:
            raise InvalidInstanceError("selection must contain facilities")
        self._sub_nodes = [instance.facility_nodes[j] for j in self._selected]
        self._sub_caps = [int(instance.capacities[j]) for j in self._selected]
        self._pos_of_facility_node = {
            node: pos for pos, node in enumerate(self._sub_nodes)
        }
        self._auto_repair = bool(auto_repair)
        self._network = instance.network
        self._labels = component_labels(self._network)
        self._admission = AdmissionController(max_batch)
        if isinstance(cache, int):
            cache = SolutionCache(cache)
        self._cache = cache

        self._state = BipartiteState(
            self._network, [], self._sub_nodes, self._sub_caps
        )
        # handle -> node (None once departed); handle <-> state row index.
        self._node_of_handle: list[int | None] = []
        self._row_of_handle: dict[int, int] = {}
        self._handle_of_row: dict[int, int] = {}

        # Pending repair work, tracked per network component.
        self._dirty: set[int] = set()
        self._over_capacity: set[int] = set()
        self._global_dirty = False
        self._deferred: set[int] = set()  # handles awaiting a global rebuild

        # Component capacity/occupancy totals for O(1) admission checks.
        self._comp_capacity: dict[int, int] = {}
        self._comp_active: dict[int, int] = {}
        for pos, fnode in enumerate(self._sub_nodes):
            comp = int(self._labels[fnode])
            self._comp_capacity[comp] = (
                self._comp_capacity.get(comp, 0) + self._sub_caps[pos]
            )

        if seed_customers:
            for node in instance.customers:
                outcome = self._arrive(CustomerArrive(int(node)))  # reprolint: disable=REP112 -- warm start replays each initial customer exactly once
                if outcome.status != "applied":
                    raise MatchingError(outcome.detail)

    # ------------------------------------------------------------------
    # The delta API
    # ------------------------------------------------------------------
    def apply(
        self, batch: Iterable[Mutation], *, deadline: float | None = None
    ) -> ServeResult:
        """Apply a batch of mutations and repair the assignment.

        Mutations are processed in order; each yields a
        :class:`MutationOutcome` (``applied``/``rejected``/``shed``).
        With a ``deadline`` the whole batch -- mutation processing plus
        optional optimality repairs -- runs under a cooperative
        :class:`~repro.runtime.budget.Budget`; mandatory feasibility
        work always completes (under grace) so the assignment the
        result describes is feasible no matter what.
        """
        started = time.perf_counter()
        batch = list(batch)
        c_batches, c_mutations, c_applied, c_rejected, c_shed = (
            _BATCH_COUNTERS.get()
        )
        c_comp, c_glob, c_degraded = _REPAIR_COUNTERS.get()
        prime_counters()  # cache vocabulary stays visible without a cache
        c_batches.add()
        c_mutations.add(len(batch))

        before = self._facility_snapshot()
        accepted, overflow = self._admission.admit(batch)
        outcomes: list[MutationOutcome] = []
        deadline_exceeded = False
        cache_hit = False
        global_repair = False
        repaired_components = 0

        budget = Budget(deadline) if deadline is not None else None
        scope = use(budget) if budget is not None else nullcontext()
        with scope:
            try:
                for mutation in accepted:
                    _budget_checkpoint()
                    outcomes.append(self._apply_one(mutation))
            except BudgetExceeded:
                deadline_exceeded = True
            for mutation in accepted[len(outcomes):]:
                outcomes.append(
                    MutationOutcome(mutation, "shed", detail="deadline")
                )
                c_shed.add()

            # Mandatory repairs (feasibility and distance validity) always
            # complete; optional optimality repairs honor the budget.
            if self._global_dirty:
                with grace():
                    cache_hit = self._rebuild_global()
                global_repair = True
                c_glob.add()
            else:
                if self._over_capacity:
                    comps = set(self._over_capacity)
                    with grace():
                        self._rebuild_components(comps)
                    repaired_components += len(comps)
                    c_comp.add(len(comps))
                if self._auto_repair and self._dirty:
                    comps = set(self._dirty)
                    try:
                        self._rebuild_components(comps)
                        repaired_components += len(comps)
                        c_comp.add(len(comps))
                    except BudgetExceeded:
                        deadline_exceeded = True
        if budget is not None and budget.expired():
            deadline_exceeded = True

        for outcome in outcomes:
            if outcome.status == "applied":
                c_applied.add()
            elif outcome.status == "rejected":
                c_rejected.add()
        for mutation in overflow:
            outcomes.append(MutationOutcome(mutation, "shed", detail="queue"))

        staleness = self.staleness
        if staleness == "optimal" and cache_hit:
            staleness = "cached"
        if staleness == "feasible":
            c_degraded.add()
        applied = sum(1 for o in outcomes if o.status == "applied")
        rejected = sum(1 for o in outcomes if o.status == "rejected")
        shed = sum(1 for o in outcomes if o.status == "shed")
        return ServeResult(
            staleness=staleness,
            outcomes=outcomes,
            applied=applied,
            rejected=rejected,
            shed=shed,
            moves=self._count_moves(before),
            cost=self.cost,
            repaired_components=repaired_components,
            global_repair=global_repair,
            cache_hit=cache_hit,
            deadline_exceeded=deadline_exceeded,
            elapsed_sec=time.perf_counter() - started,
        )

    def repair(self) -> int:
        """Re-optimize everything pending; returns customers moved.

        The explicit counterpart of ``auto_repair``: after lazy batches
        (or deadline-shed repairs) this restores ``staleness ==
        "optimal"`` for the current state.
        """
        before = self._facility_snapshot()
        if self._global_dirty:
            self._rebuild_global()
        elif self._dirty or self._over_capacity:
            self._rebuild_components(self._dirty | self._over_capacity)
        return self._count_moves(before)

    # ------------------------------------------------------------------
    # Per-mutation processing
    # ------------------------------------------------------------------
    def _apply_one(self, mutation: Mutation) -> MutationOutcome:
        if isinstance(mutation, CustomerArrive):
            return self._arrive(mutation)
        if isinstance(mutation, CustomerDepart):
            return self._depart(mutation)
        if isinstance(mutation, CapacityChange):
            return self._capacity(mutation)
        if isinstance(mutation, EdgeRetime):
            return self._retime(mutation)
        return MutationOutcome(
            mutation, "rejected", detail=f"unknown mutation {mutation!r}"
        )

    def _arrive(self, mutation: CustomerArrive) -> MutationOutcome:
        node = int(mutation.node)
        if not 0 <= node < self._network.n_nodes:
            return MutationOutcome(
                mutation, "rejected", detail=f"node {node} outside network"
            )
        comp = int(self._labels[node])
        if self._global_dirty:
            # Distances are stale: admit on component capacity alone and
            # defer the matching to the pending global rebuild.
            if (
                self._comp_active.get(comp, 0) + 1
                > self._comp_capacity.get(comp, 0)
            ):
                return MutationOutcome(
                    mutation,
                    "rejected",
                    detail=(
                        f"customer {node} cannot reach any facility with "
                        f"free capacity"
                    ),
                )
            row = self._state.append_customer(node)
            handle = self._register(node, row)
            self._deferred.add(handle)
        else:
            row = self._state.append_customer(node)
            try:
                find_pair(self._state, row)
            except MatchingError as exc:
                self._state.pop_customer()
                return MutationOutcome(mutation, "rejected", detail=str(exc))
            except BudgetExceeded:
                self._state.pop_customer()
                raise
            handle = self._register(node, row)
        self._comp_active[comp] = self._comp_active.get(comp, 0) + 1
        return MutationOutcome(mutation, "applied", handle=handle)

    def _depart(self, mutation: CustomerDepart) -> MutationOutcome:
        handle = int(mutation.handle)
        row = self._row_of_handle.get(handle)
        if row is None:
            return MutationOutcome(
                mutation, "rejected", detail=f"no active customer {handle}"
            )
        node = self._node_of_handle[handle]
        assert node is not None
        comp = int(self._labels[node])
        state = self._state
        if state.matched[row]:
            (j_sub,) = state.matched[row]
            state.unmatch(row, j_sub)
            # The freed seat may enable cheaper matchings for the rest of
            # the component; the dual invariants do not survive removal.
            self._dirty.add(comp)
        self._deferred.discard(handle)
        del self._row_of_handle[handle]
        del self._handle_of_row[row]
        self._node_of_handle[handle] = None
        self._comp_active[comp] -= 1
        return MutationOutcome(mutation, "applied", handle=handle)

    def _capacity(self, mutation: CapacityChange) -> MutationOutcome:
        fnode = int(mutation.facility)
        pos = self._pos_of_facility_node.get(fnode)
        if pos is None:
            return MutationOutcome(
                mutation,
                "rejected",
                detail=f"node {fnode} is not a selected facility",
            )
        new_cap = int(mutation.capacity)
        if new_cap < 0:
            return MutationOutcome(
                mutation, "rejected", detail=f"capacity must be >= 0, got {new_cap}"
            )
        old_cap = self._sub_caps[pos]
        if new_cap == old_cap:
            return MutationOutcome(mutation, "applied")
        comp = int(self._labels[fnode])
        load = self._state.load(pos)
        if new_cap < load:
            if (
                self._comp_active.get(comp, 0)
                > self._comp_capacity[comp] - old_cap + new_cap
            ):
                return MutationOutcome(
                    mutation,
                    "rejected",
                    detail=(
                        f"cutting facility node {fnode} to capacity "
                        f"{new_cap} would strand customers in its component"
                    ),
                )
            # Evicting the overflow is mandatory feasibility work.
            self._over_capacity.add(comp)
            self._dirty.add(comp)
        elif new_cap > old_cap and load >= old_cap:
            # A saturated facility gained seats: cheaper matchings may
            # now exist (residual augmentation through the new seats).
            self._dirty.add(comp)
        # Otherwise (shrinking unused headroom, or growing a facility
        # that was not saturated) the current optimum provably survives.
        self._comp_capacity[comp] += new_cap - old_cap
        self._sub_caps[pos] = new_cap
        self._state.capacities[pos] = new_cap
        return MutationOutcome(mutation, "applied")

    def _retime(self, mutation: EdgeRetime) -> MutationOutcome:
        u, v, weight = int(mutation.u), int(mutation.v), float(mutation.weight)
        n = self._network.n_nodes
        if not (0 <= u < n and 0 <= v < n):
            return MutationOutcome(
                mutation, "rejected", detail=f"edge ({u}, {v}) outside network"
            )
        if not weight > 0 or not math.isfinite(weight):
            return MutationOutcome(
                mutation,
                "rejected",
                detail=f"weight must be positive and finite, got {weight}",
            )
        directed = self._network.directed
        replaced = 0
        new_edges = []
        _budget_checkpoint()
        for a, b, old_weight in self._network.edges():
            if (a, b) == (u, v) or (not directed and (a, b) == (v, u)):
                new_edges.append((a, b, weight))
                replaced += 1
            else:
                new_edges.append((a, b, old_weight))
        if replaced == 0:
            return MutationOutcome(
                mutation, "rejected", detail=f"no edge ({u}, {v}) in the network"
            )
        coords = self._network.coords if self._network.has_coords else None
        self._network = Network(n, new_edges, coords=coords, directed=directed)
        # Adjacency is unchanged, so component labels survive; every
        # cached distance (edges, streams, potentials) is now stale.
        self._global_dirty = True
        self._dirty.clear()
        self._over_capacity.clear()
        return MutationOutcome(mutation, "applied")

    def _register(self, node: int, row: int) -> int:
        handle = len(self._node_of_handle)
        self._node_of_handle.append(node)
        self._row_of_handle[handle] = row
        self._handle_of_row[row] = handle
        return handle

    # ------------------------------------------------------------------
    # Scoped re-solves
    # ------------------------------------------------------------------
    def _rebuild_components(self, comps: set[int]) -> None:
        """Re-solve the customers of ``comps``; transplant everything else.

        Builds a fresh state sharing the stream pool, re-matching only
        rows whose component is dirty (in handle order -- the same
        per-component ``find_pair`` sequence a full rebuild would run,
        hence bit-identical cost) while adopting the warm edges,
        potentials, cursors, and matching of every clean row.
        """
        _budget_checkpoint()
        state = self._state
        handles = sorted(self._row_of_handle)
        nodes = [self._node_of_handle[h] for h in handles]
        fresh = BipartiteState(
            self._network,
            [int(n) for n in nodes],  # type: ignore[arg-type]
            self._sub_nodes,
            self._sub_caps,
            pool=state.pool,
        )
        redo: list[int] = []
        for new_row, handle in enumerate(handles):
            node = nodes[new_row]
            assert node is not None
            if int(self._labels[node]) in comps:
                redo.append(new_row)
            else:
                fresh.transplant_row(new_row, state, self._row_of_handle[handle])  # reprolint: disable=REP112 -- one row transplant per retained handle per re-solve
        for pos, fnode in enumerate(self._sub_nodes):
            if int(self._labels[fnode]) not in comps:
                fresh.facility_potential[pos] = state.facility_potential[pos]
        rebuild_rows(fresh, redo)
        self._install(fresh, handles)
        self._dirty -= comps
        self._over_capacity -= comps

    def _rebuild_global(self) -> bool:
        """Full re-solve on the current network; returns cache-hit flag."""
        _budget_checkpoint()
        handles = sorted(self._row_of_handle)
        nodes = [int(self._node_of_handle[h]) for h in handles]  # type: ignore[arg-type]
        key: str | None = None
        if self._cache is not None:
            key = state_digest(
                self._network.fingerprint, self._sub_nodes, self._sub_caps, nodes
            )
            snapshot = self._cache.get(key)
            if snapshot is not None:
                fresh = BipartiteState(
                    self._network, nodes, self._sub_nodes, self._sub_caps
                )
                snapshot.restore(fresh)
                self._install(fresh, handles)
                self._clear_repairs()
                return True
        # A fresh pool: the old one streams on the pre-retime network.
        fresh = BipartiteState(
            self._network, nodes, self._sub_nodes, self._sub_caps
        )
        rebuild_rows(fresh, range(fresh.m))
        self._install(fresh, handles)
        if self._cache is not None and key is not None:
            self._cache.put(key, Snapshot.capture(fresh))
        self._clear_repairs()
        return False

    def _install(self, fresh: BipartiteState, handles: list[int]) -> None:
        self._state = fresh
        self._row_of_handle = {h: row for row, h in enumerate(handles)}
        self._handle_of_row = {row: h for row, h in enumerate(handles)}

    def _clear_repairs(self) -> None:
        self._global_dirty = False
        self._dirty.clear()
        self._over_capacity.clear()
        self._deferred.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def staleness(self) -> str:
        """Current assignment contract: ``"optimal"`` or ``"feasible"``."""
        pending = (
            self._dirty
            or self._over_capacity
            or self._global_dirty
            or self._deferred
        )
        return "feasible" if pending else "optimal"

    @property
    def n_active(self) -> int:
        """Number of currently served customers."""
        return len(self._row_of_handle)

    @property
    def cost(self) -> float:
        """Total distance of the current assignment."""
        return self._state.total_cost()

    @property
    def network(self) -> Network:
        """The network currently served on (retimes swap it)."""
        return self._network

    @property
    def selected_nodes(self) -> tuple[int, ...]:
        """Node ids of the selected facilities."""
        return tuple(self._sub_nodes)

    @property
    def selected_capacities(self) -> tuple[int, ...]:
        """Current capacity per selected facility (after re-rates)."""
        return tuple(self._sub_caps)

    def node_of(self, handle: int) -> int:
        """Network node of an active customer handle."""
        if self._row_of_handle.get(handle) is None:
            raise InvalidInstanceError(f"no active customer {handle}")
        node = self._node_of_handle[handle]
        assert node is not None
        return node

    def handles(self) -> list[int]:
        """Active customer handles, ascending (arrival order)."""
        return sorted(self._row_of_handle)

    def customer_nodes(self) -> list[int]:
        """Nodes of the active customers, in handle order."""
        return [self.node_of(h) for h in self.handles()]

    def facility_of(self, handle: int) -> int:
        """Facility index (into the instance) serving ``handle``."""
        row = self._row_of_handle.get(handle)
        if row is None:
            raise InvalidInstanceError(f"no active customer {handle}")
        if not self._state.matched[row]:
            raise InvalidInstanceError(
                f"customer {handle} awaits the pending global repair"
            )
        (j_sub,) = self._state.matched[row]
        return self._selected[j_sub]

    def assignment(self) -> dict[int, int]:
        """Active handle -> facility index (into the instance)."""
        return {h: self.facility_of(h) for h in self._row_of_handle}

    def load_per_facility(self) -> dict[int, int]:
        """Facility index (into the instance) -> customers served."""
        return {
            self._selected[pos]: self._state.load(pos)
            for pos in range(len(self._selected))
        }

    def residual_capacity(self) -> int:
        """Total unused capacity across the selection."""
        return sum(
            self._state.capacities[pos] - self._state.load(pos)
            for pos in range(self._state.l)
        )

    def _facility_snapshot(self) -> dict[int, int]:
        return {
            h: next(iter(self._state.matched[row]))
            for h, row in self._row_of_handle.items()
            if self._state.matched[row]
        }

    def _count_moves(self, before: dict[int, int]) -> int:
        after = self._facility_snapshot()
        return sum(1 for h, j in before.items() if after.get(h, j) != j)

    def __repr__(self) -> str:
        return (
            f"ServeEngine(active={self.n_active}, "
            f"facilities={len(self._selected)}, staleness={self.staleness!r}, "
            f"cost={self.cost:.1f})"
        )
