"""Fingerprint-keyed solution cache for the serving engine.

A global re-solve (triggered by :class:`~repro.serve.mutations.EdgeRetime`)
is the engine's most expensive escalation.  Deployments often oscillate
between a small set of network states -- rush-hour vs. off-peak edge
weights, a facility taken offline and back -- so the engine snapshots the
optimal matching it computes for each *(network, selection, customers)*
state and restores it wholesale when the same state recurs.

The key is a digest over ``Network.fingerprint`` (which covers the CSR
arrays, hence every edge weight), the selected facility nodes and their
current capacities, and the active customer nodes in handle order -- any
difference in any of them misses cleanly.  A snapshot stores the
materialized bipartite edges, the matching, both Johnson potential
vectors, and the per-customer stream-cursor ranks, so a restore rebuilds
a :class:`~repro.flow.bipartite.BipartiteState` without running a single
residual Dijkstra; stream work is re-paid lazily only if later mutations
need deeper reveals.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass

from repro.flow.bipartite import BipartiteState
from repro.obs import metrics
from repro.runtime.budget import checkpoint as _budget_checkpoint

_LOOKUP_COUNTERS = metrics.CounterBlock(
    "serve.cache_hits", "serve.cache_misses"
)


def prime_counters() -> None:
    """Materialize the cache counters at zero in the active registry.

    Cache-less engines would otherwise never touch ``serve.cache_*`` and
    the names would vanish from exports -- the CI baseline gate treats a
    missing counter as a violation, so the vocabulary must be stable.
    """
    _LOOKUP_COUNTERS.get()


def state_digest(
    fingerprint: str,
    facility_nodes: Sequence[int],
    capacities: Sequence[int],
    customer_nodes: Sequence[int],
) -> str:
    """Digest of everything that determines the optimal matching."""
    digest = hashlib.sha1()
    digest.update(fingerprint.encode())
    for part in (facility_nodes, capacities, customer_nodes):
        _budget_checkpoint()
        digest.update(b"|")
        digest.update(",".join(str(int(x)) for x in part).encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class Snapshot:
    """An optimal matching frozen for later wholesale restoration."""

    customer_nodes: tuple[int, ...]
    edges: tuple[tuple[tuple[int, float], ...], ...]
    matched: tuple[tuple[int, ...], ...]
    customer_potential: tuple[float, ...]
    facility_potential: tuple[float, ...]
    cursor_ranks: tuple[int, ...]
    cost: float

    @classmethod
    def capture(cls, state: BipartiteState) -> Snapshot:
        """Freeze the matching-relevant parts of a bipartite state."""
        return cls(
            customer_nodes=tuple(state.customer_nodes),
            edges=tuple(
                tuple(sorted(state.edges[i].items())) for i in range(state.m)
            ),
            matched=tuple(
                tuple(sorted(state.matched[i])) for i in range(state.m)
            ),
            customer_potential=tuple(state.customer_potential),
            facility_potential=tuple(state.facility_potential),
            cursor_ranks=tuple(
                state.cursor_rank(i) for i in range(state.m)
            ),
            cost=state.total_cost(),
        )

    def restore(self, state: BipartiteState) -> None:
        """Replay this snapshot onto a freshly built, empty state.

        ``state`` must have been constructed with the snapshot's customer
        nodes (in order) and the same facility universe; distances were
        computed on a network with the same fingerprint, so the restored
        edges are exact and the cursor ranks reposition each customer's
        stream without advancing it.
        """
        for i in range(state.m):
            _budget_checkpoint()
            state.edges[i].update(self.edges[i])
            state.customer_potential[i] = self.customer_potential[i]
            for j in self.matched[i]:
                state.match(i, j)
            if self.cursor_ranks[i]:
                state.seek_cursor(i, self.cursor_ranks[i])
        state.facility_potential[:] = self.facility_potential


class SolutionCache:
    """A small LRU of :class:`Snapshot` objects keyed by state digest."""

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: OrderedDict[str, Snapshot] = OrderedDict()

    def get(self, key: str) -> Snapshot | None:
        """Look up a snapshot; counts a serve cache hit or miss."""
        c_hits, c_misses = _LOOKUP_COUNTERS.get()
        snapshot = self._entries.get(key)
        if snapshot is None:
            c_misses.add()
            return None
        self._entries.move_to_end(key)
        c_hits.add()
        return snapshot

    def put(self, key: str, snapshot: Snapshot) -> None:
        """Insert (or refresh) a snapshot, evicting the oldest at capacity."""
        self._entries[key] = snapshot
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            _budget_checkpoint()
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"SolutionCache(entries={len(self._entries)}, "
            f"capacity={self.capacity})"
        )
