"""Admission control for serve batches.

The engine accepts work through a bounded queue: a batch longer than
``max_batch`` is truncated and the overflow is *shed* (reported as
``"shed"`` outcomes, counted under ``serve.shed_queue``) rather than
silently deferred -- the caller owns retry policy.  Deadline-driven
shedding (mutations dropped because the batch budget expired mid-way)
is the engine's job and counts under ``serve.shed_deadline``; this
module only enforces the queue bound.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.obs import metrics

_SHED_COUNTERS = metrics.CounterBlock("serve.shed_queue")


class AdmissionController:
    """Bounded-queue admission: accept a prefix, shed the overflow.

    Parameters
    ----------
    max_batch:
        Maximum number of mutations admitted per :meth:`admit` call
        (``None``: unbounded).  The bound is per batch because the
        engine is synchronous -- nothing queues *between* batches.
    """

    def __init__(self, max_batch: int | None = None) -> None:
        if max_batch is not None and max_batch < 0:
            raise ValueError(f"max_batch must be >= 0, got {max_batch}")
        self.max_batch = max_batch
        self.admitted_total = 0
        self.shed_total = 0

    def admit(
        self, mutations: Sequence[object]
    ) -> tuple[list[object], list[object]]:
        """Split a batch into ``(accepted, shed)`` lists, in order."""
        batch = list(mutations)
        shed: list[object] = []
        if self.max_batch is None or len(batch) <= self.max_batch:
            accepted = batch
        else:
            accepted = batch[: self.max_batch]
            shed = batch[self.max_batch :]
        self.admitted_total += len(accepted)
        self.shed_total += len(shed)
        (c_shed,) = _SHED_COUNTERS.get()
        c_shed.add(len(shed))
        return accepted, shed

    def __repr__(self) -> str:
        bound = "inf" if self.max_batch is None else str(self.max_batch)
        return (
            f"AdmissionController(max_batch={bound}, "
            f"admitted={self.admitted_total}, shed={self.shed_total})"
        )
