"""End-to-end tests for the Wide Matching Algorithm."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.demand import UniformDemandPolicy
from repro.core.instance import MCFSInstance
from repro.core.validation import validate_solution
from repro.core.wma import WMASolver, solve_wma, solve_wma_uniform_first
from repro.errors import InfeasibleInstanceError, MatchingError
from repro.flow.sspa import ThresholdRule, assign_all
from tests.conftest import (
    build_line_network,
    build_random_instance,
    build_two_component_network,
)


def brute_force_optimum(instance: MCFSInstance) -> float | None:
    """Enumerate all k-subsets and optimally assign each."""
    best = None
    for combo in itertools.combinations(range(instance.l), instance.k):
        nodes = [instance.facility_nodes[j] for j in combo]
        caps = [instance.capacities[j] for j in combo]
        try:
            result = assign_all(instance.network, instance.customers, nodes, caps)
        except MatchingError:
            continue
        if best is None or result.cost < best:
            best = result.cost
    return best


class TestBasics:
    def test_line_instance_optimal(self):
        inst = MCFSInstance(
            network=build_line_network(10),
            customers=(2, 3, 6, 7),
            facility_nodes=(0, 2, 7, 9),
            capacities=(4, 4, 4, 4),
            k=2,
        )
        sol = solve_wma(inst)
        validate_solution(inst, sol)
        assert sol.objective == pytest.approx(brute_force_optimum(inst))
        assert sorted(sol.selected) == [1, 2]

    def test_solution_always_valid_on_random_instances(self):
        for seed in range(15):
            inst = build_random_instance(seed)
            sol = solve_wma(inst)
            validate_solution(inst, sol)

    def test_quality_vs_brute_force(self):
        """WMA stays within a reasonable factor of the optimum."""
        gaps = []
        for seed in range(12):
            inst = build_random_instance(seed, cap_range=(3, 6))
            best = brute_force_optimum(inst)
            if best is None or best <= 0:
                continue
            sol = solve_wma(inst)
            validate_solution(inst, sol)
            gaps.append(sol.objective / best)
        assert gaps, "no feasible instances drawn"
        assert np.mean(gaps) < 1.25
        assert min(gaps) >= 1.0 - 1e-9

    def test_meta_counters(self):
        inst = build_random_instance(3)
        sol = solve_wma(inst)
        assert sol.meta["algorithm"] == "wma"
        assert sol.meta["iterations"] >= 1
        assert sol.meta["edges_materialized"] > 0
        assert sol.meta["runtime_sec"] > 0

    def test_trace_recorded(self):
        inst = build_random_instance(4)
        solver = WMASolver(inst)
        solver.solve()
        trace = solver.trace
        assert trace.iterations >= 1
        assert len(trace.matching_time) == trace.iterations
        assert trace.covered[-1] <= inst.m
        rows = trace.rows()
        assert rows[0]["iteration"] == 1

    def test_k_equals_l_selects_all_useful(self):
        inst = MCFSInstance(
            network=build_line_network(6),
            customers=(0, 5),
            facility_nodes=(1, 4),
            capacities=(2, 2),
            k=2,
        )
        sol = solve_wma(inst)
        validate_solution(inst, sol)
        assert sol.objective == pytest.approx(2.0)

    def test_multiple_customers_per_node(self):
        inst = MCFSInstance(
            network=build_line_network(8),
            customers=(3, 3, 3, 3),
            facility_nodes=(0, 3, 7),
            capacities=(4, 2, 4),
            k=2,
        )
        sol = solve_wma(inst)
        validate_solution(inst, sol)
        # Two customers sit on the facility node, two must travel.
        assert sol.objective == pytest.approx(brute_force_optimum(inst))


class TestDisconnected:
    def test_covers_both_components(self):
        g = build_two_component_network()
        inst = MCFSInstance(
            network=g,
            customers=(0, 1, 3, 4),
            facility_nodes=(2, 5),
            capacities=(2, 2),
            k=2,
        )
        sol = solve_wma(inst)
        validate_solution(inst, sol)
        assert sorted(sol.selected) == [0, 1]

    def test_component_capacity_repair(self):
        g = build_two_component_network()
        # Component B needs the high-capacity facility.
        inst = MCFSInstance(
            network=g,
            customers=(0, 3, 4, 5),
            facility_nodes=(1, 2, 4),
            capacities=(1, 1, 3),
            k=2,
        )
        sol = solve_wma(inst)
        validate_solution(inst, sol)
        assert 2 in sol.selected

    def test_infeasible_raises(self):
        g = build_two_component_network()
        inst = MCFSInstance(
            network=g,
            customers=(0, 3),
            facility_nodes=(1, 4),
            capacities=(5, 5),
            k=1,
        )
        with pytest.raises(InfeasibleInstanceError):
            solve_wma(inst)


class TestConfigurations:
    def test_threshold_rules_same_validity(self):
        for seed in (0, 5, 9):
            inst = build_random_instance(seed)
            s1 = WMASolver(inst, threshold_rule=ThresholdRule.THEOREM1).solve()
            s2 = WMASolver(inst, threshold_rule=ThresholdRule.TAU_PRIME).solve()
            validate_solution(inst, s1)
            validate_solution(inst, s2)
            # Identical matchings imply identical selections/objectives.
            assert s1.objective == pytest.approx(s2.objective)

    def test_uniform_demand_policy_works(self):
        inst = build_random_instance(2)
        sol = WMASolver(inst, demand_policy=UniformDemandPolicy()).solve()
        validate_solution(inst, sol)
        assert sol.meta["demand_policy"] == "uniform"

    def test_index_tie_breaking_works(self):
        inst = build_random_instance(6)
        sol = WMASolver(inst, tie_breaking="index").solve()
        validate_solution(inst, sol)

    def test_cost_tie_breaking_works(self):
        for seed in (1, 6):
            inst = build_random_instance(seed)
            sol = WMASolver(inst, tie_breaking="cost").solve()
            validate_solution(inst, sol)
            assert sol.meta["tie_breaking"] == "cost"

    def test_deterministic(self):
        inst = build_random_instance(7)
        a = solve_wma(inst)
        b = solve_wma(inst)
        assert a.selected == b.selected
        assert a.objective == pytest.approx(b.objective)


class TestUniformFirst:
    def test_valid_on_nonuniform_instances(self):
        for seed in range(8):
            inst = build_random_instance(seed, cap_range=(1, 6))
            sol = solve_wma_uniform_first(inst)
            validate_solution(inst, sol)
            assert sol.meta["algorithm"] == "wma-uf"

    def test_equals_direct_on_uniform_capacities(self):
        inst = build_random_instance(1, cap_range=(3, 4))
        uniform = inst.with_uniform_capacities(3)
        direct = solve_wma(uniform)
        uf = solve_wma_uniform_first(uniform)
        assert uf.objective == pytest.approx(direct.objective)
