"""ALT distance-oracle correctness: oracle runs must change nothing but speed.

The oracle's contract mirrors the distance cache's: every observable
output -- lower bounds, exact queries, stream emission order, solver
objectives -- must be *bit-identical* to the kernel Dijkstra path.
These tests pin that contract, plus the persistence format's
corruption-safety (any unusable blob falls back to a rebuild).
"""

from __future__ import annotations

import json
import math
import os

import numpy as np
import pytest

from repro.bench.harness import run_solvers
from repro.errors import GraphError
from repro.network import oracle as oracle_mod
from repro.network.dijkstra import shortest_path_lengths
from repro.network.graph import Network
from repro.network.incremental import NearestFacilityStream, StreamPool
from repro.network.landmarks import select_landmarks
from repro.network.oracle import AltOracle, OracleFacilityStream
from repro.obs import metrics
from repro.obs.profile import profile_solver
from tests.conftest import (
    build_random_instance,
    build_random_network,
    build_two_component_network,
)

INF = math.inf


def directed_grid(n: int = 5, seed: int = 0) -> Network:
    """A directed grid-ish network with asymmetric weights."""
    rng = np.random.default_rng(seed)
    edges = []
    for r in range(n):
        for c in range(n):
            u = r * n + c
            if c + 1 < n:
                edges.append((u, u + 1, float(rng.uniform(1, 3))))
                edges.append((u + 1, u, float(rng.uniform(1, 3))))
            if r + 1 < n:
                edges.append((u, u + n, float(rng.uniform(1, 3))))
                edges.append((u + n, u, float(rng.uniform(1, 3))))
    return Network(n * n, edges, directed=True)


class TestLandmarkSelection:
    def test_seeded_and_deterministic(self):
        network = build_random_network(60, seed=1)
        a_nodes, a_vecs = select_landmarks(network, 8, seed=3)
        b_nodes, b_vecs = select_landmarks(network, 8, seed=3)
        assert a_nodes == b_nodes
        assert np.array_equal(a_vecs, b_vecs)
        assert len(a_nodes) == 8
        assert len(set(a_nodes)) == 8
        assert a_vecs.shape == (8, 60)

    def test_landmarks_capped_by_node_count(self):
        network = build_random_network(5, seed=0)
        nodes, vecs = select_landmarks(network, 50, seed=0)
        assert len(nodes) <= 5
        assert vecs.shape[0] == len(nodes)

    def test_covers_disconnected_components(self):
        network = build_two_component_network()
        nodes, _ = select_landmarks(network, 2, seed=0)
        # Farthest-point prefers uncovered (+inf) components, so two
        # landmarks must land in the two different triangles.
        assert len({n // 3 for n in nodes}) == 2

    def test_vectors_are_exact_dijkstra_rows(self):
        network = build_random_network(40, seed=2)
        nodes, vecs = select_landmarks(network, 4, seed=0)
        for i, landmark in enumerate(nodes):
            expected = shortest_path_lengths(network, landmark).dist
            assert np.array_equal(vecs[i], expected)


class TestLowerBound:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("n_landmarks", [1, 4, 16])
    def test_never_exceeds_exact_distance(self, seed, n_landmarks):
        network = build_random_network(60, seed=seed)
        oracle = AltOracle.build(network, n_landmarks=n_landmarks, seed=seed)
        rng = np.random.default_rng(seed + 99)
        for _ in range(60):
            u, v = (int(x) for x in rng.integers(0, 60, size=2))
            exact = shortest_path_lengths(network, u).dist[v]
            assert oracle.lower_bound(u, v) <= exact

    def test_self_bound_is_zero(self):
        network = build_random_network(30, seed=0)
        oracle = AltOracle.build(network, n_landmarks=4)
        for u in (0, 7, 29):
            assert oracle.lower_bound(u, u) == 0.0

    def test_cross_component_is_inf(self):
        network = build_two_component_network()
        oracle = AltOracle.build(network, n_landmarks=4)
        assert oracle.lower_bound(0, 4) == INF
        assert oracle.lower_bound(4, 0) == INF
        assert oracle.lower_bound(0, 2) < INF

    def test_directed_bound_property(self):
        network = directed_grid(5, seed=1)
        oracle = AltOracle.build(network, n_landmarks=6, seed=0)
        rng = np.random.default_rng(7)
        for _ in range(50):
            u, v = (int(x) for x in rng.integers(0, 25, size=2))
            exact = shortest_path_lengths(network, u).dist[v]
            assert oracle.lower_bound(u, v) <= exact


class TestQuery:
    @pytest.mark.parametrize("seed", [0, 3, 5])
    def test_bit_identical_to_dijkstra(self, seed):
        network = build_random_network(80, seed=seed)
        oracle = AltOracle.build(network, n_landmarks=8, seed=0)
        rng = np.random.default_rng(seed)
        for _ in range(40):
            u, v = (int(x) for x in rng.integers(0, 80, size=2))
            exact = float(shortest_path_lengths(network, u).dist[v])
            assert oracle.query(u, v) == exact  # bit-identical, no tol

    def test_directed_bit_identical(self):
        network = directed_grid(5, seed=2)
        oracle = AltOracle.build(network, n_landmarks=6, seed=0)
        for u in range(0, 25, 3):
            expected = shortest_path_lengths(network, u).dist
            for v in range(0, 25, 4):
                assert oracle.query(u, v) == float(expected[v])

    def test_unreachable_is_inf(self):
        network = build_two_component_network()
        oracle = AltOracle.build(network, n_landmarks=2)
        assert oracle.query(0, 5) == INF

    def test_same_node_is_zero(self):
        network = build_random_network(20, seed=0)
        oracle = AltOracle.build(network, n_landmarks=2)
        assert oracle.query(13, 13) == 0.0

    def test_out_of_range_raises(self):
        network = build_random_network(10, seed=0)
        oracle = AltOracle.build(network, n_landmarks=2)
        with pytest.raises(GraphError):
            oracle.query(0, 10)

    def test_unbound_oracle_raises(self, tmp_path):
        network = build_random_network(10, seed=0)
        oracle = AltOracle.build(network, n_landmarks=2)
        blob_path = str(tmp_path / "o.npz")
        oracle.save(blob_path)
        loaded = AltOracle.load(blob_path)  # no network: stays unbound
        assert loaded is not None
        with pytest.raises(GraphError):
            loaded.query(0, 1)

    def test_query_counters(self):
        network = build_random_network(40, seed=1)
        oracle = AltOracle.build(network, n_landmarks=4)
        reg = metrics.Registry()
        with metrics.use(reg):
            oracle.query(0, 39)
            oracle.query(5, 17)
        counts = reg.as_dict()
        assert counts["oracle.queries"] == 2
        assert counts["oracle.query_pops"] >= 2


class TestPersistence:
    def test_round_trip(self, tmp_path):
        network = build_random_network(50, seed=4)
        oracle = AltOracle.build(network, n_landmarks=6, seed=2)
        path = str(tmp_path / "oracle.npz")
        assert oracle.save(path) == path
        loaded = AltOracle.load(path, network)
        assert loaded is not None
        assert loaded.fingerprint == oracle.fingerprint
        assert loaded.landmarks == oracle.landmarks
        assert loaded.query(0, 49) == oracle.query(0, 49)
        info = loaded.info()
        assert info["n_landmarks"] == 6
        assert info["seed"] == 2
        assert info["source_path"] == path

    def test_missing_file_loads_none(self, tmp_path):
        assert AltOracle.load(str(tmp_path / "absent.npz")) is None

    def test_truncated_blob_loads_none(self, tmp_path):
        network = build_random_network(30, seed=0)
        oracle = AltOracle.build(network, n_landmarks=4)
        path = tmp_path / "oracle.npz"
        oracle.save(str(path))
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        assert AltOracle.load(str(path), network) is None

    def test_garbage_blob_loads_none(self, tmp_path):
        path = tmp_path / "oracle.npz"
        path.write_bytes(b"this is not an npz archive at all")
        assert AltOracle.load(str(path)) is None

    def test_foreign_version_loads_none(self, tmp_path):
        network = build_random_network(20, seed=0)
        oracle = AltOracle.build(network, n_landmarks=2)
        path = tmp_path / "oracle.npz"
        oracle.save(str(path))
        with np.load(str(path)) as blob:
            fields = {k: blob[k] for k in blob.files}
        fields["version"] = np.int64(oracle_mod.ALT_FORMAT_VERSION + 1)
        np.savez(str(path), **fields)
        assert AltOracle.load(str(path), network) is None

    def test_fingerprint_mismatch_loads_none(self, tmp_path):
        network = build_random_network(30, seed=0)
        other = build_random_network(30, seed=1)
        path = str(tmp_path / "oracle.npz")
        AltOracle.build(network, n_landmarks=3).save(path)
        assert AltOracle.load(path, other) is None
        assert AltOracle.load(path, network) is not None

    def test_load_or_build_hits_cache(self, tmp_path):
        network = build_random_network(40, seed=3)
        reg = metrics.Registry()
        with metrics.use(reg):
            first = oracle_mod.load_or_build(network, str(tmp_path))
            second = oracle_mod.load_or_build(network, str(tmp_path))
        counts = reg.as_dict()
        assert counts["oracle.cache_misses"] == 1
        assert counts["oracle.cache_hits"] == 1
        assert counts["oracle.builds"] == 1
        assert second.landmarks == first.landmarks
        path = oracle_mod.cache_path(str(tmp_path), network)
        assert os.path.exists(path)

    def test_load_or_build_rebuilds_on_corruption(self, tmp_path):
        network = build_random_network(30, seed=5)
        path = oracle_mod.cache_path(str(tmp_path), network)
        first = oracle_mod.load_or_build(network, str(tmp_path))
        with open(path, "wb") as fh:
            fh.write(b"corrupted")
        reg = metrics.Registry()
        with metrics.use(reg):
            rebuilt = oracle_mod.load_or_build(network, str(tmp_path))
        assert reg.as_dict()["oracle.cache_misses"] == 1
        assert rebuilt.landmarks == first.landmarks
        # The corrupt blob was overwritten with a loadable one.
        assert AltOracle.load(path, network) is not None


class TestOracleFacilityStream:
    @pytest.mark.parametrize("seed", [0, 1, 4])
    def test_matches_kernel_stream_exactly(self, seed):
        network = build_random_network(70, seed=seed)
        rng = np.random.default_rng(seed + 50)
        facilities = sorted(int(v) for v in rng.choice(70, 12, replace=False))
        oracle = AltOracle.build(network, n_landmarks=8, seed=0)
        for source in (0, 17, 42):
            kernel = NearestFacilityStream(network, source, facilities)
            fast = OracleFacilityStream(oracle, source, facilities)
            rank = 0
            while True:
                expected = kernel.facility_at(rank)
                assert fast.facility_at(rank) == expected
                if expected is None:
                    break
                rank += 1

    def test_unreachable_facilities_omitted(self):
        network = build_two_component_network()
        oracle = AltOracle.build(network, n_landmarks=2)
        stream = OracleFacilityStream(oracle, 0, [1, 2, 4, 5])
        assert stream.facility_at(0) is not None
        assert stream.facility_at(1) is not None
        assert stream.facility_at(2) is None  # 4, 5 in the other part
        assert stream.distance_at(2) == INF

    def test_frontier_lower_bound_is_sound(self):
        network = build_random_network(50, seed=2)
        oracle = AltOracle.build(network, n_landmarks=6)
        stream = OracleFacilityStream(oracle, 3, [10, 20, 30, 40])
        emitted = 0
        while True:
            bound = stream.frontier_lower_bound()
            item = stream.facility_at(emitted)
            if item is None:
                break
            assert bound <= item[1]
            emitted += 1

    def test_stream_pool_uses_oracle_in_scope(self):
        network = build_random_network(40, seed=0)
        oracle = AltOracle.build(network, n_landmarks=4)
        pool = StreamPool(network, [5, 15, 25])
        assert not pool.has_oracle
        with oracle_mod.use(oracle):
            pool = StreamPool(network, [5, 15, 25])
            assert pool.has_oracle
            assert isinstance(pool.stream_for(0), OracleFacilityStream)

    def test_pool_cursors_identical_under_oracle(self):
        network = build_random_network(60, seed=6)
        facilities = [3, 11, 24, 37, 51]
        oracle = AltOracle.build(network, n_landmarks=8)
        plain = StreamPool(network, facilities)
        with oracle_mod.use(oracle):
            fast = StreamPool(network, facilities)
        for customer in (0, 30, 59):
            a = plain.cursor_for(customer)
            b = fast.cursor_for(customer)
            for _ in facilities:
                assert b.peek() == a.peek()
                assert b.take() == a.take()


class TestSolverEquivalence:
    @pytest.mark.parametrize("method", ["wma", "hilbert", "wma-naive"])
    def test_objectives_bit_identical(self, method):
        for seed in range(4):
            instance = build_random_instance(seed, n=40, m=8, l=10, k=4)
            rows_plain = run_solvers(
                instance, [method], seeds={method: 0}
            )
            rows_oracle = run_solvers(
                instance, [method], seeds={method: 0}, oracle=True
            )
            assert rows_oracle[0].objective == rows_plain[0].objective

    def test_oracle_counters_appear_in_rows(self):
        instance = build_random_instance(1, n=40, m=8, l=10, k=4)
        rows = run_solvers(instance, ["wma"], oracle=True)
        m = rows[0].metrics
        assert m["oracle.streams"] > 0
        assert m["oracle.queries"] > 0
        # Kernel-stream work replaced wholesale, vocabulary kept.
        assert m["incremental.pops"] == 0

    def test_sspa_prunes_fire_under_oracle(self):
        instance = build_random_instance(2, n=50, m=10, l=12, k=5)
        rows = run_solvers(instance, ["wma"], oracle=True)
        assert rows[0].metrics["oracle.prunes"] > 0


class TestResolveAndScopes:
    def test_resolve_off_values(self, monkeypatch):
        monkeypatch.delenv(oracle_mod.ORACLE_ENV_VAR, raising=False)
        network = build_random_network(20, seed=0)
        assert oracle_mod.resolve(None, network) is None
        assert oracle_mod.resolve(False, network) is None
        assert oracle_mod.resolve("off", network) is None
        monkeypatch.setenv(oracle_mod.ORACLE_ENV_VAR, "0")
        assert oracle_mod.resolve(None, network) is None

    def test_resolve_env_enables(self, monkeypatch):
        monkeypatch.setenv(oracle_mod.ORACLE_ENV_VAR, "alt")
        network = build_random_network(20, seed=0)
        oracle = oracle_mod.resolve(None, network)
        assert isinstance(oracle, AltOracle)
        # Memoized per network object.
        assert oracle_mod.resolve(True, network) is oracle

    def test_resolve_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(oracle_mod.ORACLE_ENV_VAR, "warp-drive")
        network = build_random_network(20, seed=0)
        with pytest.raises(GraphError):
            oracle_mod.resolve(None, network)
        with pytest.raises(GraphError):
            oracle_mod.resolve(3.14, network)

    def test_resolve_binds_instances(self):
        network = build_random_network(20, seed=0)
        other = build_random_network(20, seed=1)
        oracle = AltOracle.build(network, n_landmarks=2)
        assert oracle_mod.resolve(oracle, network) is oracle
        with pytest.raises(GraphError):
            oracle_mod.resolve(oracle, other)

    def test_use_scope_nests_and_restores(self):
        network = build_random_network(20, seed=0)
        a = AltOracle.build(network, n_landmarks=2)
        b = AltOracle.build(network, n_landmarks=3)
        assert oracle_mod.active() is None
        with oracle_mod.use(a):
            assert oracle_mod.active() is a
            with oracle_mod.use(b):
                assert oracle_mod.active() is b
            assert oracle_mod.active() is a
        assert oracle_mod.active() is None

    def test_active_for_rejects_mismatched_network(self):
        network = build_random_network(20, seed=0)
        other = build_random_network(20, seed=1)
        oracle = AltOracle.build(network, n_landmarks=2)
        with oracle_mod.use(oracle):
            assert oracle_mod.active_for(network) is oracle
            assert oracle_mod.active_for(other) is None

    def test_default_oracle_honors_dir_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(oracle_mod.ORACLE_DIR_ENV_VAR, str(tmp_path))
        network = build_random_network(30, seed=9)
        oracle = oracle_mod.default_oracle(network)
        expected = oracle_mod.cache_path(str(tmp_path), network)
        assert oracle.source_path == expected
        assert os.path.exists(expected)


class TestProfileIntegration:
    def test_profile_oracle_keeps_dijkstra_counters_flat(self):
        instance = build_random_instance(3, n=40, m=8, l=10, k=4)
        # oracle=False pins the kernel path regardless of REPRO_ORACLE
        # (this suite also runs under the CI oracle-equivalence job).
        plain = profile_solver(instance, "wma", oracle=False)
        fast = profile_solver(instance, "wma", oracle=True)
        assert fast.objective == plain.objective
        # The landmark build runs *outside* the profiled registry, so
        # oracle runs must not inflate the report's dijkstra ceilings.
        assert fast.metrics["dijkstra.pops"] <= plain.metrics["dijkstra.pops"]
        assert fast.metrics["oracle.queries"] > 0
        assert plain.metrics["oracle.queries"] == 0
        # Both reports carry the full shared vocabulary.
        for key in ("oracle.prunes", "incremental.pops", "dijkstra.pops"):
            assert key in plain.metrics
            assert key in fast.metrics

    def test_profile_env_knob(self, monkeypatch):
        monkeypatch.setenv(oracle_mod.ORACLE_ENV_VAR, "alt")
        instance = build_random_instance(4, n=30, m=6, l=8, k=3)
        report = profile_solver(instance, "wma")
        assert report.metrics["oracle.queries"] > 0
        # Explicit off overrides the environment.
        off = profile_solver(instance, "wma", oracle=False)
        assert off.metrics["oracle.queries"] == 0
        assert off.objective == report.objective


class TestInfoPayload:
    def test_info_is_json_ready(self):
        network = build_random_network(25, seed=0)
        oracle = AltOracle.build(network, n_landmarks=3, seed=1)
        doc = oracle.info()
        json.dumps(doc)  # must not raise
        assert doc["fingerprint"] == network.fingerprint
        assert doc["n_landmarks"] == 3
        assert doc["directed"] is False
