"""Tests for customer placement and capacity models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.capacities import (
    operational_hours_capacities,
    uniform_capacities,
    uniform_random_capacities,
)
from repro.datagen.customers import (
    clustered_customers,
    district_population_customers,
    uniform_customers,
    weighted_customers,
)
from tests.conftest import build_grid_network, build_random_network


class TestUniformCustomers:
    def test_count_and_range(self):
        g = build_grid_network(5, 5)
        rng = np.random.default_rng(0)
        customers = uniform_customers(g, 10, rng)
        assert len(customers) == 10
        assert all(0 <= c < 25 for c in customers)

    def test_distinct(self):
        g = build_grid_network(5, 5)
        rng = np.random.default_rng(0)
        customers = uniform_customers(g, 25, rng, distinct=True)
        assert len(set(customers)) == 25

    def test_distinct_overflow_rejected(self):
        g = build_grid_network(2, 2)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            uniform_customers(g, 5, rng, distinct=True)

    def test_with_replacement(self):
        g = build_grid_network(2, 2)
        rng = np.random.default_rng(0)
        customers = uniform_customers(g, 20, rng, distinct=False)
        assert len(customers) == 20


class TestWeightedCustomers:
    def test_respects_zero_weights(self):
        g = build_grid_network(3, 3)
        rng = np.random.default_rng(1)
        weights = np.zeros(9)
        weights[4] = 1.0
        customers = weighted_customers(g, 15, weights, rng)
        assert set(customers) == {4}

    def test_negative_weights_clipped(self):
        g = build_grid_network(3, 3)
        rng = np.random.default_rng(1)
        weights = -np.ones(9)
        weights[2] = 3.0
        customers = weighted_customers(g, 5, weights, rng)
        assert set(customers) == {2}

    def test_all_zero_rejected(self):
        g = build_grid_network(3, 3)
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            weighted_customers(g, 5, np.zeros(9), rng)

    def test_distribution_followed(self):
        g = build_grid_network(2, 2)
        rng = np.random.default_rng(2)
        weights = np.array([8.0, 1.0, 1.0, 0.0])
        customers = weighted_customers(g, 4000, weights, rng)
        counts = np.bincount(customers, minlength=4)
        assert counts[0] > counts[1]
        assert counts[3] == 0
        assert counts[0] / 4000 == pytest.approx(0.8, abs=0.05)


class TestClusteredCustomers:
    def test_concentration(self):
        g = build_random_network(100, seed=4)
        rng = np.random.default_rng(3)
        customers = clustered_customers(g, 50, 2, rng, concentration=0.05)
        # Strong concentration: few distinct hotspot neighborhoods.
        assert len(set(customers)) < 50


class TestDistrictCustomers:
    def test_counts(self):
        g = build_random_network(100, seed=5)
        rng = np.random.default_rng(4)
        customers = district_population_customers(g, 30, rng, districts=4)
        assert len(customers) == 30
        assert all(0 <= c < 100 for c in customers)

    def test_skew_concentrates(self):
        g = build_random_network(200, seed=6)
        heavy = district_population_customers(
            g, 300, np.random.default_rng(0), districts=5, skew=3.0
        )
        flat = district_population_customers(
            g, 300, np.random.default_rng(0), districts=5, skew=0.0
        )
        assert len(set(heavy)) <= len(set(flat)) + 20


class TestCapacities:
    def test_uniform(self):
        assert uniform_capacities(4, 7) == [7, 7, 7, 7]

    def test_uniform_invalid(self):
        with pytest.raises(ValueError):
            uniform_capacities(3, 0)

    def test_random_range(self):
        rng = np.random.default_rng(5)
        caps = uniform_random_capacities(500, 1, 10, rng)
        assert len(caps) == 500
        assert min(caps) >= 1
        assert max(caps) <= 10
        assert set(caps) == set(range(1, 11))

    def test_random_range_invalid(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            uniform_random_capacities(3, 5, 2, rng)
        with pytest.raises(ValueError):
            uniform_random_capacities(3, 0, 2, rng)

    def test_operational_hours(self):
        rng = np.random.default_rng(6)
        caps = operational_hours_capacities(1000, rng)
        assert all(1 <= c <= 24 for c in caps)
        # The paper reports an average of ~9 hours.
        assert 8.0 < np.mean(caps) < 10.0

    def test_operational_hours_scaled(self):
        rng = np.random.default_rng(6)
        caps = operational_hours_capacities(100, rng, scale_per_hour=3)
        assert all(c % 3 == 0 for c in caps)
