"""Failure-injection tests for the serialization layer."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.solution import MCFSSolution
from repro.io.serialization import (
    load_instance,
    load_network,
    load_solution,
    save_instance,
    save_network,
    save_solution,
)
from tests.conftest import build_line_network, build_random_instance


class TestVersionChecks:
    def test_network_future_version_rejected(self, tmp_path):
        path = tmp_path / "net.npz"
        save_network(build_line_network(4), path)
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["version"] = np.int64(999)
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="version"):
            load_network(path)

    def test_instance_future_version_rejected(self, tmp_path):
        path = tmp_path / "inst.npz"
        save_instance(build_random_instance(0), path)
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["version"] = np.int64(999)
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="version"):
            load_instance(path)

    def test_solution_future_version_rejected(self, tmp_path):
        path = tmp_path / "sol.json"
        save_solution(
            MCFSSolution(selected=(0,), assignment=(0,), objective=1.0), path
        )
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="version"):
            load_solution(path)


class TestCorruptFiles:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_network(tmp_path / "nope.npz")

    def test_non_npz_content(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(Exception):
            load_network(path)

    def test_solution_malformed_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(json.JSONDecodeError):
            load_solution(path)

    def test_instance_structural_validation_on_load(self, tmp_path):
        # Corrupt the capacities so the instance constructor must reject.
        path = tmp_path / "inst.npz"
        save_instance(build_random_instance(0), path)
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["capacities"] = np.zeros_like(payload["capacities"])
        np.savez_compressed(path, **payload)
        from repro.errors import InvalidInstanceError

        with pytest.raises(InvalidInstanceError):
            load_instance(path)
